//! F-IR: converting cursor loops to `fold` (paper Sec. 4, Fig. 6).
//!
//! For every variable `v` updated in a cursor loop, `loopToFold` checks the
//! preconditions on the slice-restricted data-dependence graph:
//!
//! * **P1** — "there should be a cycle of dependencies containing `Sacc`
//!   and a loop carried flow dependence edge (E)";
//! * **P2** — "there should be no other lcfd edge apart from E and the lcfd
//!   edge due to update of the loop cursor variable";
//! * **P3** — "there should be no external dependencies".
//!
//! When they hold, `v`'s body expression `e_acc` (from the loop body's
//! ve-Map) becomes the folding function `e'_acc` by replacing the reference
//! to `v`'s value at iteration start with ⟨v⟩ ([`Node::AccParam`]) and
//! references to the cursor tuple with ⟨t⟩ ([`Node::TupleParam`]);
//! the result is `fold[e'_acc, v₀, Q]` (Theorem 1 / Appendix A).
//!
//! Our P1/P2 are a mild, soundness-preserving generalization: *E* may be a
//! set of lcfd edges, as long as every one is on `v` itself with its writer
//! in `Sacc` — this accepts bodies where `v` is updated by several guarded
//! statements, whose D-IR already merges into one conditional expression
//! per iteration (so `v_{k+1}` still depends only on `v_k` and `t_{k+1}`).
//!
//! Failures are reported as typed [`Diagnostic`]s (codes `E001`–`E005`)
//! anchored at the statements responsible, not as bare strings.

// A Diagnostic (spans, labels, notes) is bigger than clippy's Err-size
// threshold; these paths run once per failed loop, so indirection buys
// nothing.
#![allow(clippy::result_large_err)]

use std::collections::BTreeSet;

use intern::Symbol;

use analysis::ddg::{Ddg, DepKind};
use analysis::defuse::DefUseCtx;
use analysis::diag::{Code, Diagnostic};
use analysis::pass::stmt_span;
use analysis::slice::slice_for_var;
use imp::ast::{Block, Stmt, StmtId, StmtKind};
use imp::token::Span;

use crate::certify::Obligation;
use crate::eedag::{EeDag, Node, NodeId, VeMap};

/// One per-variable conversion attempt.
#[derive(Debug)]
pub struct FoldAttempt {
    /// The accumulated variable.
    pub var: Symbol,
    /// The fold node, or the diagnostic explaining why conversion failed.
    pub node: Result<NodeId, Diagnostic>,
    /// The fold-introduction proof obligation, when conversion succeeded:
    /// the loop-body expression and the fold claimed equivalent to it.
    pub obligation: Option<Obligation>,
}

/// Options for F-IR conversion.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirOptions {
    /// Enable the Appendix B dependent-aggregation (argmax/argmin)
    /// relaxation of P2. Off by default: the paper's prototype did not
    /// implement it (Table 1 rows 22 et al. report "–").
    pub dependent_agg: bool,
}

/// Attempt `loopToFold` for every variable updated in the loop body.
///
/// `loop_span` anchors diagnostics that have no better statement to point
/// at (typically the loop header).
#[allow(clippy::too_many_arguments)]
pub fn loop_to_fold(
    dag: &mut EeDag,
    body_ve: &VeMap,
    body: &Block,
    cursor: Symbol,
    source: NodeId,
    loop_stmt: StmtId,
    loop_span: Span,
    ctx: &DefUseCtx,
    opts: FirOptions,
) -> Vec<FoldAttempt> {
    let mut out = Vec::new();
    if let Some((kind, span)) = abrupt_exit(body) {
        // Sec. 2: "we assume that loops do not contain unconditional exit
        // statements like break".
        let diag = Diagnostic::new(Code::AbruptLoopExit, span, format!("loop contains {kind}"))
            .with_primary_label("the loop exits abruptly here")
            .with_label(loop_span, "while converting this loop")
            .with_note("loops must run to completion to become folds (paper Sec. 2)")
            .with_pass("fir");
        for var in body_ve.keys() {
            if *var != cursor {
                out.push(FoldAttempt {
                    var: *var,
                    node: Err(diag.clone().with_var(var.as_str())),
                    obligation: None,
                });
            }
        }
        return out;
    }
    let ddg = Ddg::build_with(body, cursor, &BTreeSet::new(), ctx);
    let updated: Vec<Symbol> = body_ve.keys().filter(|v| **v != cursor).copied().collect();
    for var in &updated {
        let cx = ConvertCx {
            body,
            loop_span,
            cursor,
            source,
            loop_stmt,
            ctx,
        };
        let node = convert_var(dag, body_ve, &ddg, &cx, *var, &updated).or_else(|err| {
            if opts.dependent_agg
                && matches!(err.code, Code::NoAccumulation | Code::ExtraLoopDependence)
            {
                try_dependent_agg(dag, body_ve, &ddg, cursor, source, loop_stmt, *var).ok_or(err)
            } else {
                Err(err)
            }
        });
        let obligation = node
            .as_ref()
            .ok()
            .map(|n| Obligation::fold_intro(body_ve[var], *n, (loop_stmt, *var)));
        out.push(FoldAttempt {
            var: *var,
            node,
            obligation,
        });
    }
    out
}

/// Shared location context for per-variable conversion diagnostics.
struct ConvertCx<'a> {
    body: &'a Block,
    loop_span: Span,
    cursor: Symbol,
    source: NodeId,
    loop_stmt: StmtId,
    ctx: &'a DefUseCtx,
}

impl ConvertCx<'_> {
    /// Span of a body statement, falling back to the loop header.
    fn span_of(&self, id: StmtId) -> Span {
        stmt_span(self.body, id).unwrap_or(self.loop_span)
    }

    /// Span of the first (lowest-id) statement in `ids`.
    fn first_span(&self, ids: &BTreeSet<StmtId>) -> Span {
        ids.iter()
            .next()
            .map(|id| self.span_of(*id))
            .unwrap_or(self.loop_span)
    }
}

/// The Appendix B dependent-aggregation relaxation: variable `w` is updated
/// under the same comparison that drives a min/max accumulator `v`:
///
/// ```text
/// if (e(t) > v) { v = e(t); w = g(t); }
/// ```
///
/// The pair `(v, w)` folds jointly; `w`'s value is the argmax of `g` by `e`
/// over the rows strictly beating `v₀`. Only strict comparisons are
/// accepted (the first extremal row wins, which a stable sort preserves).
fn try_dependent_agg(
    dag: &mut EeDag,
    body_ve: &VeMap,
    ddg: &Ddg,
    cursor: Symbol,
    source: NodeId,
    loop_stmt: StmtId,
    w: Symbol,
) -> Option<NodeId> {
    // w's per-iteration value: ?[cond, g(t), w₀].
    let w_expr = *body_ve.get(&w)?;
    let Node::Cond {
        cond,
        then_val: g,
        else_val,
    } = dag.node(w_expr).clone()
    else {
        return None;
    };
    if !matches!(dag.node(else_val), Node::Input(n) if *n == w) {
        return None;
    }
    // The condition must be a strict comparison of a tuple expression
    // against another updated variable v's running value.
    let Node::Op { op, args } = dag.node(cond).clone() else {
        return None;
    };
    if args.len() != 2 {
        return None;
    }
    let (is_max, key, v) = match op {
        crate::eedag::OpKind::Gt => (true, args[0], args[1]),
        crate::eedag::OpKind::Lt => (false, args[0], args[1]),
        _ => return None,
    };
    let Node::Input(v_name) = dag.node(v).clone() else {
        return None;
    };
    if v_name == w {
        return None;
    }
    // v must itself be the driven accumulator: ?[same cond, key, v₀].
    let v_expr = *body_ve.get(&v_name)?;
    let Node::Cond {
        cond: vc,
        then_val: vt,
        else_val: ve,
    } = dag.node(v_expr).clone()
    else {
        return None;
    };
    if vc != cond || vt != key || !matches!(dag.node(ve), Node::Input(n) if *n == v_name) {
        return None;
    }
    // Only the (v, w) pair may carry dependences in w's slice.
    let slice = slice_for_var(ddg, w);
    if ddg.external_write_within(&slice) {
        return None;
    }
    for e in ddg.lcfd_within(&slice) {
        if e.var != w && e.var != v_name && e.var != cursor {
            return None;
        }
    }
    // key/g over the tuple parameter; they must not read v or w themselves.
    let mut subs = VeMap::new();
    let tup = dag.intern(Node::TupleParam(cursor));
    subs.insert(cursor, tup);
    let key_t = dag.substitute_inputs(key, &subs);
    let g_t = dag.substitute_inputs(g, &subs);
    for n in [key_t, g_t] {
        if dag.is_poisoned(n) {
            return None;
        }
        let inputs = dag.inputs_of(n);
        if inputs.iter().any(|i| *i == v_name || *i == w) {
            return None;
        }
    }
    let v_init = dag.input(v_name);
    let w_init = dag.input(w);
    Some(dag.intern(Node::ArgExtreme {
        source,
        is_max,
        key: key_t,
        value: g_t,
        v_init,
        w_init,
        cursor,
        origin: (loop_stmt, w),
    }))
}

fn convert_var(
    dag: &mut EeDag,
    body_ve: &VeMap,
    ddg: &Ddg,
    cx: &ConvertCx<'_>,
    var: Symbol,
    all_updated: &[Symbol],
) -> Result<NodeId, Diagnostic> {
    let fail = |code: Code, span: Span, msg: String| {
        Err(Diagnostic::new(code, span, msg)
            .with_var(var.as_str())
            .with_pass("fir"))
    };
    let expr = *body_ve.get(&var).expect("var must be in body ve-Map");
    let slice = slice_for_var(ddg, var);
    if slice.is_empty() {
        return fail(
            Code::NoAccumulation,
            cx.loop_span,
            format!("no statements update {var}"),
        );
    }
    let sacc = ddg.writers_of(var);

    // P3 — no external dependencies in the slice.
    if ddg.external_write_within(&slice) {
        let writers = ddg.external_writers_within(&slice);
        let span = writers
            .first()
            .map(|id| cx.span_of(*id))
            .unwrap_or(cx.loop_span);
        let mut d = Diagnostic::new(
            Code::ExternalWriteInSlice,
            span,
            format!("P3: external write within slice for {var}"),
        )
        .with_primary_label("this statement writes external state")
        .with_var(var.as_str())
        .with_pass("fir")
        .with_note("precondition P3: the variable's slice must be free of external effects");
        // Name the offending effect (interprocedural effect summaries): a
        // rejection should say *what* writes, not just where.
        if let Some(why) = writers
            .first()
            .and_then(|id| find_stmt(cx.body, *id))
            .and_then(|s| analysis::effects::describe_external_write(s, &cx.ctx.summaries))
        {
            d = d.with_note(format!("the statement {why}"));
        }
        for w in writers.iter().skip(1) {
            d = d.with_label(cx.span_of(*w), "external write also here");
        }
        return Err(d);
    }

    // P1/P2 — loop-carried dependence structure.
    let lcfd = ddg.lcfd_within(&slice);
    let has_cycle_on_var = lcfd
        .iter()
        .any(|e| e.var == var && sacc.contains(&e.writer));
    if !has_cycle_on_var {
        let mut d = Diagnostic::new(
            Code::NoAccumulation,
            cx.first_span(&sacc),
            format!(
                "P1: no dependence cycle through the update of {var} \
                 (value does not accumulate across iterations)"
            ),
        )
        .with_primary_label(format!("{var} is overwritten, not accumulated"))
        .with_var(var.as_str())
        .with_pass("fir")
        .with_note("precondition P1: the update must read the previous iteration's value");
        // Every update site of the variable is a cycle endpoint the missing
        // lcfd edge would have to connect.
        for w in sacc.iter().skip(1) {
            d = d.with_label(cx.span_of(*w), format!("{var} is also updated here"));
        }
        return Err(d);
    }
    for e in &lcfd {
        let allowed = (e.var == var && sacc.contains(&e.writer)) || e.var == cx.cursor;
        if !allowed {
            return Err(Diagnostic::new(
                Code::ExtraLoopDependence,
                cx.span_of(e.writer),
                format!(
                    "P2: extra loop-carried dependence on {} ({} → {})",
                    e.var, e.writer, e.reader
                ),
            )
            .with_primary_label(format!("{} is written here on one iteration …", e.var))
            .with_label(cx.span_of(e.reader), "… and read here on the next")
            .with_var(var.as_str())
            .with_pass("fir")
            .with_note(
                "precondition P2: only the accumulator itself (and the cursor) may \
                 carry values across iterations",
            ));
        }
    }

    if dag.is_poisoned(expr) {
        let mut d = fail(
            Code::NonAlgebraic,
            cx.span_of(cx.loop_stmt).merge(cx.loop_span),
            format!("body expression for {var} is not algebraic"),
        )
        .unwrap_err();
        if let Some(reason) = first_opaque_reason(dag, expr) {
            d = d.with_note(format!("opaque sub-expression: {reason}"));
        }
        return Err(d);
    }

    // Build e'_acc: ⟨v⟩ for the iteration-start value of var, ⟨t⟩ for the
    // cursor tuple.
    let mut subs = VeMap::new();
    let acc = dag.intern(Node::AccParam(var));
    let tup = dag.intern(Node::TupleParam(cx.cursor));
    subs.insert(var, acc);
    subs.insert(cx.cursor, tup);
    let func = dag.substitute_inputs(expr, &subs);

    // Safety net: the folding function must not read any *other*
    // loop-updated variable's iteration-start value (P2 should have caught
    // this; an Input surviving here would silently capture a stale value).
    for w in all_updated {
        if *w != var && dag.inputs_of(func).contains(w) {
            let w_writers = ddg.writers_of(*w);
            return Err(Diagnostic::new(
                Code::ExtraLoopDependence,
                cx.first_span(&sacc),
                format!("folding function for {var} reads loop variable {w}"),
            )
            .with_primary_label(format!(
                "the update of {var} here reads {w}'s iteration-start value"
            ))
            .with_label(
                cx.first_span(&w_writers),
                format!("{w} is itself updated by the loop here"),
            )
            .with_var(var.as_str())
            .with_pass("fir")
            .with_note(
                "precondition P2: only the accumulator itself (and the cursor) may \
                 carry values across iterations",
            ));
        }
    }
    if dag.any(func, |n| matches!(n, Node::NotDetermined)) {
        return fail(
            Code::NonAlgebraic,
            cx.first_span(&sacc),
            format!("folding function for {var} depends on an unconverted loop"),
        );
    }

    let init = dag.input(var);
    Ok(dag.intern(Node::Fold {
        func,
        init,
        source: cx.source,
        cursor: cx.cursor,
        origin: (cx.loop_stmt, var),
    }))
}

/// Find a statement (recursively) by id.
fn find_stmt(b: &Block, id: StmtId) -> Option<&Stmt> {
    for s in &b.stmts {
        if s.id == id {
            return Some(s);
        }
        match &s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Some(r) = find_stmt(then_branch, id).or_else(|| find_stmt(else_branch, id)) {
                    return Some(r);
                }
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                if let Some(r) = find_stmt(body, id) {
                    return Some(r);
                }
            }
            _ => {}
        }
    }
    None
}

/// The reason string of the first `Opaque` node under `id`, if any.
fn first_opaque_reason(dag: &EeDag, id: NodeId) -> Option<String> {
    let mut found = None;
    dag.walk(id, &mut |_, n| {
        if found.is_none() {
            if let Node::Opaque { reason, .. } = n {
                found = Some(reason.clone());
            }
        }
    });
    found
}

/// Detect `break`/`continue`/`return` anywhere in a loop body; returns the
/// exit kind and the offending statement's span.
fn abrupt_exit(b: &Block) -> Option<(&'static str, Span)> {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Break => return Some(("break", s.span)),
            StmtKind::Continue => return Some(("continue", s.span)),
            StmtKind::Return(_) => return Some(("return", s.span)),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Some(r) = abrupt_exit(then_branch) {
                    return Some(r);
                }
                if let Some(r) = abrupt_exit(else_branch) {
                    return Some(r);
                }
            }
            // A nested loop's own break exits only the inner loop; inner
            // conversion already handled it. Do not recurse.
            StmtKind::ForEach { .. } | StmtKind::While { .. } => {}
            _ => {}
        }
    }
    None
}

/// The lcfd/flow edge summary of a loop body, exposed for the ablation
/// benchmarks (slice-restricted vs whole-body precondition checking).
pub fn whole_body_lcfd_count(ddg: &Ddg) -> usize {
    ddg.edges.iter().filter(|e| e.kind == DepKind::Lcfd).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::build_function_dir;
    use algebra::schema::{Catalog, SqlType, TableSchema};

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new("emp", &[("id", SqlType::Int), ("salary", SqlType::Int)])
                .with_key(&["id"]),
        )
    }

    fn fold_result(src: &str, var: &str) -> Result<(), Diagnostic> {
        let p = imp::parse_and_normalize(src).unwrap();
        let c = catalog();
        let d = build_function_dir(&p, &c, "f").unwrap();
        d.fold_notes
            .iter()
            .find(|n| n.var == var)
            .unwrap_or_else(|| panic!("no fold attempt for {var}"))
            .result
            .clone()
    }

    const PREFIX: &str = r#"fn f() { q = executeQuery("SELECT * FROM emp"); "#;

    #[test]
    fn sum_accumulator_converts() {
        let src = format!("{PREFIX} s = 0; for (t in q) {{ s = s + t.salary; }} return s; }}");
        assert!(fold_result(&src, "s").is_ok());
    }

    #[test]
    fn last_value_assignment_fails_p1() {
        // v = t.salary every iteration: no accumulation cycle.
        let src = format!("{PREFIX} v = 0; for (t in q) {{ v = t.salary; }} return v; }}");
        let err = fold_result(&src, "v").unwrap_err();
        assert_eq!(err.code, Code::NoAccumulation);
        assert!(err.message.contains("P1"), "{err}");
        // The diagnostic must point at the overwriting assignment.
        assert_eq!(
            &src[err.primary.span.start..err.primary.span.end],
            "v = t.salary;"
        );
    }

    #[test]
    fn dependent_accumulators_fail_p2() {
        let src = format!(
            "{PREFIX} a = 0; d = 0; for (t in q) {{ a = a + t.salary; d = d * 2 + a; }} return d; }}"
        );
        assert!(fold_result(&src, "a").is_ok());
        let err = fold_result(&src, "d").unwrap_err();
        assert_eq!(err.code, Code::ExtraLoopDependence);
        assert!(err.message.contains("P2"), "{err}");
        // Writer anchor + reader secondary label.
        assert_eq!(
            &src[err.primary.span.start..err.primary.span.end],
            "a = a + t.salary;"
        );
        assert!(!err.secondary.is_empty());
    }

    #[test]
    fn external_write_fails_p3() {
        // The update's result feeds the accumulator, putting the external
        // write *inside* s's slice: P3 must reject.
        let src = format!(
            "{PREFIX} s = 0; for (t in q) {{ n = executeUpdate(\"DELETE FROM emp WHERE id = ?\", t.id); s = s + n + t.salary; }} return s; }}"
        );
        let err = fold_result(&src, "s").unwrap_err();
        assert_eq!(err.code, Code::ExternalWriteInSlice);
        assert!(err.message.contains("P3"), "{err}");
        assert!(
            src[err.primary.span.start..err.primary.span.end].contains("executeUpdate"),
            "span must cover the update statement"
        );
    }

    #[test]
    fn unrelated_external_write_passes_p3_but_is_in_loop() {
        // An update *not* in s's slice leaves s extractable (Sec. 7.1:
        // partial optimization around kept updates); the extractor's rewrite
        // stage is responsible for keeping the loop alive.
        let src = format!(
            "{PREFIX} s = 0; for (t in q) {{ executeUpdate(\"DELETE FROM emp WHERE id = 0\"); s = s + t.salary; }} return s; }}"
        );
        assert!(fold_result(&src, "s").is_ok());
    }

    #[test]
    fn update_outside_slice_does_not_fail_p3() {
        // The external write does not affect s's slice? It does — P3 uses
        // the *slice's* DDG: an update unrelated to s still shares the
        // database location with the loop source, but the paper's DS is the
        // slice for v. Here the update statement is not in s's slice.
        // Hmm — conservatively the DELETE writes the database which the
        // cursor reads, so the whole-loop behaviour could change; but the
        // paper explicitly keeps updates intact and extracts *other*
        // variables "provided the update statements do not introduce a
        // dependency between other statements" (Sec. 7.1). Our slice-based
        // check implements exactly that.
        let src = format!(
            "{PREFIX} s = 0; for (t in q) {{ if (t.salary < 0) {{ executeUpdate(\"DELETE FROM emp WHERE id = 0\"); }} s = s + t.salary; }} return s; }}"
        );
        // The update is control-dependent only on t; it is not in s's slice.
        assert!(fold_result(&src, "s").is_ok());
    }

    #[test]
    fn break_rejects_all_vars() {
        let src = format!(
            "{PREFIX} s = 0; for (t in q) {{ s = s + t.salary; if (s > 100) break; }} return s; }}"
        );
        let err = fold_result(&src, "s").unwrap_err();
        assert_eq!(err.code, Code::AbruptLoopExit);
        assert!(err.message.contains("break"), "{err}");
        assert_eq!(&src[err.primary.span.start..err.primary.span.end], "break;");
    }

    #[test]
    fn conditional_accumulation_converts() {
        let src = format!(
            "{PREFIX} s = 0; for (t in q) {{ if (t.salary > 50) {{ s = s + t.salary; }} }} return s; }}"
        );
        assert!(fold_result(&src, "s").is_ok());
    }

    #[test]
    fn exists_flag_via_bool_normalization() {
        // `if (pred) found = true;` normalizes to `found = found || pred`
        // in imp::desugar, restoring the accumulation cycle.
        let src = format!(
            "{PREFIX} found = false; for (t in q) {{ if (t.salary > 100) {{ found = true; }} }} return found; }}"
        );
        // Note: normalization happens in parse_and_normalize only for
        // minmax; the boolean-flag form is normalized by desugar too — see
        // `normalize_bool_flags`. If this fails, the flag desugar is missing.
        assert!(fold_result(&src, "found").is_ok());
    }

    #[test]
    fn two_independent_accumulators_both_convert() {
        let src = format!(
            "{PREFIX} s = 0; c = 0; for (t in q) {{ s = s + t.salary; c = c + 1; }} return s; }}"
        );
        assert!(fold_result(&src, "s").is_ok());
        assert!(fold_result(&src, "c").is_ok());
    }
}
