//! The public extraction API (paper Figure 1, end to end).

use std::time::{Duration, Instant};

use algebra::schema::Catalog;
use algebra::Dialect;
use analysis::diag::{dedup_sort, Code, Diagnostic, Severity};
use analysis::liveness::Liveness;
use analysis::pass::{stmt_span, walk_stmts};
use analysis::regions::{RegionKind, RegionTree};
use imp::ast::{Expr, Function, Program, StmtId};

use crate::dir::DirBuilder;
use crate::eedag::{Node, NodeId, VeMap};
use crate::rewrite::{apply_plans, inputs_safe, RewritePlan};
use crate::rules::{RuleEngine, RuleOptions};
use crate::sqlgen::node_to_imp;

/// Options controlling the extractor.
#[derive(Debug, Clone)]
pub struct ExtractorOptions {
    /// Target SQL dialect.
    pub dialect: Dialect,
    /// Respect list ordering (`false` for keyword-search extraction, where
    /// "ordering of data is not relevant", Sec. 7.1 Experiment 3).
    pub ordered: bool,
    /// The Sec. 5.3 heuristic: "transform only if equivalent SQL could be
    /// extracted for all variables inside the loop that use query results".
    pub require_all_vars: bool,
    /// Preprocess `print` statements into ordered-collection appends
    /// (Sec. 2 / Appendix B) before extraction.
    pub rewrite_prints: bool,
    /// Enable the Appendix B dependent-aggregation (argmax/argmin)
    /// extension. Off by default to mirror the paper's prototype (Table 1
    /// reports "–" for those rows).
    pub dependent_agg: bool,
    /// When set, apply transformations cost-based (Sec. 5.3 / Appendix C):
    /// a planned rewrite estimated costlier than the original loop is
    /// skipped.
    pub cost_based: Option<crate::costing::DbStats>,
    /// Prefer the general OUTER APPLY rule over GROUP BY where both apply
    /// (rule-order control; see `rules::RuleOptions::prefer_lateral`).
    pub prefer_lateral: bool,
    /// Rule-engine fixpoint memoization. On by default; the flag exists so
    /// regression tests can prove cached and uncached runs agree. Not part
    /// of [`ExtractorOptions::fingerprint`] because it cannot change any
    /// output, only how fast the fixpoint converges.
    pub rule_cache: bool,
    /// Certify every rule application and fold introduction (translation
    /// validation, DESIGN.md §5e): discharge the recorded proof obligations
    /// by algebraic normalization or differential evaluation. A refuted
    /// obligation (`E007`) demotes the affected variable's rewrite — the
    /// loop is kept. Off by default (certification costs differential
    /// trials per obligation).
    pub certify: bool,
    /// Extract batchable DML (write) loops into single set-oriented
    /// statements (foreach-dml, DESIGN.md §5i). The loop-carried dependence
    /// pass (`analysis::depend`) must certify the loop `Batchable`; with
    /// [`ExtractorOptions::certify`] also set, every such rewrite is
    /// additionally validated by differential state comparison. When
    /// disabled, batchable write loops are reported (`W010`) but kept.
    pub extract_dml: bool,
}

impl Default for ExtractorOptions {
    fn default() -> Self {
        ExtractorOptions {
            dialect: Dialect::Postgres,
            ordered: true,
            require_all_vars: true,
            rewrite_prints: false,
            dependent_agg: false,
            cost_based: None,
            prefer_lateral: false,
            rule_cache: true,
            certify: false,
            extract_dml: true,
        }
    }
}

impl ExtractorOptions {
    /// Canonical, deterministic encoding of every field that can change
    /// extraction output.
    ///
    /// Two option values with equal fingerprints produce identical reports
    /// for identical inputs — the property the service layer's
    /// content-addressed result cache keys on. Any new option field must be
    /// added here, or stale cache hits will serve results computed under
    /// different settings.
    pub fn fingerprint(&self) -> String {
        format!(
            "dialect={:?};ordered={};require_all_vars={};rewrite_prints={};\
             dependent_agg={};prefer_lateral={};cost_based={};certify={};\
             extract_dml={}",
            self.dialect,
            self.ordered,
            self.require_all_vars,
            self.rewrite_prints,
            self.dependent_agg,
            self.prefer_lateral,
            match &self.cost_based {
                Some(s) => s.fingerprint(),
                None => "none".to_string(),
            },
            self.certify,
            self.extract_dml,
        )
    }
}

/// Per-variable extraction outcome. Every non-`Extracted` outcome carries a
/// typed, span-anchored [`Diagnostic`] explaining what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractionOutcome {
    /// Equivalent SQL was extracted and the program was rewritten.
    Extracted,
    /// SQL was extracted but the loop was left intact (the all-variables
    /// heuristic, the cost model, or an input-safety check declined the
    /// rewrite).
    ExtractedNotRewritten(Diagnostic),
    /// `loopToFold` failed (preconditions P1–P3, abrupt exits, …).
    FoldFailed(Diagnostic),
    /// The fold could not be translated to SQL (no rule matched / contains
    /// non-algebraic constructs).
    SqlFailed(Diagnostic),
}

impl ExtractionOutcome {
    /// True when equivalent SQL was produced (whether or not the program
    /// was rewritten).
    pub fn sql_extracted(&self) -> bool {
        matches!(
            self,
            ExtractionOutcome::Extracted | ExtractionOutcome::ExtractedNotRewritten(_)
        )
    }

    /// The diagnostic attached to a non-`Extracted` outcome.
    pub fn diagnostic(&self) -> Option<&Diagnostic> {
        match self {
            ExtractionOutcome::Extracted => None,
            ExtractionOutcome::ExtractedNotRewritten(d)
            | ExtractionOutcome::FoldFailed(d)
            | ExtractionOutcome::SqlFailed(d) => Some(d),
        }
    }
}

/// One variable's extraction record.
#[derive(Debug, Clone)]
pub struct VarExtraction {
    /// Enclosing function.
    pub function: String,
    /// The cursor loop.
    pub loop_stmt: StmtId,
    /// The accumulated variable.
    pub var: String,
    /// Extracted SQL statements (one per query leaf in the replacement).
    pub sql: Vec<String>,
    /// The replacement expression, pretty-printed.
    pub replacement: Option<String>,
    /// The F-IR expression before rule application (paper Fig. 3(b)-style
    /// display), for diagnostics.
    pub fir: Option<String>,
    /// Names of the transformation rules applied, in order.
    pub rule_trace: Vec<String>,
    /// What happened.
    pub outcome: ExtractionOutcome,
}

/// Aggregate certification counts for one extraction run (present in the
/// report only when [`ExtractorOptions::certify`] is set). Sums the
/// per-variable [`crate::certify::CertReport`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertSummary {
    /// Obligations checked (rule applications + fold introductions).
    pub total: usize,
    /// Discharged by algebraic normalization.
    pub discharged_normalize: usize,
    /// Discharged by differential evaluation over micro-databases.
    pub discharged_differential: usize,
    /// Left inconclusive (`W006` advisories).
    pub inconclusive: usize,
    /// Refuted by a counterexample (`E007` errors; rewrite demoted).
    pub counterexamples: usize,
}

impl CertSummary {
    /// True when every obligation was proven (none inconclusive or refuted).
    pub fn certified(&self) -> bool {
        self.inconclusive == 0 && self.counterexamples == 0 && self.total > 0
    }

    /// Fold one per-variable certification report into the totals.
    pub fn absorb(&mut self, rep: &crate::certify::CertReport) {
        self.total += rep.total();
        self.discharged_normalize += rep.discharged_normalize();
        self.discharged_differential += rep.discharged_differential();
        self.inconclusive += rep.inconclusive();
        self.counterexamples += rep.counterexamples();
    }

    /// Accumulate another run's summary (for program-level aggregation).
    pub fn merge(&mut self, other: &CertSummary) {
        self.total += other.total;
        self.discharged_normalize += other.discharged_normalize;
        self.discharged_differential += other.discharged_differential;
        self.inconclusive += other.inconclusive;
        self.counterexamples += other.counterexamples;
    }
}

/// Cumulative wall-clock time per pipeline stage, plus the allocation-ish
/// counters the bench harness tracks (`perf_pipeline`, DESIGN.md "Benchmark
/// baseline"). All times are nanoseconds. Like [`ExtractionReport::elapsed`],
/// none of this appears in [`ExtractionReport::render_json`], so reports
/// remain byte-identical across machines and cache replays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// AST clone + desugaring passes.
    pub desugar_ns: u64,
    /// Region tree + D-IR construction (ee-DAG/ve-Map build, including the
    /// loopToFold F-IR conversion that runs inside the builder).
    pub dir_ns: u64,
    /// T1–T7 rule-engine fixpoint.
    pub rules_ns: u64,
    /// F-IR → SQL/imp expression generation.
    pub sqlgen_ns: u64,
    /// Plan application, dead-code elimination, renumbering.
    pub rewrite_ns: u64,
    /// Largest ee-DAG (in nodes) built during this run.
    pub peak_dag_nodes: u64,
    /// Rule-engine memo hits: shared subdags skipped within a pass plus
    /// clean subdags skipped across fixpoint passes.
    pub rule_cache_hits: u64,
    /// Rule-engine rewrites actually performed.
    pub rule_cache_misses: u64,
    /// Obligation certification (normalization + differential trials).
    /// Zero unless [`ExtractorOptions::certify`] is set.
    pub certify_ns: u64,
    /// Proof obligations checked by the certifier.
    pub obligations_checked: u64,
    /// Loop-carried dependence analysis of write loops (`analysis::depend`)
    /// plus foreach-dml lowering. Zero when no write loop is met.
    pub depend_ns: u64,
}

impl StageTimes {
    /// Sum of the per-stage times.
    pub fn total_ns(&self) -> u64 {
        self.desugar_ns
            + self.dir_ns
            + self.rules_ns
            + self.sqlgen_ns
            + self.rewrite_ns
            + self.certify_ns
            + self.depend_ns
    }

    /// Accumulate another run's counters into this one (peaks take the max).
    pub fn absorb(&mut self, other: &StageTimes) {
        self.desugar_ns += other.desugar_ns;
        self.dir_ns += other.dir_ns;
        self.rules_ns += other.rules_ns;
        self.sqlgen_ns += other.sqlgen_ns;
        self.rewrite_ns += other.rewrite_ns;
        self.peak_dag_nodes = self.peak_dag_nodes.max(other.peak_dag_nodes);
        self.rule_cache_hits += other.rule_cache_hits;
        self.rule_cache_misses += other.rule_cache_misses;
        self.certify_ns += other.certify_ns;
        self.obligations_checked += other.obligations_checked;
        self.depend_ns += other.depend_ns;
    }
}

/// The report for one extraction run.
#[derive(Debug, Clone)]
pub struct ExtractionReport {
    /// The (possibly) rewritten program.
    pub program: Program,
    /// Per-variable records.
    pub vars: Vec<VarExtraction>,
    /// All diagnostics, aggregated per loop, sorted by source position and
    /// deduplicated (a loop visited through several region paths reports
    /// each failure once).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of loops replaced by queries.
    pub loops_rewritten: usize,
    /// Wall-clock extraction time.
    pub elapsed: Duration,
    /// Per-stage timing/counter breakdown (see [`StageTimes`]). Excluded
    /// from the rendered JSON for the same reason as `elapsed`.
    pub stage: StageTimes,
    /// Certification totals; `Some` exactly when the run was made with
    /// [`ExtractorOptions::certify`] set (even if no obligations arose).
    pub certification: Option<CertSummary>,
}

impl ExtractionReport {
    /// True when at least one loop was rewritten.
    pub fn changed(&self) -> bool {
        self.loops_rewritten > 0
    }

    /// True when SQL was extracted for at least one variable.
    pub fn any_sql(&self) -> bool {
        self.vars.iter().any(|v| v.outcome.sql_extracted())
    }

    /// Render the report as a stable JSON document.
    ///
    /// `source` is the program text the report was produced from; it is
    /// needed to resolve diagnostic spans to line/column pairs (the
    /// `diagnostics` field embeds [`analysis::diag::render_json`]'s output
    /// verbatim, so its published layout carries over).
    ///
    /// The rendering is deterministic: identical `(source, schema,
    /// options)` inputs yield byte-identical JSON. Wall-clock `elapsed` is
    /// deliberately excluded so the document can be cached and replayed
    /// byte-for-byte by the service layer. Shape (append-only):
    ///
    /// ```json
    /// {"loops_rewritten":1,
    ///  "vars":[{"function":"f","var":"total","loop_stmt":"S3",
    ///           "outcome":"extracted","code":null,
    ///           "sql":["SELECT …"],"replacement":"…","fir":"…",
    ///           "rules":["T2"]}],
    ///  "program":"…","diagnostics":[…]}
    /// ```
    ///
    /// When the run was certified ([`ExtractorOptions::certify`]) a
    /// trailing `"certification"` object is appended (append-only shape):
    ///
    /// ```json
    /// {"total":3,"normalized":2,"differential":1,
    ///  "inconclusive":0,"counterexamples":0,"certified":true}
    /// ```
    pub fn render_json(&self, source: &str) -> String {
        use analysis::json::Json;
        let vars = self
            .vars
            .iter()
            .map(|v| {
                let (outcome, code) = match &v.outcome {
                    ExtractionOutcome::Extracted => ("extracted", None),
                    ExtractionOutcome::ExtractedNotRewritten(d) => {
                        ("extracted_not_rewritten", Some(d.code))
                    }
                    ExtractionOutcome::FoldFailed(d) => ("fold_failed", Some(d.code)),
                    ExtractionOutcome::SqlFailed(d) => ("sql_failed", Some(d.code)),
                };
                let opt_str = |s: &Option<String>| match s {
                    Some(s) => Json::str(s.clone()),
                    None => Json::Null,
                };
                Json::Obj(vec![
                    ("function".into(), Json::str(v.function.clone())),
                    ("var".into(), Json::str(v.var.clone())),
                    ("loop_stmt".into(), Json::str(v.loop_stmt.to_string())),
                    ("outcome".into(), Json::str(outcome)),
                    (
                        "code".into(),
                        match code {
                            Some(c) => Json::str(c.as_str()),
                            None => Json::Null,
                        },
                    ),
                    (
                        "sql".into(),
                        Json::Arr(v.sql.iter().map(|s| Json::str(s.clone())).collect()),
                    ),
                    ("replacement".into(), opt_str(&v.replacement)),
                    ("fir".into(), opt_str(&v.fir)),
                    (
                        "rules".into(),
                        Json::Arr(v.rule_trace.iter().map(|r| Json::str(r.clone())).collect()),
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            (
                "loops_rewritten".into(),
                Json::int(self.loops_rewritten as i64),
            ),
            ("vars".into(), Json::Arr(vars)),
            (
                "program".into(),
                Json::str(imp::pretty_print(&self.program)),
            ),
            (
                "diagnostics".into(),
                Json::Raw(analysis::diag::render_json(&self.diagnostics, source)),
            ),
        ];
        if let Some(c) = &self.certification {
            fields.push((
                "certification".into(),
                Json::Obj(vec![
                    ("total".into(), Json::int(c.total as i64)),
                    (
                        "normalized".into(),
                        Json::int(c.discharged_normalize as i64),
                    ),
                    (
                        "differential".into(),
                        Json::int(c.discharged_differential as i64),
                    ),
                    ("inconclusive".into(), Json::int(c.inconclusive as i64)),
                    (
                        "counterexamples".into(),
                        Json::int(c.counterexamples as i64),
                    ),
                    ("certified".into(), Json::Bool(c.certified())),
                ]),
            ));
        }
        Json::Obj(fields).render()
    }
}

// The service layer ships extractors and reports across worker threads and
// holds cached reports behind `Arc`s; keep both `Send + Sync` by
// construction (a compile error here means a non-thread-safe type crept
// into the pipeline).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Extractor>();
    assert_send_sync::<ExtractorOptions>();
    assert_send_sync::<ExtractionReport>();
    assert_send_sync::<VarExtraction>();
    assert_send_sync::<CertSummary>();
};

/// The extractor: schema-aware, reusable across programs.
///
/// ```
/// use algebra::schema::{Catalog, SqlType, TableSchema};
/// use eqsql_core::Extractor;
///
/// let src = r#"
///     fn count() {
///         rows = executeQuery("SELECT * FROM emp WHERE salary > 100");
///         n = 0;
///         for (e in rows) { n = n + 1; }
///         return n;
///     }
/// "#;
/// let program = imp::parse_and_normalize(src).unwrap();
/// let catalog = Catalog::new().with(
///     TableSchema::new("emp", &[("id", SqlType::Int), ("salary", SqlType::Int)])
///         .with_key(&["id"]),
/// );
/// let report = Extractor::new(catalog).extract_function(&program, "count");
/// assert_eq!(report.loops_rewritten, 1);
/// assert!(report.vars[0].sql[0].contains("COUNT"));
/// ```
#[derive(Debug, Clone)]
pub struct Extractor {
    /// Table schemas for key checks and `SELECT *` expansion.
    pub catalog: Catalog,
    /// Options.
    pub opts: ExtractorOptions,
}

struct LoopCandidate {
    stmt: StmtId,
    /// (var, resolved fold-or-ND node).
    entries: Vec<(intern::Symbol, NodeId)>,
}

impl Extractor {
    /// Create an extractor with default options.
    pub fn new(catalog: Catalog) -> Extractor {
        Extractor {
            catalog,
            opts: ExtractorOptions::default(),
        }
    }

    /// Create an extractor with explicit options.
    pub fn with_options(catalog: Catalog, opts: ExtractorOptions) -> Extractor {
        Extractor { catalog, opts }
    }

    /// Extract from every function of the program.
    pub fn extract_program(&self, program: &Program) -> ExtractionReport {
        let started = Instant::now();
        let mut out = program.clone();
        let mut vars = Vec::new();
        let mut diagnostics = Vec::new();
        let mut loops_rewritten = 0;
        let mut stage = StageTimes::default();
        let mut certification: Option<CertSummary> = None;
        let names: Vec<intern::Symbol> = program.functions.iter().map(|f| f.name).collect();
        for name in names {
            let r = self.extract_function(&out, &name);
            out = r.program;
            vars.extend(r.vars);
            diagnostics.extend(r.diagnostics);
            loops_rewritten += r.loops_rewritten;
            stage.absorb(&r.stage);
            if let Some(c) = &r.certification {
                certification.get_or_insert_with(Default::default).merge(c);
            }
        }
        dedup_sort(&mut diagnostics);
        ExtractionReport {
            program: out,
            vars,
            diagnostics,
            loops_rewritten,
            elapsed: started.elapsed(),
            stage,
            certification,
        }
    }

    /// Extract from one function; the returned program has that function
    /// rewritten (other functions untouched).
    pub fn extract_function(&self, program: &Program, fname: &str) -> ExtractionReport {
        let started = Instant::now();
        let mut stage = StageTimes::default();
        let mut work = program.clone();
        imp::desugar::normalize_minmax(&mut work);
        imp::desugar::normalize_bool_flags(&mut work);
        if self.opts.rewrite_prints {
            if let Some(f) = work.function_mut(fname) {
                imp::desugar::rewrite_prints(f);
            }
            work.renumber();
        }
        stage.desugar_ns = started.elapsed().as_nanos() as u64;
        let Some(f) = work.function(fname).cloned() else {
            return ExtractionReport {
                program: work,
                vars: Vec::new(),
                diagnostics: Vec::new(),
                loops_rewritten: 0,
                elapsed: started.elapsed(),
                stage,
                certification: self.opts.certify.then(CertSummary::default),
            };
        };

        // Build D-IR over the region hierarchy, collecting per-loop fold
        // expressions resolved against everything preceding the loop.
        let dir_started = Instant::now();
        let tree = RegionTree::build(&f);
        let mut builder =
            DirBuilder::new(&work, &self.catalog).with_fir_options(crate::fir::FirOptions {
                dependent_agg: self.opts.dependent_agg,
            });
        builder.prepare(&f);
        let mut candidates = Vec::new();
        let _final_ve = collect(
            &mut builder,
            &tree,
            tree.root,
            VeMap::new(),
            &f,
            &mut candidates,
        );
        let fold_notes = std::mem::take(&mut builder.fold_notes);
        let du_ctx = builder.take_du_ctx();
        let mut dag = builder.into_dag();
        stage.dir_ns = dir_started.elapsed().as_nanos() as u64;
        let liveness = Liveness::compute(&f, &Default::default());
        let certifier = self
            .opts
            .certify
            .then(|| crate::certify::Certifier::new(&self.catalog));
        let mut certification = self.opts.certify.then(CertSummary::default);
        let mut vars_report: Vec<VarExtraction> = Vec::new();
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        let mut plans = Vec::new();

        // Cursor loops (`for`), the extraction targets; every one that stays
        // imperative gets exactly one `W007` blame diagnostic below.
        let mut cursor_loops: std::collections::BTreeSet<StmtId> = Default::default();
        walk_stmts(&f.body, false, &mut |s, _| {
            if matches!(s.kind, imp::ast::StmtKind::ForEach { .. }) {
                cursor_loops.insert(s.id);
            }
        });

        for cand in candidates {
            let live_after = liveness.after(cand.stmt);
            let loop_span = stmt_span(&f.body, cand.stmt).unwrap_or_default();
            // A loop with residual external writes (updates, prints) must
            // never be removed: SQL may still be reported for its variables
            // (Sec. 7.1, partial optimization), but the loop stays. The same
            // holds for a loop whose subtree can exit the *function* early —
            // a `return` nested in an inner loop escapes the outer loop's
            // per-variable precondition checks, but removing the loop would
            // drop the early exit.
            let has_side_effects = loop_has_external_write(&f, cand.stmt, &du_ctx)
                || loop_has_function_exit(&f, cand.stmt);
            let mut assigns: Vec<(intern::Symbol, Expr)> = Vec::new();
            let mut loop_ok = true;
            let mut loop_vars: Vec<VarExtraction> = Vec::new();
            for (var, node) in &cand.entries {
                if !live_after.contains(var) {
                    continue; // dead after the loop; nothing to extract
                }
                let outcome;
                let mut sql = Vec::new();
                let mut replacement = None;
                let mut fir = None;
                let mut rule_trace = Vec::new();
                if matches!(dag.node(*node), Node::NotDetermined) || dag.is_poisoned(*node) {
                    let diag = fold_notes
                        .iter()
                        .rev()
                        .find(|n| n.loop_stmt == cand.stmt && &n.var == var)
                        .and_then(|n| n.result.clone().err())
                        .unwrap_or_else(|| {
                            Diagnostic::new(
                                Code::NonAlgebraic,
                                loop_span,
                                format!("value of `{var}` after this loop is not algebraic"),
                            )
                            .with_primary_label("loop could not be converted to a fold")
                            .with_var(*var)
                            .with_pass("fir")
                        })
                        .with_function(fname);
                    outcome = ExtractionOutcome::FoldFailed(diag);
                    loop_ok = false;
                } else {
                    let mut engine = RuleEngine::new(
                        &self.catalog,
                        RuleOptions {
                            ordered: self.opts.ordered,
                            prefer_lateral: self.opts.prefer_lateral,
                        },
                    );
                    engine.cache_enabled = self.opts.rule_cache;
                    fir = Some(dag.display(*node));
                    let rules_started = Instant::now();
                    let transformed = engine.transform(&mut dag, *node);
                    stage.rules_ns += rules_started.elapsed().as_nanos() as u64;
                    stage.rule_cache_hits += engine.cache_hits;
                    stage.rule_cache_misses += engine.cache_misses;
                    rule_trace = engine.trace.iter().map(|r| r.to_string()).collect();
                    // Translation validation: discharge the fold-intro
                    // obligation for this variable plus every rule
                    // application the engine recorded. A counterexample
                    // demotes the rewrite below; inconclusive obligations
                    // surface as W006 advisories.
                    let mut cert_fail: Option<Diagnostic> = None;
                    if let Some(certifier) = &certifier {
                        let certify_started = Instant::now();
                        let mut obligations: Vec<crate::certify::Obligation> = fold_notes
                            .iter()
                            .rev()
                            .find(|n| n.loop_stmt == cand.stmt && &n.var == var)
                            .and_then(|n| n.obligation.clone())
                            .into_iter()
                            .collect();
                        obligations.extend(std::mem::take(&mut engine.obligations));
                        let rep = certifier.check_all(&mut dag, &obligations);
                        stage.certify_ns += certify_started.elapsed().as_nanos() as u64;
                        stage.obligations_checked += rep.total() as u64;
                        if let Some(c) = certification.as_mut() {
                            c.absorb(&rep);
                        }
                        let span_of = |id: StmtId| stmt_span(&f.body, id);
                        for d in rep.diagnostics(&dag, &span_of) {
                            let d = d.with_function(fname);
                            if d.code == Code::CertCounterexample && cert_fail.is_none() {
                                cert_fail = Some(d.clone());
                            }
                            diagnostics.push(d);
                        }
                    }
                    let sqlgen_started = Instant::now();
                    let lowered = node_to_imp(&dag, transformed, self.opts.dialect);
                    stage.sqlgen_ns += sqlgen_started.elapsed().as_nanos() as u64;
                    match lowered {
                        Ok(expr) => {
                            sql = collect_sql(&expr);
                            replacement = Some(imp::pretty::pretty_expr(&expr));
                            let inputs = dag.inputs_of(transformed);
                            if let Some(d) = cert_fail.take() {
                                // Never rewrite on a refuted obligation: the
                                // extracted SQL is reported, the loop stays.
                                outcome = ExtractionOutcome::ExtractedNotRewritten(d);
                                loop_ok = false;
                            } else if !inputs_safe(&f, cand.stmt, &inputs) {
                                outcome = ExtractionOutcome::ExtractedNotRewritten(
                                    Diagnostic::new(
                                        Code::RewriteDeclined,
                                        loop_span,
                                        format!(
                                            "SQL extracted for `{var}` but the loop was kept: \
                                             a referenced variable is reassigned before the loop"
                                        ),
                                    )
                                    .with_primary_label("rewrite declined for this loop")
                                    .with_var(*var)
                                    .with_function(fname)
                                    .with_pass("extract"),
                                );
                                loop_ok = false;
                            } else {
                                outcome = ExtractionOutcome::Extracted;
                                assigns.push((*var, expr));
                            }
                        }
                        Err(err) => {
                            let mut d = Diagnostic::new(
                                err.code(),
                                loop_span,
                                format!("cannot translate `{var}` to SQL: {err}"),
                            )
                            .with_primary_label(format!(
                                "no SQL equivalent for the fold computing `{var}`"
                            ))
                            .with_var(*var)
                            .with_function(fname)
                            .with_pass("sqlgen");
                            for m in &engine.misses {
                                d = d.with_note(format!(
                                    "rule {} did not apply: {}",
                                    m.rule, m.reason
                                ));
                                diagnostics.push(
                                    Diagnostic::new(
                                        Code::RuleNotApplicable,
                                        loop_span,
                                        format!(
                                            "rule {} did not apply to `{var}`: {}",
                                            m.rule, m.reason
                                        ),
                                    )
                                    .with_primary_label("while matching this loop's fold")
                                    .with_var(*var)
                                    .with_function(fname)
                                    .with_pass("rules"),
                                );
                            }
                            outcome = ExtractionOutcome::SqlFailed(d);
                            loop_ok = false;
                        }
                    }
                }
                loop_vars.push(VarExtraction {
                    function: fname.to_string(),
                    loop_stmt: cand.stmt,
                    var: var.to_string(),
                    sql,
                    replacement,
                    fir,
                    rule_trace,
                    outcome,
                });
            }
            // foreach-dml (DESIGN.md §5i): a cursor write loop may instead
            // be batched into ONE set-oriented DML statement when
            // `analysis::depend` certifies its per-iteration writes
            // key-disjoint. Failure leaves exactly one E010/W010 blame
            // diagnostic on the loop (replacing the generic W007).
            let mut dml_plan: Option<Expr> = None;
            let mut dml_handled = false;
            if cursor_loops.contains(&cand.stmt) && loop_has_external_write(&f, cand.stmt, &du_ctx)
            {
                if let Some(out) = self.try_foreach_dml(
                    &f,
                    fname,
                    cand.stmt,
                    loop_span,
                    &live_after,
                    &mut stage,
                    certification.as_mut(),
                ) {
                    dml_handled = true;
                    diagnostics.extend(out.diags);
                    if let Some(row) = out.row {
                        loop_vars.push(row);
                    }
                    dml_plan = out.replacement;
                }
            }
            let dml_rewritten = dml_plan.is_some();
            let mut rewrite = dml_rewritten
                || (!assigns.is_empty()
                    && !has_side_effects
                    && (loop_ok || !self.opts.require_all_vars));
            let mut cost_rejected = false;
            if rewrite && !dml_rewritten {
                if let Some(stats) = &self.opts.cost_based {
                    let d = crate::costing::decide(&f, cand.stmt, &assigns, stats);
                    if !d.beneficial {
                        rewrite = false;
                        cost_rejected = true;
                    }
                }
            }
            if rewrite {
                plans.push(RewritePlan {
                    loop_stmt: cand.stmt,
                    assigns,
                    dml: dml_plan.into_iter().collect(),
                });
            } else {
                // Demote Extracted outcomes: the loop stays.
                let (code, why) = if cost_rejected {
                    (
                        Code::RewriteDeclined,
                        "rewrite estimated costlier than the original loop",
                    )
                } else if has_side_effects {
                    (
                        Code::LoopSideEffects,
                        "loop performs database updates or output",
                    )
                } else {
                    (
                        Code::RewriteDeclined,
                        "another variable in the loop could not be extracted",
                    )
                };
                for v in &mut loop_vars {
                    if v.outcome == ExtractionOutcome::Extracted {
                        v.outcome = ExtractionOutcome::ExtractedNotRewritten(
                            Diagnostic::new(
                                code,
                                loop_span,
                                format!(
                                    "SQL extracted for `{}` but the loop was kept: {why}",
                                    v.var
                                ),
                            )
                            .with_primary_label(why)
                            .with_var(v.var.clone())
                            .with_function(fname)
                            .with_pass("extract"),
                        );
                    }
                }
            }
            // Extraction blame (W007): a cursor loop that stays imperative
            // is never silently rejected. Trace the decisive reason — the
            // first hard (E-code) per-variable failure, else the rewrite
            // demotion, else the loop-level condition — and anchor a label
            // chain at the offending statements. `while` loops are exempt
            // (they are never cursor-extraction targets).
            if !rewrite && !dml_handled && cursor_loops.contains(&cand.stmt) {
                let underlying = loop_vars
                    .iter()
                    .filter_map(|v| v.outcome.diagnostic())
                    .find(|d| d.severity() == Severity::Error)
                    .or_else(|| {
                        loop_vars
                            .iter()
                            .filter_map(|v| v.outcome.diagnostic())
                            .next()
                    });
                let mut blame = match underlying {
                    Some(d) => {
                        let subject = d
                            .var
                            .clone()
                            .map(|v| format!("`{v}`"))
                            .unwrap_or_else(|| "the accumulator".to_string());
                        let why = match d.code {
                            Code::NoAccumulation => format!(
                                "{subject} violates P1 — its update does not \
                                 accumulate across iterations"
                            ),
                            Code::ExtraLoopDependence => format!(
                                "{subject} violates P2 — a loop-carried dependence \
                                 exists outside its own update"
                            ),
                            Code::ExternalWriteInSlice => format!(
                                "{subject} violates P3 — an external write sits \
                                 inside its backward slice"
                            ),
                            Code::AbruptLoopExit => "it violates P4 — the loop exits abruptly via \
                                 `break`, `continue`, or `return`"
                                .to_string(),
                            _ => d.message.clone(),
                        };
                        let mut b = Diagnostic::new(
                            Code::LoopNotExtracted,
                            loop_span,
                            format!("loop not extracted: {why}"),
                        )
                        .with_note(format!(
                            "see the accompanying {} diagnostic for the full analysis",
                            d.code
                        ));
                        if let Some(v) = &d.var {
                            b = b.with_var(v.clone());
                        }
                        // Point at the statement chain the underlying
                        // analysis blamed, skipping labels that would just
                        // re-underline the loop header.
                        if d.primary.span != loop_span && d.primary.span.end != 0 {
                            let what = if d.primary.message.is_empty() {
                                "the offending statement".to_string()
                            } else {
                                d.primary.message.clone()
                            };
                            b = b.with_label(d.primary.span, what);
                        }
                        for l in &d.secondary {
                            if l.span != loop_span && l.span.end != 0 {
                                b = b.with_label(l.span, l.message.clone());
                            }
                        }
                        b
                    }
                    None => {
                        let why = if has_side_effects {
                            "the loop performs database updates or output"
                        } else if cand.entries.is_empty() {
                            "the loop does not accumulate into any variable (P1)"
                        } else {
                            "no variable updated by the loop is live after it"
                        };
                        Diagnostic::new(
                            Code::LoopNotExtracted,
                            loop_span,
                            format!("loop not extracted: {why}"),
                        )
                    }
                };
                blame = blame
                    .with_primary_label("this loop stays imperative")
                    .with_function(fname)
                    .with_pass("blame");
                diagnostics.push(blame);
            }
            for v in &loop_vars {
                if let Some(d) = v.outcome.diagnostic() {
                    diagnostics.push(d.clone());
                }
            }
            vars_report.extend(loop_vars);
        }

        let rewrite_started = Instant::now();
        let mut new_f = f.clone();
        let loops_rewritten = apply_plans(&mut new_f, &plans);
        if let Some(slot) = work.function_mut(fname) {
            *slot = new_f;
        }
        work.renumber();
        stage.rewrite_ns = rewrite_started.elapsed().as_nanos() as u64;
        stage.peak_dag_nodes = dag.len() as u64;
        dedup_sort(&mut diagnostics);
        ExtractionReport {
            program: work,
            vars: vars_report,
            diagnostics,
            loops_rewritten,
            elapsed: started.elapsed(),
            stage,
            certification,
        }
    }

    /// Attempt foreach-dml extraction on one cursor write loop
    /// (DESIGN.md §5i). Returns `None` when the body performs no
    /// statement-position DML — the generic side-effect handling then
    /// applies. Otherwise the outcome carries either the replacement
    /// `executeUpdate` statement or exactly one `E010`/`W010` diagnostic
    /// explaining why the loop stays (plus any certification diagnostics).
    #[allow(clippy::too_many_arguments)]
    fn try_foreach_dml(
        &self,
        f: &Function,
        fname: &str,
        loop_stmt: StmtId,
        loop_span: imp::token::Span,
        live_after: &std::collections::BTreeSet<intern::Symbol>,
        stage: &mut StageTimes,
        certification: Option<&mut CertSummary>,
    ) -> Option<DmlOutcome> {
        use analysis::depend;
        let (cursor, iterable, body) = find_foreach(&f.body, loop_stmt)?;
        if !body_has_dml(body) {
            return None;
        }
        let depend_started = Instant::now();
        let w010 = |why: String| DmlOutcome {
            replacement: None,
            row: None,
            diags: vec![Diagnostic::new(
                Code::DmlLoopNotExtracted,
                loop_span,
                format!("DML loop not extracted: {why}"),
            )
            .with_primary_label("this write loop stays imperative")
            .with_function(fname)
            .with_pass("depend")],
        };
        // Resolve the driving scan; without it the dependence analysis has
        // no key to prove write-disjointness against.
        let driving = match dml_driving(f, iterable, &self.catalog) {
            Ok(d) => d,
            Err(why) => {
                stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
                return Some(w010(why));
            }
        };
        let info = depend::DrivingInfo {
            cursor,
            table: &driving.table,
            key: driving.key.as_deref(),
            loop_span,
        };
        let dep = depend::analyze_body(body, &info);
        let site = match &dep.verdict {
            depend::Verdict::NotDml => {
                stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
                return None;
            }
            depend::Verdict::Blocked(b) => {
                let mut d = Diagnostic::new(
                    Code::DmlLoopNotBatchable,
                    loop_span,
                    format!(
                        "DML loop not batchable: a {} dependence blocks batching — {}",
                        b.kind, b.detail
                    ),
                )
                .with_primary_label("this write loop cannot be batched")
                .with_function(fname)
                .with_pass("depend");
                if b.span != loop_span && b.span.end != 0 {
                    d = d.with_label(b.span, "the blocking dependence arises here");
                }
                stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
                return Some(DmlOutcome {
                    replacement: None,
                    row: None,
                    diags: vec![d],
                });
            }
            depend::Verdict::Batchable => match &dep.site {
                Some(s) => s,
                None => {
                    stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
                    return Some(w010(format!(
                        "the loop is batchable but performs {} DML statements; \
                         extraction supports exactly one",
                        dep.sites_found
                    )));
                }
            },
        };
        if !self.opts.extract_dml {
            stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
            return Some(w010(
                "the loop is batchable, but foreach-dml extraction is disabled".to_string(),
            ));
        }
        // Removing the loop drops its scalar assignments too: every
        // variable the body defines must be dead afterwards.
        let defs = block_defs(body);
        if let Some(v) = defs.iter().find(|v| live_after.contains(*v)) {
            stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
            return Some(w010(format!(
                "the loop is batchable, but `{v}` is assigned in the body \
                 and still live after the loop"
            )));
        }
        // Arguments of the batched statement are evaluated once, outside
        // the loop — they must not reference loop-local scalars.
        let mut arg_vars = std::collections::BTreeSet::new();
        for a in &site.args {
            expr_vars(a, &mut arg_vars);
        }
        for (g, _) in &site.guards {
            expr_vars(g, &mut arg_vars);
        }
        arg_vars.remove(&cursor);
        if let Some(v) = arg_vars.iter().find(|v| defs.contains(*v)) {
            stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
            return Some(w010(format!(
                "the DML statement depends on `{v}`, a scalar computed \
                 inside the loop body"
            )));
        }
        // Lower to the F-IR form, simplify, and generate SQL.
        let source = crate::fir::DmlSource {
            table: driving.table.clone(),
            alias: driving.alias.clone(),
            pred: driving.pred.clone(),
            params: driving.params.clone(),
            key: driving.key.clone().unwrap_or_default(),
        };
        let mut dml = match crate::fir::loop_to_dml(site, cursor, source) {
            Ok(d) => d,
            Err(why) => {
                stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
                return Some(w010(format!("the loop is batchable, but {why}")));
            }
        };
        let fir_display = dml.to_string();
        let mut rule_trace = vec!["FOREACH-DML".to_string()];
        rule_trace.extend(
            crate::rules::fold_dml(&mut dml, &self.catalog)
                .into_iter()
                .map(|r| r.to_string()),
        );
        let (sql, args) = match crate::sqlgen::dml_to_sql(&dml, self.opts.dialect) {
            Ok(r) => r,
            Err(e) => {
                stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
                return Some(w010(format!("the loop is batchable, but {e}")));
            }
        };
        let mut call_args = vec![Expr::str(sql.clone())];
        call_args.extend(args.iter().cloned());
        let replacement = Expr::call("executeUpdate", call_args);
        stage.depend_ns += depend_started.elapsed().as_nanos() as u64;
        // Differential certification: replay the original loop and the
        // extracted statement on cloned micro-databases and compare final
        // table states (certify::check_dml).
        let mut diags = Vec::new();
        if self.opts.certify {
            let certify_started = Instant::now();
            let ob = build_dml_obligation(&driving, cursor, body, &replacement);
            let certifier = crate::certify::Certifier::new(&self.catalog);
            let verdict = certifier.check_dml(&ob);
            stage.certify_ns += certify_started.elapsed().as_nanos() as u64;
            stage.obligations_checked += 1;
            if let Some(c) = certification {
                c.total += 1;
                match &verdict {
                    crate::certify::Verdict::DischargedNormalize => c.discharged_normalize += 1,
                    crate::certify::Verdict::DischargedDifferential { .. } => {
                        c.discharged_differential += 1
                    }
                    crate::certify::Verdict::Inconclusive { .. } => c.inconclusive += 1,
                    crate::certify::Verdict::Counterexample { .. } => c.counterexamples += 1,
                }
            }
            match verdict {
                crate::certify::Verdict::Counterexample { detail } => {
                    diags.push(
                        Diagnostic::new(
                            Code::CertCounterexample,
                            loop_span,
                            format!("foreach-dml rewrite refuted by differential trial: {detail}"),
                        )
                        .with_primary_label("the batched statement diverges from this loop")
                        .with_function(fname)
                        .with_pass("certify"),
                    );
                    let mut out = w010(
                        "the loop is batchable, but a differential trial refuted the rewrite"
                            .to_string(),
                    );
                    out.diags.extend(diags);
                    return Some(out);
                }
                crate::certify::Verdict::Inconclusive { reason } => {
                    diags.push(
                        Diagnostic::new(
                            Code::CertInconclusive,
                            loop_span,
                            format!("foreach-dml certification inconclusive: {reason}"),
                        )
                        .with_primary_label("no differential trial concluded for this rewrite")
                        .with_function(fname)
                        .with_pass("certify"),
                    );
                }
                _ => {}
            }
        }
        let row = VarExtraction {
            function: fname.to_string(),
            loop_stmt,
            var: format!("dml:{}", dml.target()),
            sql: vec![sql],
            replacement: Some(imp::pretty::pretty_expr(&replacement)),
            fir: Some(fir_display),
            rule_trace,
            outcome: ExtractionOutcome::Extracted,
        };
        Some(DmlOutcome {
            replacement: Some(replacement),
            row: Some(row),
            diags,
        })
    }
}

/// Region-tree walk accumulating a running ve-Map and collecting loop
/// candidates with their fold expressions resolved against the prefix.
fn collect(
    builder: &mut DirBuilder<'_>,
    tree: &RegionTree,
    rid: analysis::regions::RegionId,
    prefix: VeMap,
    f: &Function,
    out: &mut Vec<LoopCandidate>,
) -> VeMap {
    match &tree.region(rid).kind {
        RegionKind::Sequential { children } => {
            let mut running = prefix;
            for c in children {
                running = collect(builder, tree, *c, running, f, out);
            }
            running
        }
        RegionKind::Conditional {
            then_region,
            else_region,
            ..
        } => {
            // Collect loop plans nested in the branches with the prefix at
            // the branch entry, then merge the conditional's own ve.
            let _ = collect(builder, tree, *then_region, prefix.clone(), f, out);
            let _ = collect(builder, tree, *else_region, prefix.clone(), f, out);
            let ve = builder.region_ve(tree, rid, f);
            builder.merge_with(prefix, ve)
        }
        RegionKind::Loop { stmt_id, .. } => {
            let ve = builder.region_ve(tree, rid, f);
            let mut entries = Vec::new();
            for (v, n) in &ve {
                let resolved = builder.dag.substitute_inputs(*n, &prefix);
                entries.push((*v, resolved));
            }
            out.push(LoopCandidate {
                stmt: *stmt_id,
                entries,
            });
            builder.merge_with(prefix, ve)
        }
        _ => {
            let ve = builder.region_ve(tree, rid, f);
            builder.merge_with(prefix, ve)
        }
    }
}

/// Whether the loop statement's subtree writes an external location.
fn loop_has_external_write(f: &Function, loop_stmt: StmtId, ctx: &analysis::DefUseCtx) -> bool {
    fn find(b: &imp::ast::Block, id: StmtId, ctx: &analysis::DefUseCtx) -> Option<bool> {
        for s in &b.stmts {
            if s.id == id {
                return Some(analysis::defuse::DefUse::of_stmt_recursive_in(s, ctx).ext_write);
            }
            match &s.kind {
                imp::ast::StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    if let Some(r) =
                        find(then_branch, id, ctx).or_else(|| find(else_branch, id, ctx))
                    {
                        return Some(r);
                    }
                }
                imp::ast::StmtKind::ForEach { body, .. }
                | imp::ast::StmtKind::While { body, .. } => {
                    if let Some(r) = find(body, id, ctx) {
                        return Some(r);
                    }
                }
                _ => {}
            }
        }
        None
    }
    find(&f.body, loop_stmt, ctx).unwrap_or(false)
}

/// Whether the loop statement's subtree contains a `return` (which would
/// exit the whole function, not just the loop).
fn loop_has_function_exit(f: &Function, loop_stmt: StmtId) -> bool {
    fn has_return(b: &imp::ast::Block) -> bool {
        b.stmts.iter().any(|s| match &s.kind {
            imp::ast::StmtKind::Return(_) => true,
            imp::ast::StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => has_return(then_branch) || has_return(else_branch),
            imp::ast::StmtKind::ForEach { body, .. } | imp::ast::StmtKind::While { body, .. } => {
                has_return(body)
            }
            _ => false,
        })
    }
    fn find(b: &imp::ast::Block, id: StmtId) -> Option<bool> {
        for s in &b.stmts {
            if s.id == id {
                if let imp::ast::StmtKind::ForEach { body, .. } = &s.kind {
                    return Some(has_return(body));
                }
                return Some(false);
            }
            match &s.kind {
                imp::ast::StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    if let Some(r) = find(then_branch, id).or_else(|| find(else_branch, id)) {
                        return Some(r);
                    }
                }
                imp::ast::StmtKind::ForEach { body, .. }
                | imp::ast::StmtKind::While { body, .. } => {
                    if let Some(r) = find(body, id) {
                        return Some(r);
                    }
                }
                _ => {}
            }
        }
        None
    }
    find(&f.body, loop_stmt).unwrap_or(false)
}

/// All SQL strings appearing in a replacement expression.
fn collect_sql(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    e.walk(&mut |x| {
        if let Expr::Call { name, args } = x {
            if name == "executeQuery" || name == "executeScalar" {
                if let Some(Expr::Lit(imp::ast::Literal::Str(s))) = args.first() {
                    out.push(s.clone());
                }
            }
        }
    });
    out
}

// ===========================================================================
// foreach-dml extraction (DESIGN.md §5i): batch a write loop into one
// set-oriented DML statement, licensed by `analysis::depend`.
// ===========================================================================

/// The outcome of attempting foreach-dml extraction on one write loop.
struct DmlOutcome {
    /// The replacement `executeUpdate(sql, args…)` expression, when the
    /// loop may be removed.
    replacement: Option<Expr>,
    /// Report row for the extracted statement.
    row: Option<VarExtraction>,
    /// `E010`/`W010` (and certification) diagnostics.
    diags: Vec<Diagnostic>,
}

/// Locate a `ForEach` statement and borrow its pieces.
fn find_foreach(
    b: &imp::ast::Block,
    id: StmtId,
) -> Option<(intern::Symbol, &Expr, &imp::ast::Block)> {
    for s in &b.stmts {
        if s.id == id {
            if let imp::ast::StmtKind::ForEach {
                var,
                iterable,
                body,
            } = &s.kind
            {
                return Some((*var, iterable, body));
            }
            return None;
        }
        let found = match &s.kind {
            imp::ast::StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => find_foreach(then_branch, id).or_else(|| find_foreach(else_branch, id)),
            imp::ast::StmtKind::ForEach { body, .. } | imp::ast::StmtKind::While { body, .. } => {
                find_foreach(body, id)
            }
            _ => None,
        };
        if found.is_some() {
            return found;
        }
    }
    None
}

/// The driving scan of a write loop, resolved from its iterable.
struct DmlDriving {
    /// The driving query's literal SQL, verbatim.
    sql: String,
    /// Base table iterated.
    table: String,
    /// Alias cursor fields are phrased over in generated SQL.
    alias: String,
    /// Driving `WHERE` predicate, if any.
    pred: Option<algebra::scalar::Scalar>,
    /// Expressions bound to the driving query's `?` ordinals.
    params: Vec<Expr>,
    /// Single-column, non-nullable unique key of the table, when declared.
    key: Option<String>,
}

/// Resolve the loop's driving query: the iterable must be (a variable
/// holding the result of) a single `executeQuery` over a literal SQL
/// string that parses to a plain, optionally filtered, single-table scan.
fn dml_driving(f: &Function, iterable: &Expr, catalog: &Catalog) -> Result<DmlDriving, String> {
    let (sql, args) = match iterable {
        Expr::Call { name, args } if name == "executeQuery" => match args.first() {
            Some(Expr::Lit(imp::ast::Literal::Str(s))) => (s.clone(), args[1..].to_vec()),
            _ => return Err("the driving query is dynamically constructed".to_string()),
        },
        Expr::Var(v) => {
            let mut defs: Vec<&Expr> = Vec::new();
            walk_stmts(&f.body, false, &mut |s, _| {
                if let imp::ast::StmtKind::Assign { target, value } = &s.kind {
                    if target == v {
                        defs.push(value);
                    }
                }
            });
            match defs.as_slice() {
                [Expr::Call { name, args }] if name == "executeQuery" => match args.first() {
                    Some(Expr::Lit(imp::ast::Literal::Str(s))) => (s.clone(), args[1..].to_vec()),
                    _ => return Err("the driving query is dynamically constructed".to_string()),
                },
                [_] => {
                    return Err(format!(
                        "the loop iterates `{v}`, which is not an `executeQuery` result"
                    ))
                }
                _ => {
                    return Err(format!(
                        "the loop's source `{v}` is assigned more than once"
                    ))
                }
            }
        }
        _ => return Err("the loop does not iterate a query result".to_string()),
    };
    let ra = algebra::parse::parse_sql(&sql)
        .map_err(|e| format!("the driving query does not parse: {e}"))?;
    let (table, alias, pred) = match ra {
        algebra::RaExpr::Table { name, alias } => (name, alias, None),
        algebra::RaExpr::Select { input, pred } => match *input {
            algebra::RaExpr::Table { name, alias } => (name, alias, Some(pred)),
            _ => return Err("the driving query is not a single-table scan".to_string()),
        },
        _ => return Err("the driving query is not a plain `SELECT *` scan".to_string()),
    };
    let key = catalog.get(&table).and_then(|t| match t.key.as_slice() {
        [k] if !t.column_nullable(k) => Some(k.clone()),
        _ => None,
    });
    Ok(DmlDriving {
        sql,
        alias: alias.unwrap_or_else(|| table.clone()),
        table,
        pred,
        params: args,
        key,
    })
}

/// Variables defined (assigned) anywhere in a block, recursively.
fn block_defs(b: &imp::ast::Block) -> std::collections::BTreeSet<intern::Symbol> {
    let mut out = std::collections::BTreeSet::new();
    for s in &b.stmts {
        out.extend(analysis::defuse::DefUse::of_stmt_recursive(s).defs);
    }
    out
}

/// Free variables read by an expression.
fn expr_vars(e: &Expr, out: &mut std::collections::BTreeSet<intern::Symbol>) {
    e.walk(&mut |x| {
        if let Expr::Var(v) = x {
            out.insert(*v);
        }
    });
}

/// Does any expression inside the block call `executeUpdate`? Decides
/// whether the foreach-dml path (and its `E010`/`W010` blame contract)
/// applies to a side-effecting loop, or the generic `W004` handling does.
fn body_has_dml(b: &imp::ast::Block) -> bool {
    fn expr_has(e: &Expr) -> bool {
        let mut found = false;
        e.walk(&mut |x| {
            if let Expr::Call { name, .. } = x {
                if name == "executeUpdate" {
                    found = true;
                }
            }
        });
        found
    }
    fn block_has(b: &imp::ast::Block) -> bool {
        b.stmts.iter().any(|s| match &s.kind {
            imp::ast::StmtKind::Assign { value, .. } => expr_has(value),
            imp::ast::StmtKind::Expr(e) => expr_has(e),
            imp::ast::StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => expr_has(cond) || block_has(then_branch) || block_has(else_branch),
            imp::ast::StmtKind::ForEach { iterable, body, .. } => {
                expr_has(iterable) || block_has(body)
            }
            imp::ast::StmtKind::While { cond, body } => expr_has(cond) || block_has(body),
            imp::ast::StmtKind::Return(e) => e.as_ref().is_some_and(expr_has),
            imp::ast::StmtKind::Print(es) => es.iter().any(expr_has),
            imp::ast::StmtKind::Break | imp::ast::StmtKind::Continue => false,
        })
    }
    block_has(b)
}

/// Synthesize the two single-function programs a foreach-dml rewrite is
/// certified against: `orig` re-runs the driving query and the verbatim
/// loop body; `batch` executes only the extracted set-oriented statement.
/// Both are parameterized over the free scalars either side reads, so
/// differential trials quantify over them.
fn build_dml_obligation(
    driving: &DmlDriving,
    cursor: intern::Symbol,
    body: &imp::ast::Block,
    replacement: &Expr,
) -> crate::certify::DmlObligation {
    use imp::ast::{Block, Literal, Stmt, StmtKind};
    let span = imp::token::Span::new(0, 0);
    let rows = intern::Symbol::intern("__dml_rows");
    let entry = intern::Symbol::intern("__dml_trial");
    // Free scalar inputs: variables the driving arguments or the loop body
    // read that are neither loop-local nor the cursor/rows bindings.
    let mut free = std::collections::BTreeSet::new();
    for a in &driving.params {
        expr_vars(a, &mut free);
    }
    for s in &body.stmts {
        free.extend(analysis::defuse::DefUse::of_stmt_recursive(s).uses);
    }
    let defs = block_defs(body);
    free.retain(|v| *v != cursor && *v != rows && !defs.contains(v));
    let params: Vec<intern::Symbol> = free.into_iter().collect();

    let mut query_args = vec![Expr::Lit(Literal::Str(driving.sql.clone()))];
    query_args.extend(driving.params.iter().cloned());
    let orig_body = Block {
        stmts: vec![
            Stmt {
                id: StmtId(1),
                kind: StmtKind::Assign {
                    target: rows,
                    value: Expr::call("executeQuery", query_args),
                },
                span,
            },
            Stmt {
                id: StmtId(2),
                kind: StmtKind::ForEach {
                    var: cursor,
                    iterable: Expr::Var(rows),
                    body: body.clone(),
                },
                span,
            },
        ],
    };
    let batch_body = Block {
        stmts: vec![Stmt {
            id: StmtId(1),
            kind: StmtKind::Expr(replacement.clone()),
            span,
        }],
    };
    let mk = |b: Block| {
        let mut p = imp::ast::Program {
            functions: vec![Function {
                name: entry,
                params: params.clone(),
                body: b,
                span,
            }],
        };
        p.renumber();
        p
    };
    crate::certify::DmlObligation {
        orig: mk(orig_body),
        batch: mk(batch_body),
        entry: entry.to_string(),
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::schema::{SqlType, TableSchema};
    use imp::parse_and_normalize;

    fn catalog() -> Catalog {
        Catalog::new()
            .with(
                TableSchema::new(
                    "board",
                    &[
                        ("id", SqlType::Int),
                        ("rnd_id", SqlType::Int),
                        ("p1", SqlType::Int),
                        ("p2", SqlType::Int),
                        ("p3", SqlType::Int),
                        ("p4", SqlType::Int),
                    ],
                )
                .with_key(&["id"]),
            )
            .with(
                TableSchema::new(
                    "emp",
                    &[
                        ("id", SqlType::Int),
                        ("name", SqlType::Text),
                        ("dept", SqlType::Text),
                        ("salary", SqlType::Int),
                    ],
                )
                .with_key(&["id"]),
            )
            .with(
                TableSchema::new(
                    "project",
                    &[
                        ("id", SqlType::Int),
                        ("name", SqlType::Text),
                        ("isfinished", SqlType::Bool),
                    ],
                )
                .with_key(&["id"]),
            )
            .with(
                TableSchema::new(
                    "wilos_user",
                    &[
                        ("id", SqlType::Int),
                        ("name", SqlType::Text),
                        ("role_id", SqlType::Int),
                    ],
                )
                .with_key(&["id"]),
            )
            .with(
                TableSchema::new("role", &[("id", SqlType::Int), ("name", SqlType::Text)])
                    .with_key(&["id"]),
            )
    }

    fn extract(src: &str, f: &str) -> ExtractionReport {
        let p = parse_and_normalize(src).unwrap();
        Extractor::new(catalog()).extract_function(&p, f)
    }

    #[test]
    fn figure2_find_max_score() {
        let r = extract(
            r#"fn findMaxScore() {
                boards = executeQuery("SELECT * FROM board WHERE rnd_id = 1");
                scoreMax = 0;
                for (t in boards) {
                    score = max(max(max(t.p1, t.p2), t.p3), t.p4);
                    if (score > scoreMax) scoreMax = score;
                }
                return scoreMax;
            }"#,
            "findMaxScore",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let v = &r.vars[0];
        assert_eq!(v.var, "scoreMax");
        assert_eq!(v.outcome, ExtractionOutcome::Extracted);
        let sql = v.sql.join(" | ");
        assert!(sql.contains("MAX(GREATEST(p1, p2, p3, p4))"), "{sql}");
        assert!(sql.contains("WHERE (rnd_id = 1)"), "{sql}");
        let printed = imp::pretty_print(&r.program);
        assert!(!printed.contains("for ("), "loop must be gone:\n{printed}");
        assert!(
            printed.contains("max(0, coalesce("),
            "T6 form expected:\n{printed}"
        );
    }

    #[test]
    fn selection_push_into_query() {
        // Wilos #6 shape: filter unfinished projects in Java → σ in SQL.
        let r = extract(
            r#"fn unfinished() {
                all = executeQuery("SELECT * FROM project");
                out = list();
                for (p in all) {
                    if (p.isfinished == false) { out.add(p.name); }
                }
                return out;
            }"#,
            "unfinished",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let sql = r.vars[0].sql.join(" ");
        assert!(sql.contains("WHERE (isfinished = FALSE)"), "{sql}");
        assert!(sql.contains("SELECT name FROM project"), "{sql}");
    }

    #[test]
    fn parameterized_selection_resolves_inputs() {
        let r = extract(
            r#"fn bigEarners(minSalary) {
                rows = executeQuery("SELECT * FROM emp");
                out = list();
                for (e in rows) {
                    if (e.salary > minSalary) { out.add(e.name); }
                }
                return out;
            }"#,
            "bigEarners",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let repl = r.vars[0].replacement.clone().unwrap();
        assert!(repl.contains("minSalary"), "{repl}");
        assert!(
            r.vars[0].sql[0].contains("(salary > ?)"),
            "{:?}",
            r.vars[0].sql
        );
    }

    #[test]
    fn nested_loop_join() {
        // Wilos #30 shape: nested-loop join in the application.
        let r = extract(
            r#"fn userRoles() {
                users = executeQuery("SELECT * FROM wilos_user");
                out = list();
                for (u in users) {
                    roles = executeQuery("SELECT * FROM role WHERE id = ?", u.role_id);
                    for (ro in roles) {
                        out.add(pair(u.name, ro.name));
                    }
                }
                return out;
            }"#,
            "userRoles",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let sql = r
            .vars
            .iter()
            .find(|v| v.var == "out")
            .unwrap()
            .sql
            .join(" ");
        assert!(sql.contains("JOIN"), "{sql}");
        assert!(sql.contains("role.id"), "{sql}");
        assert!(sql.contains("wilos_user.role_id"), "{sql}");
    }

    #[test]
    fn group_by_from_nested_aggregation() {
        let r = extract(
            r#"fn totals() {
                depts = executeQuery("SELECT DISTINCT dept FROM emp");
                out = list();
                for (d in depts) {
                    total = 0;
                    rows = executeQuery("SELECT salary FROM emp WHERE dept = ?", d.dept);
                    for (x in rows) { total = total + x.salary; }
                    out.add(pair(d.dept, total));
                }
                return out;
            }"#,
            "totals",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let sql = r
            .vars
            .iter()
            .find(|v| v.var == "out")
            .unwrap()
            .sql
            .join(" ");
        assert!(sql.contains("GROUP BY"), "{sql}");
        assert!(sql.contains("LEFT JOIN"), "{sql}");
        assert!(sql.contains("SUM"), "{sql}");
    }

    #[test]
    fn exists_flag() {
        let r = extract(
            r#"fn hasBig() {
                rows = executeQuery("SELECT * FROM emp");
                found = false;
                for (e in rows) {
                    if (e.salary > 100000) { found = true; }
                }
                return found;
            }"#,
            "hasBig",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let sql = r.vars[0].sql.join(" ");
        assert!(sql.contains("COUNT"), "{sql}");
        assert!(sql.contains("(salary > 100000)"), "{sql}");
        let repl = r.vars[0].replacement.clone().unwrap();
        assert!(repl.contains("> 0"), "{repl}");
    }

    #[test]
    fn count_accumulator() {
        let r = extract(
            r#"fn countBig() {
                rows = executeQuery("SELECT * FROM emp WHERE salary > 50000");
                n = 0;
                for (e in rows) { n = n + 1; }
                return n;
            }"#,
            "countBig",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        assert!(r.vars[0].sql[0].contains("COUNT"), "{:?}", r.vars[0].sql);
    }

    #[test]
    fn break_prevents_extraction() {
        let r = extract(
            r#"fn firstBig() {
                rows = executeQuery("SELECT * FROM emp");
                v = 0;
                for (e in rows) {
                    v = v + e.salary;
                    if (v > 100) break;
                }
                return v;
            }"#,
            "firstBig",
        );
        assert_eq!(r.loops_rewritten, 0);
        assert!(matches!(
            r.vars[0].outcome,
            ExtractionOutcome::FoldFailed(_)
        ));
    }

    #[test]
    fn update_in_loop_keeps_loop_with_require_all() {
        let r = extract(
            r#"fn auditAndSum() {
                rows = executeQuery("SELECT * FROM emp");
                s = 0;
                for (e in rows) {
                    executeUpdate("INSERT INTO emp VALUES (?, 'x', 'y', 0)", e.id);
                    s = s + e.salary;
                }
                return s;
            }"#,
            "auditAndSum",
        );
        // s itself is extractable (the update is outside its slice), but
        // the loop body has residual effects; with the default heuristic
        // the loop is kept — the update must never be deleted.
        let printed = imp::pretty_print(&r.program);
        assert!(printed.contains("executeUpdate"), "{printed}");
        assert!(printed.contains("for ("), "{printed}");
    }

    #[test]
    fn partial_extraction_reports_both() {
        let r = extract(
            r#"fn partial() {
                rows = executeQuery("SELECT * FROM emp");
                s = 0;
                prev = 0;
                trend = 0;
                for (e in rows) {
                    s = s + e.salary;
                    trend = trend + (e.salary - prev);
                    prev = e.salary;
                }
                return s + trend + prev;
            }"#,
            "partial",
        );
        assert_eq!(r.loops_rewritten, 0);
        let s = r.vars.iter().find(|v| v.var == "s").unwrap();
        assert!(
            matches!(s.outcome, ExtractionOutcome::ExtractedNotRewritten(_)),
            "{:?}",
            s.outcome
        );
        let trend = r.vars.iter().find(|v| v.var == "trend").unwrap();
        assert!(matches!(trend.outcome, ExtractionOutcome::FoldFailed(_)));
    }

    #[test]
    fn whole_tuple_collection_is_identity() {
        let r = extract(
            r#"fn fetchAll() {
                rows = executeQuery("SELECT * FROM emp WHERE salary > 10");
                out = list();
                for (e in rows) { out.add(e); }
                return out;
            }"#,
            "fetchAll",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        assert!(
            r.vars[0].sql[0].contains("SELECT * FROM emp"),
            "{:?}",
            r.vars[0].sql
        );
    }

    #[test]
    fn set_dedup_extraction() {
        let r = extract(
            r#"fn depts() {
                rows = executeQuery("SELECT * FROM emp");
                out = set();
                for (e in rows) { out.add(e.dept); }
                return out;
            }"#,
            "depts",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        assert!(r.vars[0].sql[0].contains("DISTINCT"), "{:?}", r.vars[0].sql);
    }

    #[test]
    fn outer_apply_star_schema() {
        let r = extract(
            r#"fn details() {
                rows = executeQuery("SELECT * FROM emp");
                out = list();
                for (e in rows) {
                    nm = executeScalar("SELECT name FROM wilos_user WHERE id = ?", e.id);
                    out.add(pair(e.name, nm));
                }
                return out;
            }"#,
            "details",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let sql = r
            .vars
            .iter()
            .find(|v| v.var == "out")
            .unwrap()
            .sql
            .join(" ");
        assert!(sql.contains("LEFT JOIN LATERAL"), "{sql}");
        assert!(sql.contains("LIMIT 1"), "{sql}");
    }

    #[test]
    fn diagnostics_are_ordered_by_source_position() {
        let r = extract(
            r#"fn twoFailures() {
                rows = executeQuery("SELECT * FROM emp");
                a = 0;
                for (e in rows) {
                    a = a + e.salary;
                    if (a > 10) break;
                }
                b = 0;
                for (e2 in rows) {
                    b = b + e2.salary;
                    if (b > 20) break;
                }
                return a + b;
            }"#,
            "twoFailures",
        );
        assert_eq!(r.loops_rewritten, 0);
        let e004 = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::AbruptLoopExit)
            .count();
        assert_eq!(e004, 2, "{:#?}", r.diagnostics);
        let starts: Vec<usize> = r.diagnostics.iter().map(|d| d.primary.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "diagnostics must be ordered by span");
    }

    #[test]
    fn duplicate_fold_notes_collapse_to_one_diagnostic() {
        // A loop nested in a conditional is reached through more than one
        // region walk, so the D-IR builder can record its fold failure
        // repeatedly; the report must surface it once.
        let r = extract(
            r#"fn cond(flag) {
                rows = executeQuery("SELECT * FROM emp");
                v = 0;
                if (flag > 0) {
                    for (e in rows) {
                        v = v + e.salary;
                        if (v > 10) break;
                    }
                }
                return v;
            }"#,
            "cond",
        );
        let e004: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::AbruptLoopExit && d.var.as_deref() == Some("v"))
            .collect();
        assert_eq!(e004.len(), 1, "{:#?}", r.diagnostics);
    }

    #[test]
    fn certification_discharges_all_obligations() {
        let src = r#"fn total() {
            rows = executeQuery("SELECT * FROM emp");
            s = 0;
            for (e in rows) { s = s + e.salary; }
            return s;
        }"#;
        let p = parse_and_normalize(src).unwrap();
        let opts = ExtractorOptions {
            certify: true,
            ..Default::default()
        };
        let r = Extractor::with_options(catalog(), opts).extract_function(&p, "total");
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let c = r.certification.expect("certification requested");
        assert!(c.total > 0, "at least the fold-intro obligation: {c:?}");
        assert_eq!(c.counterexamples, 0, "{:#?}", r.diagnostics);
        assert_eq!(c.inconclusive, 0, "{:#?}", r.diagnostics);
        assert!(c.certified());
        assert!(r.stage.obligations_checked as usize == c.total);
        let json = r.render_json(src);
        assert!(json.contains("\"certification\""), "{json}");
        assert!(json.contains("\"certified\":true"), "{json}");
    }

    #[test]
    fn certification_absent_when_not_requested() {
        let r = extract(
            r#"fn f() { q = executeQuery("SELECT * FROM emp"); s = 0; for (e in q) { s = s + e.salary; } return s; }"#,
            "f",
        );
        assert!(r.certification.is_none());
        assert_eq!(r.stage.certify_ns, 0);
        assert_eq!(r.stage.obligations_checked, 0);
        assert!(!r.render_json("").contains("certification"));
    }

    #[test]
    fn certification_aggregates_across_program() {
        let src = r#"
            fn a() {
                q = executeQuery("SELECT * FROM emp");
                n = 0;
                for (e in q) { n = n + 1; }
                return n;
            }
            fn b() {
                q = executeQuery("SELECT * FROM emp");
                s = 0;
                for (e in q) { s = s + e.salary; }
                return s;
            }
        "#;
        let p = parse_and_normalize(src).unwrap();
        let opts = ExtractorOptions {
            certify: true,
            ..Default::default()
        };
        let r = Extractor::with_options(catalog(), opts).extract_program(&p);
        assert_eq!(r.loops_rewritten, 2, "{:#?}", r.vars);
        let c = r.certification.expect("certification requested");
        assert!(c.total >= 2, "{c:?}");
        assert!(c.certified(), "{:#?}", r.diagnostics);
    }

    #[test]
    fn certify_flag_changes_fingerprint() {
        let base = ExtractorOptions::default();
        let certified = ExtractorOptions {
            certify: true,
            ..Default::default()
        };
        assert_ne!(base.fingerprint(), certified.fingerprint());
    }

    #[test]
    fn timing_is_recorded() {
        let r = extract(
            r#"fn f() { q = executeQuery("SELECT * FROM emp"); s = 0; for (e in q) { s = s + e.salary; } return s; }"#,
            "f",
        );
        assert!(r.elapsed.as_nanos() > 0);
        assert!(r.changed());
        assert!(r.any_sql());
    }
}

#[cfg(test)]
mod dependent_agg_tests {
    use super::*;
    use algebra::schema::{SqlType, TableSchema};

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new(
                "emp",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("salary", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
    }

    const SRC: &str = r#"
        fn topEarner() {
            rows = executeQuery("SELECT * FROM emp");
            best = 0;
            bestName = "nobody";
            for (e in rows) {
                if (e.salary > best) {
                    best = e.salary;
                    bestName = e.name;
                }
            }
            return bestName;
        }
    "#;

    #[test]
    fn argmax_disabled_by_default() {
        let p = imp::parse_and_normalize(SRC).unwrap();
        let r = Extractor::new(catalog()).extract_function(&p, "topEarner");
        let w = r.vars.iter().find(|v| v.var == "bestName").unwrap();
        assert!(
            matches!(w.outcome, ExtractionOutcome::FoldFailed(_)),
            "{:?}",
            w.outcome
        );
    }

    #[test]
    fn argmax_extracts_when_enabled() {
        let p = imp::parse_and_normalize(SRC).unwrap();
        let opts = ExtractorOptions {
            dependent_agg: true,
            ..Default::default()
        };
        let r = Extractor::with_options(catalog(), opts).extract_function(&p, "topEarner");
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
        let w = r.vars.iter().find(|v| v.var == "bestName").unwrap();
        assert_eq!(w.outcome, ExtractionOutcome::Extracted);
        let sql = w.sql.join(" ");
        assert!(sql.contains("ORDER BY salary DESC"), "{sql}");
        assert!(sql.contains("LIMIT 1"), "{sql}");
        assert!(sql.contains("(salary > 0)"), "{sql}");
        let repl = w.replacement.clone().unwrap();
        assert!(repl.contains("coalesce("), "{repl}");
    }

    #[test]
    fn argmin_variant() {
        let src = SRC.replace('>', "<").replace("best = 0;", "best = 999999;");
        let p = imp::parse_and_normalize(&src).unwrap();
        let opts = ExtractorOptions {
            dependent_agg: true,
            ..Default::default()
        };
        let r = Extractor::with_options(catalog(), opts).extract_function(&p, "topEarner");
        let w = r.vars.iter().find(|v| v.var == "bestName").unwrap();
        assert_eq!(w.outcome, ExtractionOutcome::Extracted, "{:#?}", r.vars);
        assert!(w.sql.join(" ").contains("ORDER BY salary"), "{:?}", w.sql);
    }

    #[test]
    fn non_strict_comparison_not_supported() {
        // `>=` keeps the *last* extremal row; declined.
        let src = SRC.replace("e.salary > best", "e.salary >= best");
        let p = imp::parse_and_normalize(&src).unwrap();
        let opts = ExtractorOptions {
            dependent_agg: true,
            ..Default::default()
        };
        let r = Extractor::with_options(catalog(), opts).extract_function(&p, "topEarner");
        let w = r.vars.iter().find(|v| v.var == "bestName").unwrap();
        assert!(matches!(w.outcome, ExtractionOutcome::FoldFailed(_)));
    }
}

#[cfg(test)]
mod cost_based_tests {
    use super::*;
    use crate::costing::DbStats;
    use algebra::schema::{SqlType, TableSchema};

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new("emp", &[("id", SqlType::Int), ("salary", SqlType::Int)])
                .with_key(&["id"]),
        )
    }

    const SRC: &str = r#"
        fn total() {
            rows = executeQuery("SELECT * FROM emp");
            s = 0;
            for (e in rows) { s = s + e.salary; }
            return s;
        }
    "#;

    #[test]
    fn beneficial_rewrite_is_applied() {
        let p = imp::parse_and_normalize(SRC).unwrap();
        let stats = DbStats::default()
            .with_costs(500.0, 0.01)
            .with_table("emp", 100_000.0, 40.0);
        let opts = ExtractorOptions {
            cost_based: Some(stats),
            ..Default::default()
        };
        let r = Extractor::with_options(catalog(), opts).extract_function(&p, "total");
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.vars);
    }

    #[test]
    fn rewrite_skipped_when_estimated_costlier() {
        // With an (artificial) enormous per-byte cost and a tiny table, the
        // extra round trip cannot pay for itself: one fetch already happens
        // and the aggregate query adds latency.
        let p = imp::parse_and_normalize(SRC).unwrap();
        let stats = DbStats::default()
            .with_costs(1_000_000.0, 0.0)
            .with_table("emp", 1.0, 8.0);
        // Original: 1 round trip (the loop executes no inner queries).
        // Rewritten: 1 round trip too — same latency, so beneficial (<=).
        // Force the imbalance by charging the rewrite a second query: use a
        // program whose loop is over a variable resolved from one query but
        // where the rewrite still needs it (partial). Simpler: verify the
        // decision function directly through the option by making the
        // original cost 0 via a missing loop → estimated INFINITY never
        // happens here; instead assert the beneficial path equals the
        // non-cost-based result for parity.
        let opts = ExtractorOptions {
            cost_based: Some(stats),
            ..Default::default()
        };
        let r = Extractor::with_options(catalog(), opts).extract_function(&p, "total");
        // Equal costs → still beneficial (<=): the rewrite is applied.
        assert_eq!(r.loops_rewritten, 1);
        // And the explicit costlier case, via costing::decide, is covered in
        // crate::costing::tests::decide_rejects_costlier_rewrite.
    }
}

// foreach-dml extraction (DESIGN.md §5i).
#[cfg(test)]
mod foreach_dml_tests {
    use super::*;
    use algebra::schema::{SqlType, TableSchema};
    use imp::parse_and_normalize;

    fn dml_catalog() -> Catalog {
        Catalog::new()
            .with(
                TableSchema::new(
                    "emp",
                    &[
                        ("id", SqlType::Int),
                        ("name", SqlType::Text),
                        ("dept", SqlType::Text),
                        ("salary", SqlType::Int),
                    ],
                )
                .with_key(&["id"]),
            )
            .with(TableSchema::new(
                "payout",
                &[("emp_id", SqlType::Int), ("amount", SqlType::Int)],
            ))
    }

    fn extract_dml(src: &str, f: &str) -> ExtractionReport {
        let p = parse_and_normalize(src).unwrap();
        Extractor::new(dml_catalog()).extract_function(&p, f)
    }

    #[test]
    fn batchable_update_loop_extracts() {
        let r = extract_dml(
            r#"fn giveRaise(amount) {
                rows = executeQuery("SELECT * FROM emp WHERE dept = 'eng'");
                for (e in rows) {
                    executeUpdate("UPDATE emp SET salary = ? WHERE id = ?",
                                  e.salary + amount, e.id);
                }
            }"#,
            "giveRaise",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.diagnostics);
        let v = r.vars.iter().find(|v| v.var == "dml:emp").expect("dml row");
        assert_eq!(v.outcome, ExtractionOutcome::Extracted);
        let sql = v.sql.join(" ");
        assert!(sql.starts_with("UPDATE emp SET salary ="), "{sql}");
        assert!(sql.contains("FROM (SELECT"), "{sql}");
        assert!(sql.contains("WHERE emp.id = s.k0"), "{sql}");
        assert!(v.rule_trace.contains(&"FOREACH-DML".to_string()));
        let printed = imp::pretty_print(&r.program);
        assert!(!printed.contains("for ("), "loop must be gone:\n{printed}");
        assert!(printed.contains("executeUpdate"), "{printed}");
        // amount survives as a bound argument of the batched statement.
        assert!(printed.contains("amount"), "{printed}");
        assert!(
            !r.diagnostics
                .iter()
                .any(|d| d.code == Code::DmlLoopNotExtracted
                    || d.code == Code::DmlLoopNotBatchable
                    || d.code == Code::LoopNotExtracted),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn batchable_update_certifies_differentially() {
        let p = parse_and_normalize(
            r#"fn giveRaise(amount) {
                rows = executeQuery("SELECT * FROM emp WHERE salary < 3");
                for (e in rows) {
                    executeUpdate("UPDATE emp SET salary = ? WHERE id = ?",
                                  e.salary + amount, e.id);
                }
            }"#,
        )
        .unwrap();
        let opts = ExtractorOptions {
            certify: true,
            ..Default::default()
        };
        let r = Extractor::with_options(dml_catalog(), opts).extract_function(&p, "giveRaise");
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.diagnostics);
        let c = r.certification.expect("certification summary");
        assert_eq!(c.total, 1);
        assert_eq!(c.discharged_differential, 1, "{c:?}");
        assert_eq!(c.counterexamples, 0);
        assert_eq!(c.inconclusive, 0, "{:#?}", r.diagnostics);
    }

    #[test]
    fn insert_loop_extracts_to_insert_select() {
        let r = extract_dml(
            r#"fn logPayouts() {
                rows = executeQuery("SELECT * FROM emp");
                for (e in rows) {
                    executeUpdate(
                        "INSERT INTO payout (emp_id, amount) VALUES (?, ?)",
                        e.id, e.salary);
                }
            }"#,
            "logPayouts",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.diagnostics);
        let v = r.vars.iter().find(|v| v.var == "dml:payout").unwrap();
        let sql = v.sql.join(" ");
        assert!(
            sql.starts_with("INSERT INTO payout (emp_id, amount) SELECT"),
            "{sql}"
        );
    }

    #[test]
    fn delete_loop_folds_predicate() {
        let r = extract_dml(
            r#"fn purgeLow() {
                rows = executeQuery("SELECT * FROM emp WHERE salary < 10");
                for (e in rows) {
                    executeUpdate("DELETE FROM emp WHERE id = ?", e.id);
                }
            }"#,
            "purgeLow",
        );
        assert_eq!(r.loops_rewritten, 1, "{:#?}", r.diagnostics);
        let v = r.vars.iter().find(|v| v.var == "dml:emp").unwrap();
        let sql = v.sql.join(" ");
        assert!(sql.starts_with("DELETE FROM emp WHERE"), "{sql}");
        assert!(!sql.contains("IN ("), "fold must elide the subquery: {sql}");
        assert!(
            v.rule_trace.contains(&"DML-DELETE-FOLD".to_string()),
            "{:?}",
            v.rule_trace
        );
    }

    #[test]
    fn carried_scalar_blocks_with_e010() {
        let r = extract_dml(
            r#"fn rebalance() {
                rows = executeQuery("SELECT * FROM emp");
                total = 0;
                for (e in rows) {
                    total = total + e.salary;
                    executeUpdate("UPDATE emp SET salary = ? WHERE id = ?",
                                  total, e.id);
                }
            }"#,
            "rebalance",
        );
        assert_eq!(r.loops_rewritten, 0);
        let e010: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::DmlLoopNotBatchable)
            .collect();
        assert_eq!(e010.len(), 1, "{:#?}", r.diagnostics);
        assert!(
            e010[0].message.contains("flow dependence"),
            "{}",
            e010[0].message
        );
        // The E010 replaces the generic W007 blame for this write loop.
        assert!(
            !r.diagnostics
                .iter()
                .any(|d| d.code == Code::LoopNotExtracted),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn two_dml_sites_yield_w010() {
        let r = extract_dml(
            r#"fn doubleWrite() {
                rows = executeQuery("SELECT * FROM emp");
                for (e in rows) {
                    executeUpdate("UPDATE emp SET salary = 1 WHERE id = ?", e.id);
                    executeUpdate("UPDATE emp SET name = 'x' WHERE id = ?", e.id);
                }
            }"#,
            "doubleWrite",
        );
        assert_eq!(r.loops_rewritten, 0);
        let w: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::DmlLoopNotExtracted)
            .collect();
        assert_eq!(w.len(), 1, "{:#?}", r.diagnostics);
        assert!(
            w[0].message.contains("2 DML statements"),
            "{}",
            w[0].message
        );
    }

    #[test]
    fn extract_dml_disabled_reports_w010_and_keeps_loop() {
        let p = parse_and_normalize(
            r#"fn giveRaise() {
                rows = executeQuery("SELECT * FROM emp");
                for (e in rows) {
                    executeUpdate("UPDATE emp SET salary = 0 WHERE id = ?", e.id);
                }
            }"#,
        )
        .unwrap();
        let opts = ExtractorOptions {
            extract_dml: false,
            ..Default::default()
        };
        let r = Extractor::with_options(dml_catalog(), opts).extract_function(&p, "giveRaise");
        assert_eq!(r.loops_rewritten, 0);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == Code::DmlLoopNotExtracted && d.message.contains("disabled")),
            "{:#?}",
            r.diagnostics
        );
        let printed = imp::pretty_print(&r.program);
        assert!(printed.contains("for ("), "loop must stay:\n{printed}");
    }

    #[test]
    fn live_loop_scalar_prevents_dml_rewrite() {
        // `last` is freshly assigned each iteration (no carried dependence,
        // so the loop *is* batchable) but is returned after the loop:
        // removing the loop would drop it, so the loop stays with a W010
        // naming the variable.
        let r = extract_dml(
            r#"fn lastRaised() {
                rows = executeQuery("SELECT * FROM emp");
                last = 0;
                for (e in rows) {
                    executeUpdate("UPDATE emp SET salary = 0 WHERE id = ?", e.id);
                    last = e.id;
                }
                return last;
            }"#,
            "lastRaised",
        );
        assert_eq!(r.loops_rewritten, 0);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == Code::DmlLoopNotExtracted && d.message.contains("`last`")),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn dynamic_driving_query_yields_w010() {
        let r = extract_dml(
            r#"fn dyn(q) {
                rows = executeQuery(q);
                for (e in rows) {
                    executeUpdate("UPDATE emp SET salary = 0 WHERE id = ?", e.id);
                }
            }"#,
            "dyn",
        );
        assert_eq!(r.loops_rewritten, 0);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == Code::DmlLoopNotExtracted),
            "{:#?}",
            r.diagnostics
        );
    }
}
