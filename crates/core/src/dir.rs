//! D-IR construction (paper Sec. 3.3, Appendix D).
//!
//! D-IR construction "works on top of the region hierarchy … a bottom up
//! recursive algorithm": build the ee-DAG and ve-Map of each sub-region
//! (leaf variables marked as region inputs), then merge per the parent
//! region's type. When a loop region is reached, `loopToFold` (module
//! [`crate::fir`]) attempts the F-IR translation immediately — this is the
//! `toFIR` recursion of Fig. 6, which handles inner loops before outer ones.
//!
//! User-defined functions are inlined at the call site "by considering them
//! to form a sequential region, taking into account actual to formal
//! parameter mapping" (Appendix D.6). Statements with no ee-DAG equivalent
//! produce [`Node::Opaque`], which poisons exactly the variables that
//! depend on them (the rest of the program remains analyzable,
//! Sec. 5.4: "other parts of the program may still be amenable").

use std::collections::HashMap;

use intern::Symbol;

use algebra::parse::parse_sql;
use algebra::schema::Catalog;
use analysis::defuse::DefUseCtx;
use analysis::regions::{RegionKind, RegionTree};
use imp::ast::{
    builtins, BinaryOp, Block, Expr, Function, Literal, Program, Stmt, StmtKind, UnaryOp,
};

use crate::eedag::{CollKind, EeDag, Node, NodeId, OpKind, VeMap};
use crate::fir;

/// Result of building a function's D-IR.
#[derive(Debug)]
pub struct DirResult {
    /// The expression DAG.
    pub dag: EeDag,
    /// Final ve-Map: variable values at function exit, expressed over
    /// function inputs (the function's formal parameters). The function's
    /// return value is keyed `"__ret"`.
    pub ve: VeMap,
    /// Per-variable fold diagnostics accumulated by `loopToFold`.
    pub fold_notes: Vec<FoldNote>,
}

/// A diagnostic record from one `loopToFold` attempt.
#[derive(Debug, Clone)]
pub struct FoldNote {
    /// The loop's `ForEach` statement id.
    pub loop_stmt: imp::ast::StmtId,
    /// The variable.
    pub var: Symbol,
    /// `Ok(())` when the fold was built; `Err(diagnostic)` otherwise.
    pub result: Result<(), analysis::diag::Diagnostic>,
    /// The fold-introduction proof obligation, when the fold was built.
    pub obligation: Option<crate::certify::Obligation>,
}

/// The name under which a function's return value is recorded in the ve-Map.
pub const RET_VAR: &str = "__ret";

/// D-IR builder for one program.
pub struct DirBuilder<'a> {
    /// The expression DAG being built.
    pub dag: EeDag,
    program: &'a Program,
    catalog: &'a Catalog,
    /// Collection kinds inferred from `x = list()` / `x = set()` sites.
    coll_kinds: HashMap<Symbol, CollKind>,
    /// Remaining inlining depth (guards recursion).
    inline_budget: usize,
    /// Purity context for the dependence analyses.
    du_ctx: DefUseCtx,
    /// F-IR conversion options.
    fir_opts: fir::FirOptions,
    /// Fold diagnostics.
    pub fold_notes: Vec<FoldNote>,
}

impl<'a> DirBuilder<'a> {
    /// Create a builder.
    pub fn new(program: &'a Program, catalog: &'a Catalog) -> DirBuilder<'a> {
        DirBuilder {
            dag: EeDag::new(),
            program,
            catalog,
            coll_kinds: HashMap::new(),
            inline_budget: 8,
            du_ctx: DefUseCtx::of_program(program),
            fir_opts: fir::FirOptions::default(),
            fold_notes: Vec::new(),
        }
    }

    /// Set F-IR conversion options (e.g. the Appendix B dependent-
    /// aggregation relaxation).
    pub fn with_fir_options(mut self, opts: fir::FirOptions) -> Self {
        self.fir_opts = opts;
        self
    }

    /// Take the def/use context (interprocedural effect summaries, computed
    /// once per program in [`DirBuilder::new`]) so callers can reuse it
    /// instead of re-running the fixpoint.
    pub fn take_du_ctx(&mut self) -> DefUseCtx {
        std::mem::take(&mut self.du_ctx)
    }

    /// Consume the builder, returning the DAG.
    pub fn into_dag(self) -> EeDag {
        self.dag
    }

    /// Public sequential merge (Appendix D.3), used by the extractor's
    /// region walk.
    pub fn merge_with(&mut self, preceding: VeMap, following: VeMap) -> VeMap {
        self.merge_sequential(preceding, following)
    }

    /// Build the D-IR for a whole function.
    pub fn build_function(mut self, fname: &str) -> Option<DirResult> {
        let f = self.program.function(fname)?;
        self.scan_collection_kinds(&f.body);
        let tree = RegionTree::build(f);
        let ve = self.region_ve(&tree, tree.root, f);
        Some(DirResult {
            dag: self.dag,
            ve,
            fold_notes: self.fold_notes,
        })
    }

    /// Run the collection-kind pre-pass for a function (required before
    /// using [`DirBuilder::region_ve`] directly).
    pub fn prepare(&mut self, f: &Function) {
        self.scan_collection_kinds(&f.body);
    }

    /// Pre-pass: record `x = list()` / `x = set()` initializations so that
    /// `x.add(e)` later maps to `append`/`insert`.
    fn scan_collection_kinds(&mut self, b: &Block) {
        for s in &b.stmts {
            match &s.kind {
                StmtKind::Assign {
                    target,
                    value: Expr::Call { name, .. },
                } => match name.as_str() {
                    "list" => {
                        self.coll_kinds.insert(*target, CollKind::List);
                    }
                    "set" => {
                        self.coll_kinds.insert(*target, CollKind::Set);
                    }
                    _ => {}
                },
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.scan_collection_kinds(then_branch);
                    self.scan_collection_kinds(else_branch);
                }
                StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                    self.scan_collection_kinds(body);
                }
                _ => {}
            }
        }
    }

    /// Compute the ve-Map of a region: each modified variable's value at
    /// region exit, expressed over region inputs (`Node::Input`).
    pub fn region_ve(
        &mut self,
        tree: &RegionTree,
        rid: analysis::regions::RegionId,
        f: &Function,
    ) -> VeMap {
        match &tree.region(rid).kind {
            RegionKind::BasicBlock { stmts } => self.basic_block_ve(stmts),
            RegionKind::Sequential { children } => {
                let mut acc = VeMap::new();
                for c in children {
                    let child_ve = self.region_ve(tree, *c, f);
                    acc = self.merge_sequential(acc, child_ve);
                }
                acc
            }
            RegionKind::Conditional {
                cond,
                then_region,
                else_region,
            } => {
                let cond_node = self.convert_expr(cond, &VeMap::new());
                let ve_t = self.region_ve(tree, *then_region, f);
                let ve_f = self.region_ve(tree, *else_region, f);
                let mut out = VeMap::new();
                let mut vars: Vec<Symbol> = ve_t.keys().copied().collect();
                for k in ve_f.keys() {
                    if !vars.contains(k) {
                        vars.push(*k);
                    }
                }
                for v in vars {
                    let t_e = match ve_t.get(&v) {
                        Some(e) => *e,
                        None => self.dag.input(v),
                    };
                    let f_e = match ve_f.get(&v) {
                        Some(e) => *e,
                        None => self.dag.input(v),
                    };
                    let node = self.dag.cond(cond_node, t_e, f_e);
                    out.insert(v, node);
                }
                out
            }
            RegionKind::Loop {
                var,
                iterable,
                body,
                stmt_id,
            } => {
                let source = self.convert_expr(iterable, &VeMap::new());
                let body_ve = self.region_ve(tree, *body, f);
                // Locate the loop's body block in the AST for dependence
                // analysis.
                let stmt_id = *stmt_id;
                let body_block = find_foreach_body(&f.body, stmt_id)
                    .expect("loop statement must exist in its function");
                let mut out = VeMap::new();
                let loop_node = self.dag.intern(Node::Loop {
                    source,
                    cursor: *var,
                    body_ve: body_ve.iter().map(|(k, v)| (*k, *v)).collect(),
                    stmt: stmt_id,
                });
                let _ = loop_node; // recorded for completeness/debugging
                let loop_span = analysis::pass::stmt_span(&f.body, stmt_id).unwrap_or_default();
                let attempts = fir::loop_to_fold(
                    &mut self.dag,
                    &body_ve,
                    body_block,
                    *var,
                    source,
                    stmt_id,
                    loop_span,
                    &self.du_ctx,
                    self.fir_opts,
                );
                for a in &attempts {
                    self.fold_notes.push(FoldNote {
                        loop_stmt: stmt_id,
                        var: a.var,
                        result: a
                            .node
                            .as_ref()
                            .map(|_| ())
                            .map_err(|d| d.clone().with_function(f.name.as_str())),
                        obligation: a.obligation.clone(),
                    });
                }
                for a in attempts {
                    let node = match a.node {
                        Ok(n) => n,
                        Err(_) => self.dag.intern(Node::NotDetermined),
                    };
                    out.insert(a.var, node);
                }
                // The cursor variable itself is dead after the loop for our
                // purposes.
                let nd = self.dag.intern(Node::NotDetermined);
                out.insert(*var, nd);
                out
            }
            RegionKind::WhileLoop { body, .. } => {
                // Never translated (Sec. 7.1): every modified variable is ND.
                let body_ve = self.region_ve(tree, *body, f);
                let mut out = VeMap::new();
                for v in body_ve.keys() {
                    let nd = self.dag.intern(Node::NotDetermined);
                    out.insert(*v, nd);
                }
                out
            }
        }
    }

    /// Sequential merge (Appendix D.3): resolve `following`'s region inputs
    /// against `preceding`'s ve-Map, then union (later entries win).
    fn merge_sequential(&mut self, preceding: VeMap, following: VeMap) -> VeMap {
        let resolved: Vec<(Symbol, NodeId)> = following
            .into_iter()
            .map(|(v, e)| (v, self.dag.substitute_inputs(e, &preceding)))
            .collect();
        let mut out = preceding;
        out.extend(resolved);
        out
    }

    /// ve-Map of a basic block (Appendix D.1/D.2): statements are folded
    /// left to right, resolving each statement's reads against the running
    /// map.
    fn basic_block_ve(&mut self, stmts: &[Stmt]) -> VeMap {
        let mut ve = VeMap::new();
        for s in stmts {
            match &s.kind {
                StmtKind::Assign { target, value } => {
                    let e = self.convert_expr(value, &ve);
                    ve.insert(*target, e);
                }
                StmtKind::Expr(e) => {
                    if let Expr::MethodCall { recv, name, args } = e {
                        if let Expr::Var(cvar) = recv.as_ref() {
                            if let Some(op) = self.collection_op(*cvar, name.as_str()) {
                                let base = match ve.get(cvar) {
                                    Some(n) => *n,
                                    None => self.dag.input(cvar),
                                };
                                let elem = self.convert_expr(&args[0], &ve);
                                let node = self.dag.op(op, vec![base, elem]);
                                ve.insert(*cvar, node);
                                continue;
                            }
                        }
                    }
                    // Any other expression statement: if it can write
                    // something we cannot model, poison the receiver.
                    if let Expr::MethodCall { recv: _, name, .. } = e {
                        if analysis::defuse::MUTATING_METHODS.contains(&name.as_str()) {
                            if let Expr::MethodCall { recv, .. } = e {
                                if let Expr::Var(cvar) = recv.as_ref() {
                                    let n = self
                                        .dag
                                        .opaque(format!("unmodeled mutation {name}"), vec![]);
                                    ve.insert(*cvar, n);
                                }
                            }
                        }
                    }
                    if let Expr::Call { name, .. } = e {
                        if name == builtins::EXECUTE_UPDATE {
                            // Updates are kept intact; they do not bind any
                            // variable (Sec. 7.1).
                            continue;
                        }
                    }
                }
                StmtKind::Return(v) => {
                    let e = match v {
                        Some(v) => self.convert_expr(v, &ve),
                        None => self.dag.lit(algebra::scalar::Lit::Null),
                    };
                    ve.insert(Symbol::intern(RET_VAR), e);
                }
                StmtKind::Print(_) => {
                    // Output is preprocessed away when extraction wants it
                    // (imp::desugar::rewrite_prints); a remaining print has
                    // no ee-DAG value.
                }
                StmtKind::Break | StmtKind::Continue => {
                    // Loops containing abrupt exits are rejected by the
                    // fir preconditions (which scan the body); nothing to
                    // record here.
                }
                StmtKind::If { .. } | StmtKind::ForEach { .. } | StmtKind::While { .. } => {
                    unreachable!("compound statements are separate regions")
                }
            }
        }
        ve
    }

    fn collection_op(&self, var: Symbol, method: &str) -> Option<OpKind> {
        if !matches!(method, "add" | "append" | "insert") {
            return None;
        }
        match self.coll_kinds.get(&var) {
            Some(CollKind::Set) => Some(OpKind::Insert),
            Some(CollKind::List) | None => Some(OpKind::Append),
        }
    }

    /// Convert a source expression to an ee-DAG node, resolving variable
    /// reads against `ve` (falling back to region inputs).
    pub fn convert_expr(&mut self, e: &Expr, ve: &VeMap) -> NodeId {
        match e {
            Expr::Lit(l) => {
                let lit = match l {
                    Literal::Int(i) => algebra::scalar::Lit::Int(*i),
                    Literal::Float(v) => algebra::scalar::Lit::float(*v),
                    Literal::Bool(b) => algebra::scalar::Lit::Bool(*b),
                    Literal::Str(s) => algebra::scalar::Lit::Str(s.clone()),
                    Literal::Null => algebra::scalar::Lit::Null,
                };
                self.dag.lit(lit)
            }
            Expr::Var(v) => match ve.get(v) {
                Some(n) => *n,
                None => self.dag.input(v),
            },
            Expr::Unary(op, x) => {
                let xn = self.convert_expr(x, ve);
                let k = match op {
                    UnaryOp::Neg => OpKind::Neg,
                    UnaryOp::Not => OpKind::Not,
                };
                self.dag.op(k, vec![xn])
            }
            Expr::Binary(op, l, r) => {
                let ln = self.convert_expr(l, ve);
                let rn = self.convert_expr(r, ve);
                let k = match op {
                    BinaryOp::Add => {
                        if self.is_stringy(ln) || self.is_stringy(rn) {
                            OpKind::Concat
                        } else {
                            OpKind::Add
                        }
                    }
                    BinaryOp::Sub => OpKind::Sub,
                    BinaryOp::Mul => OpKind::Mul,
                    BinaryOp::Div => OpKind::Div,
                    BinaryOp::Mod => OpKind::Mod,
                    BinaryOp::Eq => OpKind::Eq,
                    BinaryOp::Ne => OpKind::Ne,
                    BinaryOp::Lt => OpKind::Lt,
                    BinaryOp::Le => OpKind::Le,
                    BinaryOp::Gt => OpKind::Gt,
                    BinaryOp::Ge => OpKind::Ge,
                    BinaryOp::And => OpKind::And,
                    BinaryOp::Or => OpKind::Or,
                };
                self.dag.op(k, vec![ln, rn])
            }
            Expr::Ternary(c, a, b) => {
                let cn = self.convert_expr(c, ve);
                let an = self.convert_expr(a, ve);
                let bn = self.convert_expr(b, ve);
                self.dag.cond(cn, an, bn)
            }
            Expr::Field(o, name) => {
                let base = self.convert_expr(o, ve);
                self.dag.intern(Node::FieldOf { base, field: *name })
            }
            Expr::Call { name, args } => self.convert_call(name.as_str(), args, ve),
            Expr::MethodCall { recv, name, args } => {
                // Value-position method calls have no algebraic equivalent
                // (`size()`, `contains()`, custom comparators …).
                let mut nargs = vec![self.convert_expr(recv, ve)];
                for a in args {
                    nargs.push(self.convert_expr(a, ve));
                }
                self.dag.opaque(format!("method {name}"), nargs)
            }
        }
    }

    fn convert_call(&mut self, name: &str, args: &[Expr], ve: &VeMap) -> NodeId {
        match name {
            builtins::EXECUTE_QUERY | builtins::EXECUTE_SCALAR => {
                let sql_node = self.convert_expr(&args[0], ve);
                let Some(sql) = self.const_string(sql_node) else {
                    let nargs: Vec<NodeId> =
                        args.iter().map(|a| self.convert_expr(a, ve)).collect();
                    return self.dag.opaque("dynamic SQL string", nargs);
                };
                let ra = match parse_sql(&sql) {
                    Ok(ra) => ra,
                    Err(e) => {
                        return self.dag.opaque(format!("unparsable SQL: {e}"), vec![]);
                    }
                };
                // Validate the referenced tables against the catalog so an
                // unknown table degrades into a per-variable failure rather
                // than bad SQL.
                for t in ra.base_tables() {
                    if self.catalog.get(t).is_none() {
                        return self.dag.opaque(format!("unknown table {t}"), vec![]);
                    }
                }
                let want = ra.max_param().map_or(0, |m| m + 1);
                if want != args.len() - 1 {
                    return self.dag.opaque(
                        format!("query expects {want} params, got {}", args.len() - 1),
                        vec![],
                    );
                }
                let params: Vec<NodeId> =
                    args[1..].iter().map(|a| self.convert_expr(a, ve)).collect();
                if name == builtins::EXECUTE_QUERY {
                    self.dag.intern(Node::Query {
                        ra,
                        params: params.into(),
                    })
                } else {
                    self.dag.intern(Node::ScalarQuery {
                        ra,
                        params: params.into(),
                    })
                }
            }
            builtins::EXECUTE_UPDATE => {
                let nargs: Vec<NodeId> = args.iter().map(|a| self.convert_expr(a, ve)).collect();
                self.dag.opaque("database update", nargs)
            }
            "max" | "min" => {
                // Library function (Sec. 3.2.1: "our system understands that
                // Math.max is a function which returns the maximum of two
                // numbers"). N-ary calls fold left.
                let op = if name == "max" {
                    OpKind::Max
                } else {
                    OpKind::Min
                };
                let mut nodes: Vec<NodeId> =
                    args.iter().map(|a| self.convert_expr(a, ve)).collect();
                let mut acc = nodes.remove(0);
                for n in nodes {
                    acc = self.dag.op(op, vec![acc, n]);
                }
                acc
            }
            "abs" => {
                let x = self.convert_expr(&args[0], ve);
                self.dag.op(OpKind::Abs, vec![x])
            }
            "concat" => {
                let nodes: Vec<NodeId> = args.iter().map(|a| self.convert_expr(a, ve)).collect();
                self.dag.op(OpKind::Concat, nodes)
            }
            "lower" | "upper" => {
                let x = self.convert_expr(&args[0], ve);
                let op = if name == "lower" {
                    OpKind::Lower
                } else {
                    OpKind::Upper
                };
                self.dag.op(op, vec![x])
            }
            "length" => {
                let x = self.convert_expr(&args[0], ve);
                self.dag.op(OpKind::Length, vec![x])
            }
            "coalesce" => {
                let nodes: Vec<NodeId> = args.iter().map(|a| self.convert_expr(a, ve)).collect();
                self.dag.op(OpKind::Coalesce, nodes)
            }
            "pair" => {
                let a = self.convert_expr(&args[0], ve);
                let b = self.convert_expr(&args[1], ve);
                self.dag.op(OpKind::Pair, vec![a, b])
            }
            "list" => self.dag.intern(Node::EmptyColl(CollKind::List)),
            "set" => self.dag.intern(Node::EmptyColl(CollKind::Set)),
            user => self.inline_user_function(user, args, ve),
        }
    }

    /// Inline a user-defined function call (Appendix D.6): build the
    /// callee's D-IR with formals as region inputs, then substitute actual
    /// parameter expressions.
    fn inline_user_function(&mut self, name: &str, args: &[Expr], ve: &VeMap) -> NodeId {
        let Some(callee) = self.program.function(name) else {
            let nargs: Vec<NodeId> = args.iter().map(|a| self.convert_expr(a, ve)).collect();
            return self.dag.opaque(format!("unknown function {name}"), nargs);
        };
        if self.inline_budget == 0 {
            return self
                .dag
                .opaque(format!("inline depth exceeded at {name}"), vec![]);
        }
        if callee.params.len() != args.len() {
            return self
                .dag
                .opaque(format!("arity mismatch calling {name}"), vec![]);
        }
        self.inline_budget -= 1;
        let tree = RegionTree::build(callee);
        let callee_f = callee.clone();
        let callee_ve = self.region_ve(&tree, tree.root, &callee_f);
        self.inline_budget += 1;
        let Some(ret) = callee_ve.get(&Symbol::intern(RET_VAR)).copied() else {
            return self.dag.opaque(format!("{name} returns no value"), vec![]);
        };
        // Map formal inputs to actual argument expressions.
        let mut subs = VeMap::new();
        for (formal, actual) in callee_f.params.iter().zip(args) {
            let a = self.convert_expr(actual, ve);
            subs.insert(*formal, a);
        }
        self.dag.substitute_inputs(ret, &subs)
    }

    /// If the node is a constant string (possibly a concat of constants),
    /// return it.
    fn const_string(&self, id: NodeId) -> Option<String> {
        match self.dag.node(id) {
            Node::Const(algebra::scalar::Lit::Str(s)) => Some(s.clone()),
            Node::Op {
                op: OpKind::Concat,
                args,
            } => {
                let mut out = String::new();
                for a in args {
                    out.push_str(&self.const_string(*a)?);
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Heuristic used to map `+` to concat: the operand is a string literal
    /// or itself a concat.
    fn is_stringy(&self, id: NodeId) -> bool {
        matches!(
            self.dag.node(id),
            Node::Const(algebra::scalar::Lit::Str(_))
                | Node::Op {
                    op: OpKind::Concat,
                    ..
                }
        )
    }
}

/// Find the body block of the `ForEach` statement with the given id.
pub fn find_foreach_body(b: &Block, id: imp::ast::StmtId) -> Option<&Block> {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::ForEach { body, .. } if s.id == id => return Some(body),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Some(found) = find_foreach_body(then_branch, id) {
                    return Some(found);
                }
                if let Some(found) = find_foreach_body(else_branch, id) {
                    return Some(found);
                }
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                if let Some(found) = find_foreach_body(body, id) {
                    return Some(found);
                }
            }
            _ => {}
        }
    }
    None
}

/// Build the D-IR for one function of a program.
pub fn build_function_dir(program: &Program, catalog: &Catalog, fname: &str) -> Option<DirResult> {
    DirBuilder::new(program, catalog).build_function(fname)
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::schema::{SqlType, TableSchema};

    fn catalog() -> Catalog {
        Catalog::new()
            .with(
                TableSchema::new(
                    "board",
                    &[
                        ("id", SqlType::Int),
                        ("rnd_id", SqlType::Int),
                        ("p1", SqlType::Int),
                        ("p2", SqlType::Int),
                        ("p3", SqlType::Int),
                        ("p4", SqlType::Int),
                    ],
                )
                .with_key(&["id"]),
            )
            .with(
                TableSchema::new("emp", &[("id", SqlType::Int), ("salary", SqlType::Int)])
                    .with_key(&["id"]),
            )
    }

    fn dir_of(src: &str, f: &str) -> DirResult {
        let p = imp::parse_and_normalize(src).unwrap();
        let c = catalog();
        build_function_dir(&p, &c, f).unwrap()
    }

    #[test]
    fn straight_line_resolution() {
        // Paper Figure 5: intermediate assignments resolve to inputs.
        let d = dir_of(
            "fn f() { x = 10; y = 15; if (y - x > 0) { z = y - x; } else { z = x - y; } return z; }",
            "f",
        );
        let z = d.ve[&Symbol::intern(RET_VAR)];
        assert_eq!(
            d.dag.display(z),
            "?[Gt[Sub[15, 10], 0], Sub[15, 10], Sub[10, 15]]"
        );
    }

    #[test]
    fn conditional_missing_branch_uses_input() {
        let d = dir_of("fn f(a) { if (a > 0) { b = 1; } return b; }", "f");
        let b = d.ve[&Symbol::intern(RET_VAR)];
        assert_eq!(d.dag.display(b), "?[Gt[a₀, 0], 1, b₀]");
    }

    #[test]
    fn query_becomes_algebra_leaf() {
        let d = dir_of(
            r#"fn f(r) { q = executeQuery("SELECT * FROM board WHERE rnd_id = ?", r); return q; }"#,
            "f",
        );
        let q = d.ve[&Symbol::intern(RET_VAR)];
        match d.dag.node(q) {
            Node::Query { ra, params } => {
                assert_eq!(params.len(), 1);
                assert!(matches!(d.dag.node(params[0]), Node::Input(v) if v.as_str() == "r"));
                assert!(matches!(ra, algebra::ra::RaExpr::Select { .. }));
            }
            other => panic!("expected query node, got {other:?}"),
        }
    }

    #[test]
    fn query_param_resolved_through_assignments() {
        // "resolve assignments to intermediate variables and allow query
        // parameters to be expressed in terms of program inputs" (Sec. 1).
        let d = dir_of(
            r#"fn f(x) {
                 y = x + 1;
                 q = executeQuery("SELECT * FROM emp WHERE salary > ?", y);
                 return q;
             }"#,
            "f",
        );
        match d.dag.node(d.ve[&Symbol::intern(RET_VAR)]) {
            Node::Query { params, .. } => {
                assert_eq!(d.dag.display(params[0]), "Add[x₀, 1]");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn find_max_score_builds_fold() {
        let d = dir_of(
            r#"fn findMaxScore() {
                boards = executeQuery("SELECT * FROM board WHERE rnd_id = 1");
                scoreMax = 0;
                for (t in boards) {
                    score = max(max(max(t.p1, t.p2), t.p3), t.p4);
                    if (score > scoreMax) scoreMax = score;
                }
                return scoreMax;
            }"#,
            "findMaxScore",
        );
        let r = d.ve[&Symbol::intern(RET_VAR)];
        match d.dag.node(r) {
            Node::Fold {
                func, init, source, ..
            } => {
                // init resolved to the constant 0.
                assert_eq!(d.dag.display(*init), "0");
                // Source resolved to the query.
                assert!(matches!(d.dag.node(*source), Node::Query { .. }));
                // Folding function is max over acc and tuple fields.
                let fd = d.dag.display(*func);
                assert!(fd.contains("Max["), "{fd}");
                assert!(fd.contains("⟨t⟩.p1"), "{fd}");
                assert!(fd.contains("⟨scoreMax⟩"), "{fd}");
            }
            other => panic!("expected fold, got {:?}", other),
        }
    }

    #[test]
    fn dummy_val_fails_preconditions() {
        // Paper Figure 7: agg folds, dummyVal does not.
        let d = dir_of(
            r#"fn f() {
                q = executeQuery("SELECT * FROM emp");
                agg = 0;
                dummyVal = 0;
                for (t in q) {
                    agg = agg + t.salary;
                    dummyVal = dummyVal * 2 + agg;
                }
                return agg;
            }"#,
            "f",
        );
        let agg_ok = d
            .fold_notes
            .iter()
            .find(|n| n.var == "agg")
            .expect("agg attempted");
        assert!(agg_ok.result.is_ok());
        let dummy = d
            .fold_notes
            .iter()
            .find(|n| n.var == "dummyVal")
            .expect("dummyVal attempted");
        assert!(dummy.result.is_err(), "dummyVal must violate P2");
    }

    #[test]
    fn user_function_inlined() {
        let d = dir_of(
            r#"
            fn double(v) { return v * 2; }
            fn f(x) { return double(x + 1); }
            "#,
            "f",
        );
        assert_eq!(
            d.dag.display(d.ve[&Symbol::intern(RET_VAR)]),
            "Mul[Add[x₀, 1], 2]"
        );
    }

    #[test]
    fn unknown_function_is_opaque() {
        let d = dir_of("fn f(x) { return mystery(x); }", "f");
        assert!(d.dag.is_poisoned(d.ve[&Symbol::intern(RET_VAR)]));
    }

    #[test]
    fn recursion_is_cut_off() {
        let d = dir_of("fn f(x) { return f(x); }", "f");
        assert!(d.dag.is_poisoned(d.ve[&Symbol::intern(RET_VAR)]));
    }

    #[test]
    fn dynamic_sql_is_opaque() {
        let d = dir_of(
            r#"fn f(t) { q = executeQuery("SELECT * FROM " + t); return q; }"#,
            "f",
        );
        assert!(d.dag.is_poisoned(d.ve[&Symbol::intern(RET_VAR)]));
    }

    #[test]
    fn while_loop_vars_not_determined() {
        let d = dir_of(
            "fn f(n) { i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        assert!(d.dag.is_poisoned(d.ve[&Symbol::intern(RET_VAR)]));
    }

    #[test]
    fn collection_append_in_loop_folds() {
        let d = dir_of(
            r#"fn f() {
                rows = executeQuery("SELECT * FROM emp");
                out = list();
                for (r in rows) { out.add(r.salary); }
                return out;
            }"#,
            "f",
        );
        match d.dag.node(d.ve[&Symbol::intern(RET_VAR)]) {
            Node::Fold { func, init, .. } => {
                assert!(matches!(d.dag.node(*init), Node::EmptyColl(CollKind::List)));
                let fd = d.dag.display(*func);
                assert!(fd.starts_with("Append["), "{fd}");
            }
            other => panic!("expected fold, got {other:?}"),
        }
    }

    #[test]
    fn set_insert_uses_insert_op() {
        let d = dir_of(
            r#"fn f() {
                rows = executeQuery("SELECT * FROM emp");
                out = set();
                for (r in rows) { out.add(r.salary); }
                return out;
            }"#,
            "f",
        );
        match d.dag.node(d.ve[&Symbol::intern(RET_VAR)]) {
            Node::Fold { func, .. } => {
                assert!(d.dag.display(*func).starts_with("Insert["));
            }
            other => panic!("{other:?}"),
        }
    }
}
