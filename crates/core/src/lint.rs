//! The lint driver: extraction-failure diagnostics, end to end.
//!
//! Combines the advisory pipeline of [`analysis::pass`] (purity, deadcode,
//! liveness, ddg) with the extraction pipeline itself, run dry: every loop
//! that fails — or declines — extraction yields a typed, span-anchored
//! diagnostic (`E0xx` hard failures, `W0xx` advisories). This is what the
//! `eqsql lint` subcommand calls.

use algebra::schema::Catalog;
use analysis::diag::{dedup_sort, Diagnostic};
use analysis::pass::{Pass, PassContext, PassManager};
use imp::ast::Program;

use crate::extract::{Extractor, ExtractorOptions};

/// The extraction pipeline as a named [`Pass`] (`"extract"`).
///
/// Runs [`Extractor::extract_function`] without keeping the rewritten
/// program and reports the per-variable failure diagnostics. Diagnostics
/// produced deeper in the pipeline keep their own stage names (`"fir"`,
/// `"sqlgen"`); only untagged ones pick up `"extract"`.
pub struct ExtractionPass {
    catalog: Catalog,
    opts: ExtractorOptions,
}

impl ExtractionPass {
    /// Build the pass for a schema catalog and extractor options.
    pub fn new(catalog: Catalog, opts: ExtractorOptions) -> ExtractionPass {
        ExtractionPass { catalog, opts }
    }
}

impl Pass for ExtractionPass {
    fn name(&self) -> &'static str {
        "extract"
    }

    fn run(&self, cx: &mut PassContext<'_>) {
        let ex = Extractor::with_options(self.catalog.clone(), self.opts.clone());
        let report = ex.extract_function(cx.program, &cx.function.name);
        for d in report.diagnostics {
            cx.emit(d);
        }
    }
}

/// Run the full lint pipeline over a program.
///
/// The standard advisory passes run first, then the extraction pass; the
/// result is deduplicated and ordered by source position, so output is
/// deterministic across runs.
pub fn lint_program(
    program: &Program,
    catalog: &Catalog,
    opts: &ExtractorOptions,
) -> Vec<Diagnostic> {
    let mut pm = PassManager::standard();
    pm.register(Box::new(ExtractionPass::new(catalog.clone(), opts.clone())));
    let mut diags = pm.run_program(program);
    dedup_sort(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::schema::{SqlType, TableSchema};
    use analysis::diag::{Code, Severity};

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new("emp", &[("id", SqlType::Int), ("salary", SqlType::Int)])
                .with_key(&["id"]),
        )
    }

    #[test]
    fn clean_extraction_yields_no_errors() {
        let p = imp::parse_and_normalize(
            r#"fn total() {
                rows = executeQuery("SELECT * FROM emp");
                s = 0;
                for (e in rows) { s = s + e.salary; }
                return s;
            }"#,
        )
        .unwrap();
        let diags = lint_program(&p, &catalog(), &ExtractorOptions::default());
        assert!(
            diags.iter().all(|d| d.severity() != Severity::Error),
            "{diags:#?}"
        );
    }

    #[test]
    fn break_yields_spanned_e004() {
        let src = r#"fn first() {
                rows = executeQuery("SELECT * FROM emp");
                v = 0;
                for (e in rows) {
                    v = v + e.salary;
                    if (v > 100) break;
                }
                return v;
            }"#;
        let p = imp::parse_and_normalize(src).unwrap();
        let diags = lint_program(&p, &catalog(), &ExtractorOptions::default());
        let hit = diags
            .iter()
            .find(|d| d.code == Code::AbruptLoopExit)
            .expect("E004");
        assert_eq!(hit.function.as_deref(), Some("first"));
        let text = &src[hit.primary.span.start..hit.primary.span.end];
        assert!(
            text.contains("break"),
            "span should cover the break: {text:?}"
        );
    }

    #[test]
    fn lint_is_deterministic() {
        let p = imp::parse_and_normalize(
            r#"fn f() {
                rows = executeQuery("SELECT * FROM emp");
                v = 0;
                prev = 0;
                for (e in rows) { v = v + (e.salary - prev); prev = e.salary; }
                return v + prev;
            }"#,
        )
        .unwrap();
        let a = lint_program(&p, &catalog(), &ExtractorOptions::default());
        let b = lint_program(&p, &catalog(), &ExtractorOptions::default());
        assert_eq!(a, b);
        assert!(!a.is_empty(), "P2 violation expected");
    }
}
