//! `eqsql-core` — the paper's contribution: extracting equivalent SQL from
//! imperative code.
//!
//! Pipeline (paper Figure 1):
//!
//! ```text
//! imp source ──regions──▶ D-IR (ee-DAG + ve-Map)
//!                │                 │ loopToFold (preconditions P1–P3)
//!                │                 ▼
//!                │               F-IR (fold + extended relational algebra)
//!                │                 │ transformation rules T1–T7 + extensions
//!                │                 ▼
//!                └──rewrite◀── SQL generation
//! ```
//!
//! * [`eedag`] — the hash-consed equivalent-expression DAG and ve-Map
//!   (Sec. 3.2);
//! * [`dir`] — D-IR construction over the region hierarchy, including
//!   user-function inlining (Sec. 3.3, Appendix D);
//! * [`fir`] — conversion of cursor loops to `fold` (Sec. 4, Fig. 6);
//! * [`rules`] — the transformation rules (Sec. 5.1, Appendix B);
//! * [`certify`] — proof obligations for every rule application, discharged
//!   by algebraic normalization or differential evaluation over generated
//!   micro-databases (translation validation);
//! * [`sqlgen`] — translation of transformed F-IR into SQL plus parameter
//!   expressions (Sec. 5.2);
//! * [`rewrite`] — program rewriting and dead-code elimination (Sec. 5.2);
//! * [`extract`] — the public [`extract::Extractor`] API tying it together.

pub mod certify;
pub mod costing;
pub mod dir;
pub mod eedag;
pub mod extract;
pub mod fir;
pub mod lint;
pub mod rewrite;
pub mod rules;
pub mod sqlgen;

pub use certify::{CertReport, Certifier, Obligation, ObligationKind, Verdict};
pub use costing::{DbStats, RewriteDecision};
pub use extract::{
    CertSummary, ExtractionOutcome, ExtractionReport, Extractor, ExtractorOptions, StageTimes,
    VarExtraction,
};
pub use lint::lint_program;
pub use rules::RuleMiss;
pub use sqlgen::SqlGenError;
