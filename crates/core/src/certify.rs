//! Rewrite certification: machine-checkable proof obligations for every
//! rule application (translation validation).
//!
//! Each application of a T1–T7 rule (and of `loopToFold`) records an
//! [`Obligation`]: the source ee-DAG node, the result node, the rule that
//! claims they are equivalent, and where in the program the rewrite landed.
//! The [`Certifier`] then *independently* discharges each obligation:
//!
//! 1. **Algebraic normalization** — both sides are brought into a normal
//!    form (constant folding, neutral-element elimination, flattening and
//!    sorting of commutative/associative operators, branch pruning).
//!    Syntactic equality of the normal forms proves equivalence.
//! 2. **Differential evaluation** — when normalization is inconclusive,
//!    both sides are evaluated over a family of small generated databases
//!    ([`dbms::gen::gen_catalog`], seeded and deterministic, with unique
//!    key columns so key-dependent rewrites see their precondition hold).
//!    Agreement on every conclusive trial discharges the obligation;
//!    disagreement is a *counterexample* and surfaces as an `E007`
//!    diagnostic. Trials that cannot be evaluated (NULL branch conditions,
//!    opaque calls) leave the obligation *inconclusive* (`W006`), never
//!    silently certified.
//!
//! `loopToFold` introductions are discharged structurally: substituting the
//! fold's accumulator/tuple parameters back by the region inputs must
//! reproduce the original loop-body expression.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use algebra::scalar::{BinOp, Lit};
use algebra::schema::{Catalog, SqlType};
use analysis::diag::{Code, Diagnostic};
use dbms::eval::eval_binop;
use dbms::gen::gen_catalog;
use dbms::prng::StdRng;
use dbms::{Database, Value};
use imp::ast::StmtId;
use imp::token::Span;
use intern::Symbol;

use crate::eedag::{EeDag, Node, NodeId, NodeList, OpKind};

/// What kind of step an obligation certifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationKind {
    /// An algebraic rewrite: `before` and `after` must denote the same
    /// value in every store and database.
    Rewrite,
    /// A `loopToFold` introduction: `after` is a fold whose body must be
    /// the `before` expression with the accumulator/cursor re-bound.
    FoldIntro,
}

/// A machine-checkable claim produced by the rule engine or the fold
/// converter: "`before` was rewritten to `after` by `rule`".
#[derive(Debug, Clone)]
pub struct Obligation {
    /// The rule that performed the rewrite (`"T2"`, `"T5.1-sum"`, …).
    pub rule: &'static str,
    /// Rewrite vs. fold introduction.
    pub kind: ObligationKind,
    /// The node before the rewrite.
    pub before: NodeId,
    /// The node after the rewrite.
    pub after: NodeId,
    /// Human-readable binding environment (name → rendered value) captured
    /// at the rewrite site; purely informational.
    pub binding: Vec<(String, String)>,
    /// The loop statement and variable the rewrite is anchored at, when
    /// the rewrite came from a fold with a known origin.
    pub origin: Option<(StmtId, Symbol)>,
}

impl Obligation {
    /// A rewrite obligation.
    pub fn rewrite(rule: &'static str, before: NodeId, after: NodeId) -> Obligation {
        Obligation {
            rule,
            kind: ObligationKind::Rewrite,
            before,
            after,
            binding: Vec::new(),
            origin: None,
        }
    }

    /// A fold-introduction obligation.
    pub fn fold_intro(before: NodeId, after: NodeId, origin: (StmtId, Symbol)) -> Obligation {
        Obligation {
            rule: "loopToFold",
            kind: ObligationKind::FoldIntro,
            before,
            after,
            binding: Vec::new(),
            origin: Some(origin),
        }
    }

    /// Attach an origin (loop statement + variable).
    pub fn with_origin(mut self, origin: (StmtId, Symbol)) -> Obligation {
        self.origin = Some(origin);
        self
    }

    /// Attach a binding-environment entry.
    pub fn with_binding(mut self, name: impl Into<String>, value: impl Into<String>) -> Obligation {
        self.binding.push((name.into(), value.into()));
        self
    }
}

/// The result of attempting to discharge one obligation.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Both sides have the same algebraic normal form.
    DischargedNormalize,
    /// All conclusive differential trials agreed (`trials` of them).
    DischargedDifferential {
        /// Number of conclusive trials that agreed.
        trials: usize,
    },
    /// Neither normalization nor any differential trial was conclusive.
    Inconclusive {
        /// Why no trial concluded.
        reason: String,
    },
    /// A differential trial produced different values — the rewrite is
    /// wrong (or its precondition was violated).
    Counterexample {
        /// Trial description and the two disagreeing values.
        detail: String,
    },
}

impl Verdict {
    /// True when the obligation is proven.
    pub fn is_discharged(&self) -> bool {
        matches!(
            self,
            Verdict::DischargedNormalize | Verdict::DischargedDifferential { .. }
        )
    }
}

/// One certified (or not) obligation, for reports.
#[derive(Debug, Clone)]
pub struct CertOutcome {
    /// The obligation that was checked.
    pub obligation: Obligation,
    /// How it was (or was not) discharged.
    pub verdict: Verdict,
}

/// Aggregate result of certifying a set of obligations.
#[derive(Debug, Clone, Default)]
pub struct CertReport {
    /// Per-obligation outcomes, in input order.
    pub outcomes: Vec<CertOutcome>,
}

impl CertReport {
    /// Number of obligations checked.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Discharged by normalization.
    pub fn discharged_normalize(&self) -> usize {
        self.count(|v| matches!(v, Verdict::DischargedNormalize))
    }

    /// Discharged by differential evaluation.
    pub fn discharged_differential(&self) -> usize {
        self.count(|v| matches!(v, Verdict::DischargedDifferential { .. }))
    }

    /// Obligations left inconclusive.
    pub fn inconclusive(&self) -> usize {
        self.count(|v| matches!(v, Verdict::Inconclusive { .. }))
    }

    /// Obligations refuted by a counterexample.
    pub fn counterexamples(&self) -> usize {
        self.count(|v| matches!(v, Verdict::Counterexample { .. }))
    }

    /// True when every obligation is proven.
    pub fn all_discharged(&self) -> bool {
        self.outcomes.iter().all(|o| o.verdict.is_discharged())
    }

    fn count(&self, f: impl Fn(&Verdict) -> bool) -> usize {
        self.outcomes.iter().filter(|o| f(&o.verdict)).count()
    }

    /// Render undischarged obligations as diagnostics: counterexamples as
    /// hard `E007` errors, inconclusive obligations as `W006` advisories.
    /// `span_of` maps an origin statement to a source span when known.
    pub fn diagnostics(
        &self,
        dag: &EeDag,
        span_of: &dyn Fn(StmtId) -> Option<Span>,
    ) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for o in &self.outcomes {
            let span = o
                .obligation
                .origin
                .and_then(|(s, _)| span_of(s))
                .unwrap_or_default();
            match &o.verdict {
                Verdict::Counterexample { detail } => {
                    let mut d = Diagnostic::new(
                        Code::CertCounterexample,
                        span,
                        format!(
                            "rewrite `{}` failed certification: a counterexample database \
                             distinguishes the two sides",
                            o.obligation.rule
                        ),
                    )
                    .with_note(detail.clone())
                    .with_note(format!("before: {}", dag.display(o.obligation.before)))
                    .with_note(format!("after: {}", dag.display(o.obligation.after)))
                    .with_pass("certify");
                    if let Some((_, var)) = o.obligation.origin {
                        d = d.with_var(var.as_str());
                    }
                    out.push(d);
                }
                Verdict::Inconclusive { reason } => {
                    let mut d = Diagnostic::new(
                        Code::CertInconclusive,
                        span,
                        format!(
                            "rewrite `{}` could not be certified: no conclusive check",
                            o.obligation.rule
                        ),
                    )
                    .with_note(reason.clone())
                    .with_pass("certify");
                    if let Some((_, var)) = o.obligation.origin {
                        d = d.with_var(var.as_str());
                    }
                    out.push(d);
                }
                _ => {}
            }
        }
        out
    }
}

/// The obligation checker. Stateless between obligations; all trials are
/// derived deterministically from `seed`.
pub struct Certifier<'a> {
    catalog: &'a Catalog,
    /// Base seed for database generation and input assignment.
    pub seed: u64,
    /// Row counts per trial database (0 = empty database, always included).
    pub sizes: Vec<usize>,
    /// Repetitions (distinct seeds) per size.
    pub reps: u32,
}

impl<'a> Certifier<'a> {
    /// A certifier over the given catalog with the default trial family
    /// (sizes 0–3, two seeds each).
    pub fn new(catalog: &'a Catalog) -> Certifier<'a> {
        Certifier {
            catalog,
            seed: 0x5EED_CE27,
            sizes: vec![0, 1, 2, 3],
            reps: 2,
        }
    }

    /// Override the base seed.
    pub fn with_seed(mut self, seed: u64) -> Certifier<'a> {
        self.seed = seed;
        self
    }

    /// Check every obligation and aggregate the outcomes.
    pub fn check_all(&self, dag: &mut EeDag, obligations: &[Obligation]) -> CertReport {
        let mut report = CertReport::default();
        for ob in obligations {
            let verdict = self.check(dag, ob);
            report.outcomes.push(CertOutcome {
                obligation: ob.clone(),
                verdict,
            });
        }
        report
    }

    /// Check a single obligation.
    pub fn check(&self, dag: &mut EeDag, ob: &Obligation) -> Verdict {
        match ob.kind {
            ObligationKind::FoldIntro => self.check_fold_intro(dag, ob),
            ObligationKind::Rewrite => {
                if nf(dag, ob.before) == nf(dag, ob.after) {
                    return Verdict::DischargedNormalize;
                }
                self.differential(dag, ob)
            }
        }
    }

    /// A fold introduction is certified by inverting the parameter
    /// substitution: `func[acc ↦ v₀, tuple ↦ cursor₀]` must reproduce the
    /// loop-body expression, and the fold's init must be the region input
    /// of the accumulated variable.
    fn check_fold_intro(&self, dag: &mut EeDag, ob: &Obligation) -> Verdict {
        let (func, init, cursor, var) = match dag.node(ob.after).clone() {
            Node::Fold {
                func,
                init,
                cursor,
                origin: (_, var),
                ..
            } => (func, init, cursor, var),
            // A dependent aggregation: the body must be
            // `?[key ⋛ v₀, value, w₀]` with the argmax pieces substituted
            // back over the cursor input.
            Node::ArgExtreme {
                is_max,
                key,
                value,
                v_init,
                w_init,
                cursor,
                ..
            } => {
                let mut memo = HashMap::new();
                // Only the tuple parameter was substituted for argmax; the
                // accumulator symbol plays no role.
                let key_u = unsubstitute_params(dag, key, None, Some(cursor), &mut memo);
                let val_u = unsubstitute_params(dag, value, None, Some(cursor), &mut memo);
                let cmp = if is_max { OpKind::Gt } else { OpKind::Lt };
                let cond = dag.op(cmp, vec![key_u, v_init]);
                let expect = dag.cond(cond, val_u, w_init);
                if expect == ob.before || nf(dag, expect) == nf(dag, ob.before) {
                    return Verdict::DischargedNormalize;
                }
                return Verdict::Inconclusive {
                    reason: format!(
                        "argmax reconstruction does not reproduce the loop body \
                         (got {}, expected {})",
                        dag.display(expect),
                        dag.display(ob.before)
                    ),
                };
            }
            _ => {
                return Verdict::Inconclusive {
                    reason: "fold-introduction obligation whose result is not a fold".into(),
                }
            }
        };
        let mut memo = HashMap::new();
        let unsub = unsubstitute_params(dag, func, Some(var), Some(cursor), &mut memo);
        let init_ok = matches!(dag.node(init), Node::Input(v) if *v == var);
        if unsub == ob.before && init_ok {
            return Verdict::DischargedNormalize;
        }
        // Structural mismatch can still be a semantic match (the converter
        // may have simplified); fall back to the normalizer.
        if init_ok && nf(dag, unsub) == nf(dag, ob.before) {
            return Verdict::DischargedNormalize;
        }
        Verdict::Inconclusive {
            reason: format!(
                "inverse substitution of the folding function does not reproduce the loop body \
                 (got {}, expected {})",
                dag.display(unsub),
                dag.display(ob.before)
            ),
        }
    }

    /// Evaluate both sides over generated micro-databases and random (but
    /// seeded) input assignments.
    fn differential(&self, dag: &EeDag, ob: &Obligation) -> Verdict {
        let tys = input_types(dag, &[ob.before, ob.after]);
        let (accs, tups) = param_usage(dag, &[ob.before, ob.after]);
        let mut conclusive = 0usize;
        let mut last_reason = String::from("no trials ran");
        for &size in &self.sizes {
            for rep in 0..self.reps {
                let tseed = self
                    .seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((size as u64) * 7919 + rep as u64 + 1);
                let db = gen_catalog(self.catalog, size, tseed);
                let mut rng = StdRng::seed_from_u64(tseed ^ 0x9E37_79B9_7F4A_7C15);
                let env = gen_inputs(&tys, size, &mut rng);
                let mut ev = Eval {
                    dag,
                    db: &db,
                    env: &env,
                    acc: gen_inputs(&accs, size, &mut rng),
                    tup: gen_params(&tups, self.catalog, &mut rng),
                };
                let a = ev.eval(ob.before);
                let b = ev.eval(ob.after);
                match (a, b) {
                    (Ok(va), Ok(vb)) => match cval_eq(&va, &vb) {
                        Some(true) => conclusive += 1,
                        Some(false) => {
                            return Verdict::Counterexample {
                                detail: format!(
                                    "trial: {size} rows/table, seed {tseed:#x}: \
                                     before = {va}, after = {vb}"
                                ),
                            }
                        }
                        None => {
                            last_reason = format!("values of incomparable shapes ({va} vs {vb})");
                        }
                    },
                    (Err(e), _) | (_, Err(e)) => last_reason = e,
                }
            }
        }
        if conclusive > 0 {
            Verdict::DischargedDifferential { trials: conclusive }
        } else {
            Verdict::Inconclusive {
                reason: last_reason,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 1: algebraic normalization
// ---------------------------------------------------------------------------

/// A canonical literal. Numbers are stored as `f64` bits with `-0`
/// normalized away so `Int(3)` and `F64(3.0)` coincide.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum CLit {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
}

impl CLit {
    fn num(f: f64) -> CLit {
        let f = if f == 0.0 { 0.0 } else { f };
        CLit::Num(f.to_bits())
    }

    fn from_lit(l: &Lit) -> CLit {
        match l {
            Lit::Null => CLit::Null,
            Lit::Bool(b) => CLit::Bool(*b),
            Lit::Int(i) => CLit::num(*i as f64),
            Lit::F64(v) => CLit::num(v.get()),
            Lit::Str(s) => CLit::Str(s.clone()),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            CLit::Num(b) => Some(f64::from_bits(*b)),
            CLit::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }
}

/// Normal-form expressions: constants, atoms (inputs, parameters, whole
/// queries, folds), and operator applications with canonicalized argument
/// order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Nf {
    Const(CLit),
    Atom(String),
    App(String, Vec<Nf>),
}

/// Normalize a node. Sound but incomplete: equal normal forms imply
/// semantic equality; unequal normal forms imply nothing.
fn nf(dag: &EeDag, id: NodeId) -> Nf {
    match dag.node(id) {
        Node::Const(l) => Nf::Const(CLit::from_lit(l)),
        Node::Input(s) => Nf::Atom(format!("in:{s}")),
        Node::AccParam(s) => Nf::Atom(format!("acc:{s}")),
        Node::TupleParam(s) => Nf::Atom(format!("tup:{s}")),
        Node::EmptyColl(k) => Nf::Atom(format!("empty:{k:?}")),
        Node::NotDetermined => Nf::Atom("⊥".into()),
        // Atoms keyed by node identity: hash-consing guarantees identical
        // structure ⇔ identical id, so this is sound (never equates
        // distinct expressions) and cheap.
        Node::Loop { .. } | Node::Fold { .. } | Node::ArgExtreme { .. } | Node::Opaque { .. } => {
            Nf::Atom(format!("#{}", id.0))
        }
        Node::FieldOf { base, field } => Nf::App(format!("field.{field}"), vec![nf(dag, *base)]),
        Node::Query { ra, params } => Nf::App(
            format!("query:{ra}"),
            params.iter().map(|p| nf(dag, *p)).collect(),
        ),
        Node::ScalarQuery { ra, params } => Nf::App(
            format!("squery:{ra}"),
            params.iter().map(|p| nf(dag, *p)).collect(),
        ),
        Node::Cond {
            cond,
            then_val,
            else_val,
        } => {
            let c = nf(dag, *cond);
            match c {
                Nf::Const(CLit::Bool(true)) => nf(dag, *then_val),
                Nf::Const(CLit::Bool(false)) => nf(dag, *else_val),
                _ => {
                    let t = nf(dag, *then_val);
                    let e = nf(dag, *else_val);
                    if t == e {
                        t
                    } else {
                        Nf::App("?".into(), vec![c, t, e])
                    }
                }
            }
        }
        Node::Op { op, args } => nf_op(*op, args.iter().map(|a| nf(dag, *a)).collect()),
    }
}

/// The identity element of a commutative/associative operator, when any.
fn identity_of(op: OpKind) -> Option<CLit> {
    match op {
        OpKind::Add => Some(CLit::num(0.0)),
        OpKind::Mul => Some(CLit::num(1.0)),
        OpKind::Or => Some(CLit::Bool(false)),
        OpKind::And => Some(CLit::Bool(true)),
        _ => None,
    }
}

fn is_ac(op: OpKind) -> bool {
    matches!(
        op,
        OpKind::Add | OpKind::Mul | OpKind::And | OpKind::Or | OpKind::Max | OpKind::Min
    )
}

fn nf_op(op: OpKind, mut args: Vec<Nf>) -> Nf {
    // a - b  ⇒  a + (-b), so subtraction joins the Add flattening.
    if op == OpKind::Sub && args.len() == 2 {
        let b = args.pop().unwrap();
        let a = args.pop().unwrap();
        return nf_op(OpKind::Add, vec![a, nf_op(OpKind::Neg, vec![b])]);
    }
    // Constant folding.
    if args.iter().all(|a| matches!(a, Nf::Const(_))) {
        let lits: Vec<CLit> = args
            .iter()
            .map(|a| match a {
                Nf::Const(l) => l.clone(),
                _ => unreachable!(),
            })
            .collect();
        if let Some(v) = fold_const(op, &lits) {
            return Nf::Const(v);
        }
    }
    match op {
        OpKind::Coalesce if args.len() == 2 => match &args[0] {
            Nf::Const(CLit::Null) => args.swap_remove(1),
            Nf::Const(_) => args.swap_remove(0),
            _ => Nf::App("Coalesce".into(), args),
        },
        OpKind::Not => match args.first() {
            Some(Nf::App(name, inner)) if name == "Not" && inner.len() == 1 => inner[0].clone(),
            _ => Nf::App("Not".into(), args),
        },
        OpKind::Neg => match args.first() {
            Some(Nf::App(name, inner)) if name == "Neg" && inner.len() == 1 => inner[0].clone(),
            _ => Nf::App("Neg".into(), args),
        },
        _ if is_ac(op) => {
            let name = format!("{op:?}");
            // Flatten nested applications of the same operator.
            let mut flat = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    Nf::App(ref n, ref inner) if *n == name => flat.extend(inner.clone()),
                    other => flat.push(other),
                }
            }
            // Three-valued annihilators are sound: x AND false = false,
            // x OR true = true, even when x is NULL.
            if op == OpKind::And && flat.contains(&Nf::Const(CLit::Bool(false))) {
                return Nf::Const(CLit::Bool(false));
            }
            if op == OpKind::Or && flat.contains(&Nf::Const(CLit::Bool(true))) {
                return Nf::Const(CLit::Bool(true));
            }
            // Drop identity elements.
            if let Some(idl) = identity_of(op) {
                flat.retain(|a| *a != Nf::Const(idl.clone()));
                if flat.is_empty() {
                    return Nf::Const(idl);
                }
            }
            flat.sort();
            if flat.len() == 1 {
                return flat.pop().unwrap();
            }
            Nf::App(name, flat)
        }
        _ => Nf::App(format!("{op:?}"), args),
    }
}

/// Fold an operator over constant arguments, with SQL three-valued NULL
/// propagation. `None` when the fold is not defined (division by zero,
/// type mismatch …).
fn fold_const(op: OpKind, args: &[CLit]) -> Option<CLit> {
    use OpKind::*;
    let any_null = args.contains(&CLit::Null);
    match op {
        And => {
            if args.contains(&CLit::Bool(false)) {
                return Some(CLit::Bool(false));
            }
            if any_null {
                return Some(CLit::Null);
            }
            Some(CLit::Bool(args.iter().all(|a| *a == CLit::Bool(true))))
        }
        Or => {
            if args.contains(&CLit::Bool(true)) {
                return Some(CLit::Bool(true));
            }
            if any_null {
                return Some(CLit::Null);
            }
            Some(CLit::Bool(args.contains(&CLit::Bool(true))))
        }
        _ if any_null => Some(CLit::Null),
        Add | Sub | Mul | Div | Mod if args.len() == 2 => {
            let (a, b) = (args[0].as_f64()?, args[1].as_f64()?);
            let r = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return None;
                    }
                    a / b
                }
                Mod => {
                    if b == 0.0 {
                        return None;
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Some(CLit::num(r))
        }
        Eq | Ne | Lt | Le | Gt | Ge if args.len() == 2 => {
            let ord = match (&args[0], &args[1]) {
                (CLit::Str(a), CLit::Str(b)) => a.cmp(b),
                (a, b) => a.as_f64()?.partial_cmp(&b.as_f64()?)?,
            };
            let r = match op {
                Eq => ord.is_eq(),
                Ne => !ord.is_eq(),
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Some(CLit::Bool(r))
        }
        Not => match args.first()? {
            CLit::Bool(b) => Some(CLit::Bool(!b)),
            _ => None,
        },
        Neg => Some(CLit::num(-args.first()?.as_f64()?)),
        Abs => Some(CLit::num(args.first()?.as_f64()?.abs())),
        Max | Min if args.len() == 2 => {
            let (a, b) = (args[0].as_f64()?, args[1].as_f64()?);
            Some(CLit::num(if (op == Max) == (a >= b) { a } else { b }))
        }
        Concat if args.len() == 2 => match (&args[0], &args[1]) {
            (CLit::Str(a), CLit::Str(b)) => Some(CLit::Str(format!("{a}{b}"))),
            _ => None,
        },
        Lower => match args.first()? {
            CLit::Str(s) => Some(CLit::Str(s.to_lowercase())),
            _ => None,
        },
        Upper => match args.first()? {
            CLit::Str(s) => Some(CLit::Str(s.to_uppercase())),
            _ => None,
        },
        Length => match args.first()? {
            CLit::Str(s) => Some(CLit::num(s.chars().count() as f64)),
            _ => None,
        },
        Coalesce if args.len() == 2 => Some(args[0].clone()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Fold-introduction inversion
// ---------------------------------------------------------------------------

/// Replace `AccParam(var)` by `Input(var)` and `TupleParam(cursor)` by
/// `Input(cursor)` throughout `id`, interning the rebuilt nodes. A nested
/// fold (or argmax) whose own binder reuses one of these symbols shadows
/// it inside its folding function, so the substitution is suspended there
/// (`None`); the memo is keyed by the active binder context because the
/// same shared node can need different rewrites under different binders.
fn unsubstitute_params(
    dag: &mut EeDag,
    id: NodeId,
    var: Option<Symbol>,
    cursor: Option<Symbol>,
    memo: &mut HashMap<(NodeId, Option<Symbol>, Option<Symbol>), NodeId>,
) -> NodeId {
    if let Some(r) = memo.get(&(id, var, cursor)) {
        return *r;
    }
    let result = match dag.node(id).clone() {
        Node::AccParam(v) if Some(v) == var => dag.input(v),
        Node::TupleParam(c) if Some(c) == cursor => dag.input(c),
        Node::Const(_)
        | Node::Input(_)
        | Node::AccParam(_)
        | Node::TupleParam(_)
        | Node::EmptyColl(_)
        | Node::NotDetermined => id,
        Node::FieldOf { base, field } => {
            let b = unsubstitute_params(dag, base, var, cursor, memo);
            if b == base {
                id
            } else {
                dag.intern(Node::FieldOf { base: b, field })
            }
        }
        Node::Op { op, ref args } => {
            let new: NodeList = args
                .iter()
                .map(|a| unsubstitute_params(dag, *a, var, cursor, memo))
                .collect();
            if new == *args {
                id
            } else {
                dag.op(op, new)
            }
        }
        Node::Opaque { reason, ref args } => {
            let new: NodeList = args
                .iter()
                .map(|a| unsubstitute_params(dag, *a, var, cursor, memo))
                .collect();
            if new == *args {
                id
            } else {
                dag.intern(Node::Opaque { reason, args: new })
            }
        }
        Node::Cond {
            cond,
            then_val,
            else_val,
        } => {
            let c = unsubstitute_params(dag, cond, var, cursor, memo);
            let t = unsubstitute_params(dag, then_val, var, cursor, memo);
            let e = unsubstitute_params(dag, else_val, var, cursor, memo);
            if c == cond && t == then_val && e == else_val {
                id
            } else {
                dag.cond(c, t, e)
            }
        }
        Node::Query { ra, ref params } => {
            let new: NodeList = params
                .iter()
                .map(|p| unsubstitute_params(dag, *p, var, cursor, memo))
                .collect();
            if new == *params {
                id
            } else {
                dag.intern(Node::Query { ra, params: new })
            }
        }
        Node::ScalarQuery { ra, ref params } => {
            let new: NodeList = params
                .iter()
                .map(|p| unsubstitute_params(dag, *p, var, cursor, memo))
                .collect();
            if new == *params {
                id
            } else {
                dag.intern(Node::ScalarQuery { ra, params: new })
            }
        }
        // A nested fold's folding function runs under its own binders: if
        // it rebinds the same accumulator variable or cursor symbol, those
        // occurrences belong to the inner fold and must stay parameters.
        // Its init and source are evaluated outside the binder.
        Node::Fold {
            func,
            init,
            source,
            cursor: fc,
            origin,
        } => {
            let fvar = if Some(origin.1) == var { None } else { var };
            let fcur = if Some(fc) == cursor { None } else { cursor };
            let f = unsubstitute_params(dag, func, fvar, fcur, memo);
            let i = unsubstitute_params(dag, init, var, cursor, memo);
            let s = unsubstitute_params(dag, source, var, cursor, memo);
            if f == func && i == init && s == source {
                id
            } else {
                dag.intern(Node::Fold {
                    func: f,
                    init: i,
                    source: s,
                    cursor: fc,
                    origin,
                })
            }
        }
        Node::ArgExtreme {
            source,
            is_max,
            key,
            value,
            v_init,
            w_init,
            cursor: ac,
            origin,
        } => {
            // Argmax binds only its tuple cursor; key/value sit under that
            // binder, the inits and source outside it.
            let kcur = if Some(ac) == cursor { None } else { cursor };
            let s = unsubstitute_params(dag, source, var, cursor, memo);
            let k = unsubstitute_params(dag, key, var, kcur, memo);
            let v = unsubstitute_params(dag, value, var, kcur, memo);
            let vi = unsubstitute_params(dag, v_init, var, cursor, memo);
            let wi = unsubstitute_params(dag, w_init, var, cursor, memo);
            if s == source && k == key && v == value && vi == v_init && wi == w_init {
                id
            } else {
                dag.intern(Node::ArgExtreme {
                    source: s,
                    is_max,
                    key: k,
                    value: v,
                    v_init: vi,
                    w_init: wi,
                    cursor: ac,
                    origin,
                })
            }
        }
        Node::Loop { .. } => id,
    };
    memo.insert((id, var, cursor), result);
    result
}

// ---------------------------------------------------------------------------
// Layer 2: differential evaluation
// ---------------------------------------------------------------------------

/// A value of the certification evaluator: scalars, named rows, and
/// collections (compared as multisets).
#[derive(Debug, Clone)]
enum CVal {
    Scalar(Value),
    Row {
        fields: Vec<String>,
        vals: Vec<Value>,
    },
    Coll(Vec<CVal>),
}

impl std::fmt::Display for CVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CVal::Scalar(v) => write!(f, "{v}"),
            CVal::Row { vals, .. } => {
                write!(f, "(")?;
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            CVal::Coll(rows) => {
                write!(f, "{{")?;
                for (i, r) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Flatten a scalar-ish value to a value vector, for positional comparison
/// (a fold's `pair[first, second]` vs. a query's two-column row).
fn flat(v: &CVal) -> Option<Vec<Value>> {
    match v {
        CVal::Scalar(x) => Some(vec![x.clone()]),
        CVal::Row { vals, .. } => Some(vals.clone()),
        CVal::Coll(_) => None,
    }
}

/// Structural equality: scalars/rows positionally with SQL grouping
/// semantics (`NULL` equals `NULL`), collections as multisets. `None` when
/// the shapes are incomparable.
fn cval_eq(a: &CVal, b: &CVal) -> Option<bool> {
    match (a, b) {
        (CVal::Coll(ra), CVal::Coll(rb)) => {
            if ra.len() != rb.len() {
                return Some(false);
            }
            let mut used = vec![false; rb.len()];
            for x in ra {
                let mut matched = false;
                for (j, y) in rb.iter().enumerate() {
                    if !used[j] && cval_eq(x, y) == Some(true) {
                        used[j] = true;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    return Some(false);
                }
            }
            Some(true)
        }
        (CVal::Coll(_), _) | (_, CVal::Coll(_)) => None,
        _ => {
            let (fa, fb) = (flat(a)?, flat(b)?);
            if fa.len() != fb.len() {
                return Some(false);
            }
            Some(fa.iter().zip(&fb).all(|(x, y)| x.group_eq(y)))
        }
    }
}

/// Inferred type of a free region input, from its operator context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InTy {
    Int,
    Bool,
    Str,
    Coll,
}

/// Infer input types from how each `Input` is used in the given roots.
fn input_types(dag: &EeDag, roots: &[NodeId]) -> BTreeMap<Symbol, InTy> {
    let mut tys: BTreeMap<Symbol, InTy> = BTreeMap::new();
    let note = |tys: &mut BTreeMap<Symbol, InTy>, dag: &EeDag, id: NodeId, ty: InTy| {
        if let Node::Input(s) = dag.node(id) {
            let cur = tys.entry(*s).or_insert(InTy::Int);
            // Specific contexts win over the Int default.
            if *cur == InTy::Int {
                *cur = ty;
            }
        }
    };
    for &root in roots {
        dag.walk(root, &mut |_, n| match n {
            Node::Input(s) => {
                tys.entry(*s).or_insert(InTy::Int);
            }
            Node::Op { op, args } => match op {
                OpKind::And | OpKind::Or | OpKind::Not => {
                    for a in args.iter() {
                        note(&mut tys, dag, *a, InTy::Bool);
                    }
                }
                OpKind::Concat | OpKind::Lower | OpKind::Upper | OpKind::Length => {
                    for a in args.iter() {
                        note(&mut tys, dag, *a, InTy::Str);
                    }
                }
                OpKind::Append | OpKind::Insert | OpKind::MultisetInsert => {
                    if let Some(first) = args.iter().next() {
                        note(&mut tys, dag, *first, InTy::Coll);
                    }
                }
                _ => {}
            },
            Node::Cond { cond, .. } => note(&mut tys, dag, *cond, InTy::Bool),
            Node::Fold { source, .. }
            | Node::Loop { source, .. }
            | Node::ArgExtreme { source, .. } => note(&mut tys, dag, *source, InTy::Coll),
            _ => {}
        });
    }
    tys
}

/// Generate a deterministic input assignment for one trial.
fn gen_inputs(
    tys: &BTreeMap<Symbol, InTy>,
    size: usize,
    rng: &mut StdRng,
) -> BTreeMap<Symbol, CVal> {
    let mut env = BTreeMap::new();
    for (&sym, &ty) in tys {
        let v = match ty {
            InTy::Int => CVal::Scalar(Value::Int(rng.gen_range(-2..6i64))),
            InTy::Bool => CVal::Scalar(Value::Bool(rng.gen_bool(0.5))),
            InTy::Str => CVal::Scalar(Value::Str(format!("s{}", rng.gen_range(0..3u32)))),
            InTy::Coll => {
                let n = size.min(3);
                CVal::Coll(
                    (0..n)
                        .map(|_| CVal::Scalar(Value::Int(rng.gen_range(-2..6i64))))
                        .collect(),
                )
            }
        };
        env.insert(sym, v);
    }
    env
}

/// Fold parameters occurring anywhere in the roots: accumulator symbols
/// (with a type guess from builder context) and tuple symbols with the
/// fields projected from each. A rewrite performed *inside* a folding
/// function leaves these free in the obligation, so trials must quantify
/// over them. Bound occurrences are collected too — harmless, because a
/// fold's own binding shadows the seeded value during evaluation.
fn param_usage(
    dag: &EeDag,
    roots: &[NodeId],
) -> (BTreeMap<Symbol, InTy>, BTreeMap<Symbol, BTreeSet<String>>) {
    let mut accs: BTreeMap<Symbol, InTy> = BTreeMap::new();
    let mut tups: BTreeMap<Symbol, BTreeSet<String>> = BTreeMap::new();
    for &root in roots {
        dag.walk(root, &mut |_, n| match n {
            Node::AccParam(s) => {
                accs.entry(*s).or_insert(InTy::Int);
            }
            Node::TupleParam(s) => {
                tups.entry(*s).or_default();
            }
            Node::FieldOf { base, field } => {
                if let Node::TupleParam(s) = dag.node(*base) {
                    tups.entry(*s).or_default().insert(field.to_string());
                }
            }
            Node::Op {
                op: OpKind::Append | OpKind::Insert | OpKind::MultisetInsert,
                args,
            } => {
                if let Some(&first) = args.iter().next() {
                    if let Node::AccParam(s) = dag.node(first) {
                        accs.insert(*s, InTy::Coll);
                    }
                }
            }
            _ => {}
        });
    }
    (accs, tups)
}

/// Seed values for free fold parameters: accumulators like ordinary
/// inputs; tuple parameters as rows carrying the projected fields, typed
/// from the catalog when a column of that name exists anywhere in it.
fn gen_params(
    tups: &BTreeMap<Symbol, BTreeSet<String>>,
    catalog: &Catalog,
    rng: &mut StdRng,
) -> BTreeMap<Symbol, CVal> {
    let mut env = BTreeMap::new();
    for (&sym, fields) in tups {
        let v = if fields.is_empty() {
            CVal::Scalar(Value::Int(rng.gen_range(-2..6i64)))
        } else {
            let fields: Vec<String> = fields.iter().cloned().collect();
            let vals = fields
                .iter()
                .map(|f| {
                    let ty = catalog
                        .tables()
                        .find_map(|t| t.columns.iter().find(|c| c.name == *f).map(|c| c.ty));
                    match ty {
                        Some(SqlType::Text) => Value::Str(format!("s{}", rng.gen_range(0..3u32))),
                        Some(SqlType::Bool) => Value::Bool(rng.gen_bool(0.5)),
                        _ => Value::Int(rng.gen_range(-2..6i64)),
                    }
                })
                .collect();
            CVal::Row { fields, vals }
        };
        env.insert(sym, v);
    }
    env
}

/// The differential evaluator: a direct interpreter for ee-DAG value
/// expressions over a concrete database and input assignment.
struct Eval<'a> {
    dag: &'a EeDag,
    db: &'a Database,
    env: &'a BTreeMap<Symbol, CVal>,
    /// Accumulator bindings of the folds currently being iterated.
    acc: BTreeMap<Symbol, CVal>,
    /// Tuple bindings of the folds currently being iterated.
    tup: BTreeMap<Symbol, CVal>,
}

impl Eval<'_> {
    fn eval(&mut self, id: NodeId) -> Result<CVal, String> {
        match self.dag.node(id).clone() {
            Node::Const(l) => Ok(CVal::Scalar(Value::from_lit(&l))),
            Node::Input(s) => self
                .env
                .get(&s)
                .cloned()
                .ok_or_else(|| format!("unbound input {s}")),
            Node::AccParam(s) => self
                .acc
                .get(&s)
                .cloned()
                .ok_or_else(|| format!("accumulator parameter {s} outside a fold")),
            Node::TupleParam(s) => self
                .tup
                .get(&s)
                .cloned()
                .ok_or_else(|| format!("tuple parameter {s} outside a fold")),
            Node::EmptyColl(_) => Ok(CVal::Coll(Vec::new())),
            Node::NotDetermined => Err("not-determined node".into()),
            Node::Opaque { reason, .. } => Err(format!("opaque node ({reason})")),
            Node::Loop { .. } => Err("un-folded loop node".into()),
            Node::FieldOf { base, field } => {
                let b = self.eval(base)?;
                match b {
                    CVal::Row { fields, vals } => fields
                        .iter()
                        .position(|f| *f == field.as_str())
                        .map(|i| CVal::Scalar(vals[i].clone()))
                        .ok_or_else(|| format!("row has no field {field}")),
                    _ => Err(format!("field access .{field} on a non-row value")),
                }
            }
            Node::Cond {
                cond,
                then_val,
                else_val,
            } => match self.scalar(cond)? {
                Value::Bool(true) => self.eval(then_val),
                Value::Bool(false) => self.eval(else_val),
                Value::Null => Err("NULL branch condition".into()),
                v => Err(format!("non-boolean branch condition {v}")),
            },
            Node::Query { ra, ref params } => {
                let ps = self.param_values(params)?;
                let rel = dbms::eval_query(&ra, self.db, &ps)
                    .map_err(|e| format!("query evaluation failed: {e:?}"))?;
                let fields: Vec<String> = rel.fields.iter().map(|f| f.name.clone()).collect();
                Ok(CVal::Coll(
                    rel.rows
                        .into_iter()
                        .map(|r| CVal::Row {
                            fields: fields.clone(),
                            vals: r,
                        })
                        .collect(),
                ))
            }
            Node::ScalarQuery { ra, ref params } => {
                let ps = self.param_values(params)?;
                let rel = dbms::eval_query(&ra, self.db, &ps)
                    .map_err(|e| format!("scalar query evaluation failed: {e:?}"))?;
                Ok(CVal::Scalar(match rel.rows.first() {
                    Some(row) => row.first().cloned().unwrap_or(Value::Null),
                    None => Value::Null,
                }))
            }
            Node::Fold {
                func,
                init,
                source,
                cursor,
                origin: (_, var),
            } => {
                let src = self.coll(source)?;
                let mut acc = self.eval(init)?;
                for elem in src {
                    let old_acc = self.acc.insert(var, acc);
                    let old_tup = self.tup.insert(cursor, elem);
                    let next = self.eval(func);
                    restore(&mut self.acc, var, old_acc);
                    restore(&mut self.tup, cursor, old_tup);
                    acc = next?;
                }
                Ok(acc)
            }
            Node::ArgExtreme {
                source,
                is_max,
                key,
                value,
                v_init,
                w_init,
                cursor,
                ..
            } => {
                let src = self.coll(source)?;
                let mut bound = self.scalar(v_init)?;
                let mut best = self.eval(w_init)?;
                for elem in src {
                    let old_tup = self.tup.insert(cursor, elem);
                    let k = self.scalar(key);
                    let beats = match &k {
                        Ok(kv) => match kv.sql_cmp(&bound) {
                            Some(ord) => (is_max && ord.is_gt()) || (!is_max && ord.is_lt()),
                            None => false,
                        },
                        Err(_) => false,
                    };
                    let picked = if beats { Some(self.eval(value)) } else { None };
                    restore(&mut self.tup, cursor, old_tup);
                    let k = k?;
                    if beats {
                        bound = k;
                        best = picked.unwrap()?;
                    }
                }
                Ok(best)
            }
            Node::Op { op, ref args } => self.op(op, args),
        }
    }

    /// Evaluate to a scalar `Value` (unwrapping one-column rows).
    fn scalar(&mut self, id: NodeId) -> Result<Value, String> {
        match self.eval(id)? {
            CVal::Scalar(v) => Ok(v),
            CVal::Row { vals, .. } if vals.len() == 1 => Ok(vals[0].clone()),
            other => Err(format!("expected a scalar, got {other}")),
        }
    }

    /// Evaluate to a collection.
    fn coll(&mut self, id: NodeId) -> Result<Vec<CVal>, String> {
        match self.eval(id)? {
            CVal::Coll(rows) => Ok(rows),
            other => Err(format!("expected a collection, got {other}")),
        }
    }

    fn param_values(&mut self, params: &NodeList) -> Result<Vec<Value>, String> {
        params.iter().map(|p| self.scalar(*p)).collect()
    }

    fn op(&mut self, op: OpKind, args: &NodeList) -> Result<CVal, String> {
        use OpKind::*;
        // Collection builders first: their first argument is not a scalar.
        match op {
            Append | MultisetInsert | Insert => {
                let ids = args.as_slice();
                if ids.len() != 2 {
                    return Err(format!("{op:?} expects two operands"));
                }
                let mut c = self.coll(ids[0])?;
                let e = self.eval(ids[1])?;
                if op == Insert && c.iter().any(|x| cval_eq(x, &e) == Some(true)) {
                    return Ok(CVal::Coll(c));
                }
                c.push(e);
                return Ok(CVal::Coll(c));
            }
            Pair => {
                let ids = args.as_slice();
                if ids.len() != 2 {
                    return Err("pair expects two operands".into());
                }
                let a = self.scalar(ids[0])?;
                let b = self.scalar(ids[1])?;
                return Ok(CVal::Row {
                    fields: vec!["first".into(), "second".into()],
                    vals: vec![a, b],
                });
            }
            _ => {}
        }
        let vals: Vec<Value> = args
            .iter()
            .map(|a| self.scalar(*a))
            .collect::<Result<_, _>>()?;
        let bin = |b: BinOp, vals: &[Value]| -> Result<CVal, String> {
            if vals.len() != 2 {
                return Err(format!("{b:?} expects two operands"));
            }
            eval_binop(b, vals[0].clone(), vals[1].clone())
                .map(CVal::Scalar)
                .map_err(|e| format!("operator evaluation failed: {e:?}"))
        };
        match op {
            Add => bin(BinOp::Add, &vals),
            Sub => bin(BinOp::Sub, &vals),
            Mul => bin(BinOp::Mul, &vals),
            Div => bin(BinOp::Div, &vals),
            Mod => bin(BinOp::Mod, &vals),
            Eq => bin(BinOp::Eq, &vals),
            Ne => bin(BinOp::Ne, &vals),
            Lt => bin(BinOp::Lt, &vals),
            Le => bin(BinOp::Le, &vals),
            Gt => bin(BinOp::Gt, &vals),
            Ge => bin(BinOp::Ge, &vals),
            And => Ok(CVal::Scalar(vals.iter().fold(
                Value::Bool(true),
                |a, b| match (a, b) {
                    (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
                    (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                    _ => Value::Null,
                },
            ))),
            Or => Ok(CVal::Scalar(vals.iter().fold(
                Value::Bool(false),
                |a, b| match (a, b) {
                    (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
                    (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                    _ => Value::Null,
                },
            ))),
            Not => match vals.first() {
                Some(Value::Bool(b)) => Ok(CVal::Scalar(Value::Bool(!b))),
                Some(Value::Null) => Ok(CVal::Scalar(Value::Null)),
                _ => Err("NOT of a non-boolean".into()),
            },
            Neg => match vals.first() {
                Some(Value::Null) => Ok(CVal::Scalar(Value::Null)),
                Some(Value::Int(i)) => Ok(CVal::Scalar(Value::Int(-i))),
                Some(v) => v
                    .as_f64()
                    .map(|f| CVal::Scalar(Value::Float(-f)))
                    .ok_or_else(|| "negation of a non-number".into()),
                None => Err("negation without operand".into()),
            },
            Abs => match vals.first() {
                Some(Value::Null) => Ok(CVal::Scalar(Value::Null)),
                Some(Value::Int(i)) => Ok(CVal::Scalar(Value::Int(i.abs()))),
                Some(v) => v
                    .as_f64()
                    .map(|f| CVal::Scalar(Value::Float(f.abs())))
                    .ok_or_else(|| "abs of a non-number".into()),
                None => Err("abs without operand".into()),
            },
            Max | Min => {
                if vals.len() != 2 {
                    return Err(format!("{op:?} expects two operands"));
                }
                if vals[0].is_null() || vals[1].is_null() {
                    return Ok(CVal::Scalar(Value::Null));
                }
                let ord = vals[0]
                    .sql_cmp(&vals[1])
                    .ok_or_else(|| "incomparable operands".to_string())?;
                let first = (op == Max) == ord.is_ge();
                Ok(CVal::Scalar(if first {
                    vals[0].clone()
                } else {
                    vals[1].clone()
                }))
            }
            Concat => {
                if vals.iter().any(Value::is_null) {
                    return Ok(CVal::Scalar(Value::Null));
                }
                Ok(CVal::Scalar(Value::Str(
                    vals.iter().map(|v| v.to_string()).collect(),
                )))
            }
            Lower | Upper => match vals.first() {
                Some(Value::Null) => Ok(CVal::Scalar(Value::Null)),
                Some(Value::Str(s)) => Ok(CVal::Scalar(Value::Str(if op == Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                }))),
                _ => Err("case conversion of a non-string".into()),
            },
            Length => match vals.first() {
                Some(Value::Null) => Ok(CVal::Scalar(Value::Null)),
                Some(Value::Str(s)) => Ok(CVal::Scalar(Value::Int(s.chars().count() as i64))),
                _ => Err("length of a non-string".into()),
            },
            Coalesce => Ok(CVal::Scalar(
                vals.iter()
                    .find(|v| !v.is_null())
                    .cloned()
                    .unwrap_or(Value::Null),
            )),
            Append | Insert | MultisetInsert | Pair => unreachable!("handled above"),
        }
    }
}

fn restore(map: &mut BTreeMap<Symbol, CVal>, key: Symbol, old: Option<CVal>) {
    match old {
        Some(v) => {
            map.insert(key, v);
        }
        None => {
            map.remove(&key);
        }
    }
}

// ===========================================================================
// foreach-dml certification (DESIGN.md §5i): differential *state*
// comparison. Unlike value obligations, a DML rewrite is judged by the
// final database contents: the original loop and the extracted statement
// each run — through the reference interpreter, so both sides use the real
// executors — on clones of a seeded micro-database, and every table must
// end as the same multiset of rows.
// ===========================================================================

/// A differential obligation for a foreach-dml rewrite: two single-function
/// programs over the same parameter list. `orig` contains the driving query
/// and the untouched loop body; `batch` contains only the extracted
/// set-oriented DML statement.
#[derive(Debug, Clone)]
pub struct DmlObligation {
    /// Program running the original loop.
    pub orig: imp::ast::Program,
    /// Program running the extracted statement.
    pub batch: imp::ast::Program,
    /// Entry-function name (the same in both programs).
    pub entry: String,
    /// Shared parameter list; trials quantify over these.
    pub params: Vec<Symbol>,
}

/// Canonical database state: per-table sorted row multiset.
fn db_state(db: &Database) -> BTreeMap<String, Vec<Vec<Value>>> {
    let mut out = BTreeMap::new();
    for schema in db.catalog().tables() {
        let Some(t) = db.table(&schema.name) else {
            continue;
        };
        let mut rows = t.rows_vec();
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.sort_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out.insert(schema.name.clone(), rows);
    }
    out
}

/// First table whose final contents differ, with a one-line description.
fn db_diff(a: &Database, b: &Database) -> Option<String> {
    let sa = db_state(a);
    let sb = db_state(b);
    for (name, ra) in &sa {
        let rb = sb.get(name)?;
        if ra.len() != rb.len() {
            return Some(format!(
                "table `{name}`: {} rows (loop) vs {} rows (statement)",
                ra.len(),
                rb.len()
            ));
        }
        for (x, y) in ra.iter().zip(rb.iter()) {
            let same = x.len() == y.len() && x.iter().zip(y.iter()).all(|(u, v)| u.group_eq(v));
            if !same {
                return Some(format!(
                    "table `{name}`: row {x:?} (loop) vs {y:?} (statement)"
                ));
            }
        }
    }
    None
}

/// Run one side on its own copy of the trial database; returns the final
/// database state.
fn run_dml_side(
    program: &imp::ast::Program,
    entry: &str,
    db: Database,
    args: &[interp::RtValue],
) -> Result<Database, interp::RtError> {
    let mut it = interp::Interp::new(program, dbms::Connection::new(db));
    it.call(entry, args.to_vec())?;
    Ok(std::mem::take(&mut it.conn.db))
}

impl Certifier<'_> {
    /// Certify a foreach-dml rewrite differentially. Every conclusive
    /// trial must leave both databases in the same state; a disagreement
    /// is a counterexample (the loop is kept, `E007` + `W010`), and trials
    /// that fail to evaluate leave the obligation inconclusive (`W006`).
    pub fn check_dml(&self, ob: &DmlObligation) -> Verdict {
        let mut conclusive = 0usize;
        let mut last_reason = String::from("no trials ran");
        for &size in &self.sizes {
            for rep in 0..self.reps {
                let tseed = self
                    .seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((size as u64) * 7919 + rep as u64 + 1);
                // NULL-bearing data (for columns the catalog declares
                // nullable) so NULL-key and NULL-guard divergence shows up.
                let db = dbms::gen::gen_catalog_nulls(self.catalog, size, tseed, 25);
                let mut rng = StdRng::seed_from_u64(tseed ^ 0x9E37_79B9_7F4A_7C15);
                let args: Vec<interp::RtValue> = ob
                    .params
                    .iter()
                    .map(|_| interp::RtValue::Scalar(Value::Int(rng.gen_range(-2..6i64))))
                    .collect();
                let ra = run_dml_side(&ob.orig, &ob.entry, db.clone(), &args);
                let rb = run_dml_side(&ob.batch, &ob.entry, db, &args);
                match (ra, rb) {
                    (Ok(da), Ok(dbb)) => match db_diff(&da, &dbb) {
                        None => conclusive += 1,
                        Some(diff) => {
                            return Verdict::Counterexample {
                                detail: format!(
                                    "trial: {size} rows/table, seed {tseed:#x}: {diff}"
                                ),
                            }
                        }
                    },
                    (Err(e), _) | (_, Err(e)) => {
                        last_reason = format!("trial did not evaluate: {e}");
                    }
                }
            }
        }
        if conclusive > 0 {
            Verdict::DischargedDifferential { trials: conclusive }
        } else {
            Verdict::Inconclusive {
                reason: last_reason,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eedag::CollKind;
    use algebra::parse::parse_sql;
    use algebra::schema::{SqlType, TableSchema};

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new("t", &[("id", SqlType::Int), ("grp", SqlType::Int)]).with_key(&["id"]),
        )
    }

    #[test]
    fn normalizer_discharges_commuted_addition() {
        let cat = catalog();
        let mut dag = EeDag::new();
        let a = dag.input("a");
        let b = dag.input("b");
        let ab = dag.op(OpKind::Add, vec![a, b]);
        let ba = dag.op(OpKind::Add, vec![b, a]);
        let v = Certifier::new(&cat).check(&mut dag, &Obligation::rewrite("test", ab, ba));
        assert_eq!(v, Verdict::DischargedNormalize);
    }

    #[test]
    fn normalizer_discharges_identity_elimination() {
        let cat = catalog();
        let mut dag = EeDag::new();
        let x = dag.input("x");
        let zero = dag.int(0);
        let x0 = dag.op(OpKind::Add, vec![x, zero]);
        let v = Certifier::new(&cat).check(&mut dag, &Obligation::rewrite("test", x0, x));
        assert_eq!(v, Verdict::DischargedNormalize);
        // Subtraction canonicalizes through Add: (x - 0) ≡ x.
        let xm0 = dag.op(OpKind::Sub, vec![x, zero]);
        let v = Certifier::new(&cat).check(&mut dag, &Obligation::rewrite("test", xm0, x));
        assert_eq!(v, Verdict::DischargedNormalize);
    }

    #[test]
    fn differential_discharges_doubling() {
        let cat = catalog();
        let mut dag = EeDag::new();
        let x = dag.input("x");
        let two = dag.int(2);
        let mul = dag.op(OpKind::Mul, vec![x, two]);
        let add = dag.op(OpKind::Add, vec![x, x]);
        let v = Certifier::new(&cat).check(&mut dag, &Obligation::rewrite("test", mul, add));
        assert!(
            matches!(v, Verdict::DischargedDifferential { trials } if trials > 0),
            "{v:?}"
        );
    }

    #[test]
    fn differential_finds_counterexample() {
        let cat = catalog();
        let mut dag = EeDag::new();
        let x = dag.input("x");
        let one = dag.int(1);
        let x1 = dag.op(OpKind::Add, vec![x, one]);
        let v = Certifier::new(&cat).check(&mut dag, &Obligation::rewrite("bogus", x, x1));
        assert!(matches!(v, Verdict::Counterexample { .. }), "{v:?}");
    }

    #[test]
    fn sum_fold_agrees_with_sql_sum() {
        let cat = catalog();
        let mut dag = EeDag::new();
        let q = parse_sql("SELECT grp FROM t").unwrap();
        let source = dag.intern(Node::Query {
            ra: q,
            params: NodeList::new(),
        });
        let acc = dag.intern(Node::AccParam(Symbol::intern("s")));
        let tup = dag.intern(Node::TupleParam(Symbol::intern("r")));
        let field = dag.intern(Node::FieldOf {
            base: tup,
            field: Symbol::intern("grp"),
        });
        let func = dag.op(OpKind::Add, vec![acc, field]);
        let zero = dag.int(0);
        let fold = dag.intern(Node::Fold {
            func,
            init: zero,
            source,
            cursor: Symbol::intern("r"),
            origin: (StmtId(0), Symbol::intern("s")),
        });
        let sq = parse_sql("SELECT SUM(grp) AS s FROM t").unwrap();
        let scalar = dag.intern(Node::ScalarQuery {
            ra: sq,
            params: NodeList::new(),
        });
        let after = dag.op(OpKind::Coalesce, vec![scalar, zero]);
        let v = Certifier::new(&cat).check(&mut dag, &Obligation::rewrite("T5.1-sum", fold, after));
        assert!(
            matches!(v, Verdict::DischargedDifferential { trials } if trials > 0),
            "{v:?}"
        );
    }

    #[test]
    fn fold_intro_discharged_by_inverse_substitution() {
        let cat = catalog();
        let mut dag = EeDag::new();
        let v_sym = Symbol::intern("total");
        let c_sym = Symbol::intern("row");
        let acc = dag.intern(Node::AccParam(v_sym));
        let one = dag.int(1);
        let func = dag.op(OpKind::Add, vec![acc, one]);
        let init = dag.input(v_sym);
        let source = dag.intern(Node::EmptyColl(CollKind::List));
        let fold = dag.intern(Node::Fold {
            func,
            init,
            source,
            cursor: c_sym,
            origin: (StmtId(3), v_sym),
        });
        let total0 = dag.input(v_sym);
        let body = dag.op(OpKind::Add, vec![total0, one]);
        let ob = Obligation::fold_intro(body, fold, (StmtId(3), v_sym));
        let v = Certifier::new(&cat).check(&mut dag, &ob);
        assert_eq!(v, Verdict::DischargedNormalize);
    }

    #[test]
    fn opaque_sides_are_inconclusive_not_certified() {
        let cat = catalog();
        let mut dag = EeDag::new();
        let a = dag.opaque("callA", Vec::<NodeId>::new());
        let b = dag.opaque("callB", Vec::<NodeId>::new());
        let v = Certifier::new(&cat).check(&mut dag, &Obligation::rewrite("test", a, b));
        assert!(matches!(v, Verdict::Inconclusive { .. }), "{v:?}");
    }

    #[test]
    fn report_renders_e007_and_w006() {
        let cat = catalog();
        let mut dag = EeDag::new();
        let x = dag.input("x");
        let one = dag.int(1);
        let x1 = dag.op(OpKind::Add, vec![x, one]);
        let op_a = dag.opaque("callA", Vec::<NodeId>::new());
        let op_b = dag.opaque("callB", Vec::<NodeId>::new());
        let obs = vec![
            Obligation::rewrite("bogus", x, x1),
            Obligation::rewrite("fuzzy", op_a, op_b),
            Obligation::rewrite("fine", x, x),
        ];
        let report = Certifier::new(&cat).check_all(&mut dag, &obs);
        assert_eq!(report.total(), 3);
        assert_eq!(report.counterexamples(), 1);
        assert_eq!(report.inconclusive(), 1);
        assert_eq!(report.discharged_normalize(), 1);
        assert!(!report.all_discharged());
        let diags = report.diagnostics(&dag, &|_| None);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].code, Code::CertCounterexample);
        assert_eq!(diags[1].code, Code::CertInconclusive);
    }

    #[test]
    fn multiset_comparison_ignores_row_order() {
        let a = CVal::Coll(vec![
            CVal::Scalar(Value::Int(1)),
            CVal::Scalar(Value::Int(2)),
        ]);
        let b = CVal::Coll(vec![
            CVal::Scalar(Value::Int(2)),
            CVal::Scalar(Value::Int(1)),
        ]);
        assert_eq!(cval_eq(&a, &b), Some(true));
        let c = CVal::Coll(vec![
            CVal::Scalar(Value::Int(1)),
            CVal::Scalar(Value::Int(1)),
        ]);
        assert_eq!(cval_eq(&a, &c), Some(false));
    }
}
