//! Program rewriting (paper Sec. 5.2): replace an extracted cursor loop
//! with `v = executeQuery(Q)` / `v = executeScalar(Q)` statements, then
//! eliminate the code rendered dead.

use std::collections::BTreeSet;

use intern::Symbol;

use analysis::deadcode::eliminate_dead_code;
use imp::ast::{Block, Expr, Function, Stmt, StmtId, StmtKind};

/// One planned loop replacement.
#[derive(Debug, Clone)]
pub struct RewritePlan {
    /// The `ForEach` statement to replace.
    pub loop_stmt: StmtId,
    /// Replacement assignments, in order.
    pub assigns: Vec<(Symbol, Expr)>,
    /// Replacement expression statements (set-oriented `executeUpdate`
    /// calls from foreach-dml extraction), emitted after the assignments.
    pub dml: Vec<Expr>,
}

/// Check that every variable in `inputs` is safe to reference at the loop
/// site: it must be a function parameter or otherwise never (re)assigned
/// before the loop, because extracted expressions are phrased over
/// *function-entry* values.
pub fn inputs_safe(f: &Function, loop_stmt: StmtId, inputs: &[Symbol]) -> bool {
    let mut assigned = BTreeSet::new();
    let reached = scan_before(&f.body, loop_stmt, &mut assigned);
    debug_assert!(reached, "loop statement must be inside the function");
    inputs.iter().all(|v| !assigned.contains(v))
}

/// Collect variables assigned before `target` in program order; returns
/// true when `target` was found.
fn scan_before(b: &Block, target: StmtId, assigned: &mut BTreeSet<Symbol>) -> bool {
    for s in &b.stmts {
        if s.id == target {
            return true;
        }
        match &s.kind {
            StmtKind::Assign { target: t, .. } => {
                assigned.insert(*t);
            }
            StmtKind::Expr(Expr::MethodCall { recv, name, .. })
                if analysis::defuse::MUTATING_METHODS.contains(&name.as_str()) =>
            {
                if let Expr::Var(v) = recv.as_ref() {
                    assigned.insert(*v);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                if scan_before(then_branch, target, assigned) {
                    return true;
                }
                if scan_before(else_branch, target, assigned) {
                    return true;
                }
            }
            StmtKind::ForEach { var, body, .. } => {
                if scan_before(body, target, assigned) {
                    return true;
                }
                assigned.insert(*var);
                // Conservatively include everything the loop assigns.
                for inner in analysis_defs(body) {
                    assigned.insert(inner);
                }
            }
            StmtKind::While { body, .. } => {
                if scan_before(body, target, assigned) {
                    return true;
                }
                for inner in analysis_defs(body) {
                    assigned.insert(inner);
                }
            }
            _ => {}
        }
    }
    false
}

fn analysis_defs(b: &Block) -> Vec<Symbol> {
    let mut out = Vec::new();
    for s in &b.stmts {
        let du = analysis::defuse::DefUse::of_stmt_recursive(s);
        out.extend(du.defs);
    }
    out
}

/// Apply rewrite plans to a function, then run dead-code elimination.
/// Returns the number of loops replaced.
pub fn apply_plans(f: &mut Function, plans: &[RewritePlan]) -> usize {
    let mut replaced = 0;
    let mut next_id = u32::MAX;
    for plan in plans {
        if replace_in_block(&mut f.body, plan, &mut next_id) {
            replaced += 1;
        }
    }
    if replaced > 0 {
        eliminate_dead_code(f, &BTreeSet::new());
    }
    replaced
}

fn replace_in_block(b: &mut Block, plan: &RewritePlan, next_id: &mut u32) -> bool {
    for i in 0..b.stmts.len() {
        if b.stmts[i].id == plan.loop_stmt {
            let span = b.stmts[i].span;
            // Placeholder ids counting down from u32::MAX, renumbered by
            // the caller. They must be *distinct* (across plans too): the
            // dead-code pass keys per-statement liveness facts by id
            // before the renumber happens.
            let mut fresh = || {
                let id = StmtId(*next_id);
                *next_id -= 1;
                id
            };
            let mut new: Vec<Stmt> = plan
                .assigns
                .iter()
                .map(|(v, e)| Stmt {
                    id: fresh(),
                    kind: StmtKind::Assign {
                        target: *v,
                        value: e.clone(),
                    },
                    span,
                })
                .collect();
            new.extend(plan.dml.iter().map(|e| Stmt {
                id: fresh(),
                kind: StmtKind::Expr(e.clone()),
                span,
            }));
            b.stmts.splice(i..=i, new);
            return true;
        }
        let found = match &mut b.stmts[i].kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                replace_in_block(then_branch, plan, next_id)
                    || replace_in_block(else_branch, plan, next_id)
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                replace_in_block(body, plan, next_id)
            }
            _ => false,
        };
        if found {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp::parser::parse_program;
    use imp::pretty::pretty_print;

    #[test]
    fn inputs_safe_detects_reassignment() {
        let p = parse_program("fn f(x) { x = x + 1; for (t in q) { s = s + t.a; } return s; }")
            .unwrap();
        let f = &p.functions[0];
        let loop_id = f.body.stmts[1].id;
        assert!(!inputs_safe(f, loop_id, &[Symbol::intern("x")]));
        assert!(inputs_safe(f, loop_id, &[Symbol::intern("q")]));
    }

    #[test]
    fn inputs_safe_ignores_later_assignments() {
        let p =
            parse_program("fn f(x) { for (t in q) { s = s + t.a; } x = 0; return s; }").unwrap();
        let f = &p.functions[0];
        let loop_id = f.body.stmts[0].id;
        assert!(inputs_safe(f, loop_id, &[Symbol::intern("x")]));
    }

    #[test]
    fn replace_loop_with_assignment() {
        let mut p = parse_program(
            r#"fn f() {
                q = executeQuery("SELECT * FROM t");
                s = 0;
                for (r in q) { s = s + r.x; }
                return s;
            }"#,
        )
        .unwrap();
        let loop_id = p.functions[0].body.stmts[2].id;
        let plan = RewritePlan {
            loop_stmt: loop_id,
            assigns: vec![(
                Symbol::intern("s"),
                Expr::call(
                    "executeScalar",
                    vec![Expr::str("SELECT COALESCE(SUM(x), 0) AS agg0 FROM t")],
                ),
            )],
            dml: Vec::new(),
        };
        let mut f = p.functions.remove(0);
        assert_eq!(apply_plans(&mut f, &[plan]), 1);
        p.functions.push(f);
        p.renumber();
        let out = pretty_print(&p);
        assert!(!out.contains("for ("), "{out}");
        assert!(out.contains("executeScalar"), "{out}");
        // The now-unused original query fetch must be dead-code-eliminated.
        assert!(!out.contains("SELECT * FROM t"), "{out}");
    }
}
