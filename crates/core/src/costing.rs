//! Cost-based application of transformations (paper Sec. 5.3 / Appendix C).
//!
//! The paper applies every transformation and notes that, in general, "the
//! decision to replace should be taken in a cost based manner", sketching a
//! Volcano/Cascades-style search as future work. This module implements a
//! practical instance of that sketch:
//!
//! * [`DbStats`] — table cardinalities and average row widths (collected
//!   from a live [`dbms::Database`] or supplied synthetically);
//! * [`estimate_query`] — a textbook cardinality/cost estimator over the
//!   relational algebra (System-R-style default selectivities);
//! * [`estimate_loop_original`] / [`estimate_replacement`] — end-to-end
//!   costs of the original cursor loop vs the rewritten statements, in the
//!   same round-trip/transfer units the experiments measure;
//! * [`RewriteDecision`] — the comparison outcome.
//!
//! The extractor consults this module when
//! `ExtractorOptions::cost_based` carries statistics: a rewrite whose
//! estimated cost exceeds the original's is skipped (the Figure 7(a)
//! scenario, where "the cost of an additional query will outweigh the
//! benefit of pushing aggregation into the database").

use std::collections::BTreeMap;

use algebra::parse::parse_sql;
use algebra::ra::RaExpr;
use imp::ast::{Block, Expr, Function, StmtId, StmtKind};

/// Statistics for one table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableStats {
    /// Row count.
    pub rows: f64,
    /// Average row width in bytes.
    pub avg_row_bytes: f64,
}

/// Per-column statistics: number-of-distinct-values estimate and NULL
/// fraction. Paged tables deliver these from the `storage::stats` KMV
/// sketches maintained during page writes; in-memory tables compute them
/// exactly with one scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColStats {
    /// Estimated distinct non-NULL values.
    pub ndv: f64,
    /// Fraction of rows where the column is NULL.
    pub null_frac: f64,
}

/// Statistics for a database.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    tables: BTreeMap<String, TableStats>,
    /// table name → column name → column statistics.
    columns: BTreeMap<String, BTreeMap<String, ColStats>>,
    /// Per-round-trip latency, microseconds (mirrors `dbms::CostModel`).
    pub latency_us: f64,
    /// Per-byte transfer cost, microseconds.
    pub per_byte_us: f64,
}

impl DbStats {
    /// Collect statistics from a live database.
    ///
    /// Row counts and average widths come from the table itself. Column
    /// NDV/NULL-fraction come from the storage engine's sketches when the
    /// table is paged ([`dbms::Table::statistics`]); for in-memory tables
    /// they are computed exactly by scanning (tables there are small).
    pub fn from_database(db: &dbms::Database) -> DbStats {
        let mut s = DbStats {
            latency_us: 500.0,
            per_byte_us: 0.01,
            ..Default::default()
        };
        for schema in db.catalog().tables() {
            if let Some(t) = db.table(&schema.name) {
                let nrows = t.len();
                let bytes: usize = t
                    .scan()
                    .take(64)
                    .map(|r| r.iter().map(dbms::Value::wire_size).sum::<usize>() + 8)
                    .sum();
                let avg = if nrows == 0 {
                    32.0
                } else {
                    bytes as f64 / nrows.min(64) as f64
                };
                s.tables.insert(
                    schema.name.clone(),
                    TableStats {
                        rows: nrows as f64,
                        avg_row_bytes: avg,
                    },
                );
                let cols = match t.statistics() {
                    Some(ts) if ts.columns.len() == schema.columns.len() => schema
                        .columns
                        .iter()
                        .zip(&ts.columns)
                        .map(|(c, cs)| {
                            (
                                c.name.clone(),
                                ColStats {
                                    ndv: cs.ndv,
                                    null_frac: cs.null_frac,
                                },
                            )
                        })
                        .collect(),
                    _ => exact_column_stats(t, schema),
                };
                s.columns
                    .insert(schema.name.clone(), cols.into_iter().collect());
            }
        }
        s
    }

    /// Set the cost-model constants.
    pub fn with_costs(mut self, latency_us: f64, per_byte_us: f64) -> DbStats {
        self.latency_us = latency_us;
        self.per_byte_us = per_byte_us;
        self
    }

    /// Add a synthetic table statistic.
    pub fn with_table(mut self, name: &str, rows: f64, avg_row_bytes: f64) -> DbStats {
        self.tables.insert(
            name.to_string(),
            TableStats {
                rows,
                avg_row_bytes,
            },
        );
        self
    }

    /// Add a synthetic column statistic.
    pub fn with_column(mut self, table: &str, column: &str, ndv: f64, null_frac: f64) -> DbStats {
        self.columns
            .entry(table.to_string())
            .or_default()
            .insert(column.to_string(), ColStats { ndv, null_frac });
        self
    }

    /// Canonical, deterministic encoding of the statistics.
    ///
    /// Feeds [`crate::ExtractorOptions::fingerprint`]: both maps are
    /// `BTreeMap`s, so iteration (and therefore the encoding) is stable,
    /// and the KMV sketches behind paged-table NDVs are themselves
    /// deterministic functions of the data.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("latency={};per_byte={}", self.latency_us, self.per_byte_us);
        for (name, t) in &self.tables {
            let _ = write!(out, ";{name}={},{}", t.rows, t.avg_row_bytes);
        }
        for (name, cols) in &self.columns {
            for (col, c) in cols {
                let _ = write!(out, ";{name}.{col}={},{}", c.ndv, c.null_frac);
            }
        }
        out
    }

    fn table(&self, name: &str) -> TableStats {
        self.tables.get(name).copied().unwrap_or(TableStats {
            rows: 1000.0,
            avg_row_bytes: 64.0,
        })
    }

    fn column(&self, table: &str, column: &str) -> Option<ColStats> {
        self.columns.get(table)?.get(column).copied()
    }
}

/// Exact per-column statistics for an in-memory table (one full scan).
fn exact_column_stats(
    t: &dbms::Table,
    schema: &algebra::schema::TableSchema,
) -> Vec<(String, ColStats)> {
    let ncols = schema.columns.len();
    let mut distinct: Vec<std::collections::HashSet<String>> = vec![Default::default(); ncols];
    let mut nulls = vec![0usize; ncols];
    let mut rows = 0usize;
    for row in t.scan() {
        rows += 1;
        for (i, v) in row.iter().enumerate().take(ncols) {
            if matches!(v, dbms::Value::Null) {
                nulls[i] += 1;
            } else {
                distinct[i].insert(v.group_key());
            }
        }
    }
    schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            (
                c.name.clone(),
                ColStats {
                    ndv: distinct[i].len() as f64,
                    null_frac: if rows == 0 {
                        0.0
                    } else {
                        nulls[i] as f64 / rows as f64
                    },
                },
            )
        })
        .collect()
}

/// Estimated evaluation of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated transferred bytes.
    pub bytes: f64,
}

/// Default selectivities (System-R heritage).
const SEL_EQ: f64 = 0.1;
const SEL_RANGE: f64 = 0.33;

/// Estimate output cardinality and transfer size of a query.
pub fn estimate_query(ra: &RaExpr, stats: &DbStats) -> QueryEstimate {
    match ra {
        RaExpr::Table { name, .. } => {
            let t = stats.table(name);
            QueryEstimate {
                rows: t.rows,
                bytes: t.rows * t.avg_row_bytes,
            }
        }
        RaExpr::Values { rows, columns } => QueryEstimate {
            rows: rows.len() as f64,
            bytes: (rows.len() * columns.len() * 8) as f64,
        },
        RaExpr::Select { input, pred } => {
            let e = estimate_query(input, stats);
            let sel = pred_selectivity_for(pred, base_table_name(input), stats);
            QueryEstimate {
                rows: e.rows * sel,
                bytes: e.bytes * sel,
            }
        }
        RaExpr::Project { input, items } => {
            let e = estimate_query(input, stats);
            // Projection narrows rows roughly proportionally to the column
            // count (we do not track per-column widths).
            let width = (items.len() as f64 * 10.0).min(e.bytes / e.rows.max(1.0));
            QueryEstimate {
                rows: e.rows,
                bytes: e.rows * width,
            }
        }
        RaExpr::Join {
            left, right, pred, ..
        } => {
            let l = estimate_query(left, stats);
            let r = estimate_query(right, stats);
            let sel = pred_selectivity(pred);
            let rows = (l.rows * r.rows * sel).max(l.rows.min(r.rows) * 0.1);
            let width = l.bytes / l.rows.max(1.0) + r.bytes / r.rows.max(1.0);
            QueryEstimate {
                rows,
                bytes: rows * width,
            }
        }
        RaExpr::OuterApply { left, right } => {
            let l = estimate_query(left, stats);
            let r = estimate_query(right, stats);
            // Correlated lookups typically return ≤1 row per outer row.
            let per = (r.rows / stats_rows_hint(right, stats)).clamp(0.1, 2.0);
            let rows = l.rows * per.max(1.0);
            let width = l.bytes / l.rows.max(1.0) + r.bytes / r.rows.max(1.0);
            QueryEstimate {
                rows,
                bytes: rows * width,
            }
        }
        RaExpr::Aggregate {
            input, group_by, ..
        } => {
            let e = estimate_query(input, stats);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                e.rows.sqrt().max(1.0)
            };
            QueryEstimate {
                rows: groups,
                bytes: groups * 16.0,
            }
        }
        RaExpr::Sort { input, .. } => estimate_query(input, stats),
        RaExpr::Dedup { input } => {
            let e = estimate_query(input, stats);
            QueryEstimate {
                rows: e.rows * 0.5,
                bytes: e.bytes * 0.5,
            }
        }
        RaExpr::Limit { input, count } => {
            let e = estimate_query(input, stats);
            let rows = e.rows.min(*count as f64);
            let width = e.bytes / e.rows.max(1.0);
            QueryEstimate {
                rows,
                bytes: rows * width,
            }
        }
        RaExpr::Aliased { input, .. } => estimate_query(input, stats),
    }
}

fn stats_rows_hint(ra: &RaExpr, stats: &DbStats) -> f64 {
    estimate_query(ra, stats).rows.max(1.0)
}

fn pred_selectivity(p: &algebra::scalar::Scalar) -> f64 {
    pred_selectivity_for(p, None, &DbStats::default())
}

/// The base table a plan fragment ultimately scans, when it has exactly one.
fn base_table_name(ra: &RaExpr) -> Option<&str> {
    match ra {
        RaExpr::Table { name, .. } => Some(name),
        RaExpr::Select { input, .. }
        | RaExpr::Project { input, .. }
        | RaExpr::Sort { input, .. }
        | RaExpr::Dedup { input }
        | RaExpr::Limit { input, .. }
        | RaExpr::Aliased { input, .. }
        | RaExpr::Aggregate { input, .. } => base_table_name(input),
        _ => None,
    }
}

/// Selectivity of `p`, refined by column statistics when available.
///
/// For `col = <literal/param>` over a table with a known NDV the System-R
/// default `SEL_EQ` is replaced by `(1 - null_frac) / ndv` — equality never
/// matches NULLs, and distinct values are assumed uniform (ROADMAP item 2's
/// "cardinality estimation from table statistics").
fn pred_selectivity_for(p: &algebra::scalar::Scalar, table: Option<&str>, stats: &DbStats) -> f64 {
    use algebra::scalar::{BinOp, Scalar};
    match p {
        Scalar::Bin(BinOp::And, l, r) => {
            pred_selectivity_for(l, table, stats) * pred_selectivity_for(r, table, stats)
        }
        Scalar::Bin(BinOp::Or, l, r) => {
            (pred_selectivity_for(l, table, stats) + pred_selectivity_for(r, table, stats)).min(1.0)
        }
        Scalar::Bin(BinOp::Eq, l, r) => {
            let col = match (&**l, &**r) {
                (Scalar::Col(c), _) | (_, Scalar::Col(c)) => Some(&c.column),
                _ => None,
            };
            match (table, col) {
                (Some(t), Some(c)) => match stats.column(t, c) {
                    Some(cs) if cs.ndv >= 1.0 => ((1.0 - cs.null_frac) / cs.ndv).clamp(1e-6, 1.0),
                    _ => SEL_EQ,
                },
                _ => SEL_EQ,
            }
        }
        Scalar::Bin(op, ..) if op.is_comparison() => SEL_RANGE,
        Scalar::Lit(algebra::scalar::Lit::Bool(true)) => 1.0,
        _ => 0.5,
    }
}

/// Simulated execution time of one query round trip.
fn query_time_us(e: QueryEstimate, stats: &DbStats) -> f64 {
    stats.latency_us + e.bytes * stats.per_byte_us + e.rows
}

/// Estimated cost (µs) of executing the original cursor loop: its iterable
/// query plus, per estimated outer row, every query issued in the body.
pub fn estimate_loop_original(f: &Function, loop_stmt: StmtId, stats: &DbStats) -> Option<f64> {
    let (iterable, body) = find_loop(&f.body, loop_stmt)?;
    let outer_sqls = collect_sql_strings_expr(iterable);
    let outer_ra = outer_sqls.first().and_then(|s| parse_sql(s).ok());
    // The iterable may be a variable bound to an earlier query: search the
    // whole function for its defining SQL as a fallback.
    let outer_ra = outer_ra.or_else(|| {
        if let Expr::Var(v) = iterable {
            defining_sql(&f.body, v).and_then(|s| parse_sql(&s).ok())
        } else {
            None
        }
    })?;
    let outer_est = estimate_query(&outer_ra, stats);
    let mut cost = query_time_us(outer_est, stats);
    for sql in collect_sql_strings_block(body) {
        if let Ok(inner) = parse_sql(&sql) {
            let e = estimate_query(&inner, stats);
            cost += outer_est.rows * query_time_us(e, stats);
        }
    }
    Some(cost)
}

/// Estimated cost (µs) of executing the replacement expressions: one round
/// trip per embedded query.
pub fn estimate_replacement(assigns: &[(intern::Symbol, Expr)], stats: &DbStats) -> f64 {
    let mut cost = 0.0;
    for (_, e) in assigns {
        for sql in collect_sql_strings_expr(e) {
            if let Ok(ra) = parse_sql(&sql) {
                cost += query_time_us(estimate_query(&ra, stats), stats);
            }
        }
    }
    cost
}

/// The outcome of a cost comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewriteDecision {
    /// Estimated cost of the original loop, µs.
    pub original_us: f64,
    /// Estimated cost of the rewritten statements, µs.
    pub rewritten_us: f64,
    /// True when the rewrite is estimated beneficial.
    pub beneficial: bool,
}

/// Compare original vs rewritten cost for one planned loop replacement.
pub fn decide(
    f: &Function,
    loop_stmt: StmtId,
    assigns: &[(intern::Symbol, Expr)],
    stats: &DbStats,
) -> RewriteDecision {
    let original_us = estimate_loop_original(f, loop_stmt, stats).unwrap_or(f64::INFINITY);
    let rewritten_us = estimate_replacement(assigns, stats);
    RewriteDecision {
        original_us,
        rewritten_us,
        beneficial: rewritten_us <= original_us,
    }
}

fn find_loop(b: &Block, id: StmtId) -> Option<(&Expr, &Block)> {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::ForEach { iterable, body, .. } if s.id == id => {
                return Some((iterable, body))
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Some(r) = find_loop(then_branch, id).or_else(|| find_loop(else_branch, id)) {
                    return Some(r);
                }
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                if let Some(r) = find_loop(body, id) {
                    return Some(r);
                }
            }
            _ => {}
        }
    }
    None
}

fn defining_sql(b: &Block, var: &str) -> Option<String> {
    let mut found = None;
    for s in &b.stmts {
        if let StmtKind::Assign { target, value } = &s.kind {
            if target == var {
                if let Some(sql) = collect_sql_strings_expr(value).into_iter().next() {
                    found = Some(sql);
                }
            }
        }
    }
    found
}

fn collect_sql_strings_expr(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    e.walk(&mut |x| {
        if let Expr::Call { name, args } = x {
            if name == "executeQuery" || name == "executeScalar" {
                if let Some(Expr::Lit(imp::ast::Literal::Str(s))) = args.first() {
                    out.push(s.clone());
                }
            }
        }
    });
    out
}

fn collect_sql_strings_block(b: &Block) -> Vec<String> {
    let mut out = Vec::new();
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Assign { value, .. } => out.extend(collect_sql_strings_expr(value)),
            StmtKind::Expr(e) => out.extend(collect_sql_strings_expr(e)),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                out.extend(collect_sql_strings_expr(cond));
                out.extend(collect_sql_strings_block(then_branch));
                out.extend(collect_sql_strings_block(else_branch));
            }
            StmtKind::ForEach { iterable, body, .. } => {
                out.extend(collect_sql_strings_expr(iterable));
                out.extend(collect_sql_strings_block(body));
            }
            StmtKind::While { cond, body } => {
                out.extend(collect_sql_strings_expr(cond));
                out.extend(collect_sql_strings_block(body));
            }
            StmtKind::Return(Some(v)) => out.extend(collect_sql_strings_expr(v)),
            StmtKind::Print(args) => {
                for a in args {
                    out.extend(collect_sql_strings_expr(a));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp::parser::parse_program;

    fn stats() -> DbStats {
        DbStats {
            latency_us: 500.0,
            per_byte_us: 0.01,
            ..Default::default()
        }
        .with_table("emp", 10_000.0, 50.0)
        .with_table("dept", 10.0, 30.0)
    }

    #[test]
    fn table_scan_estimate() {
        let q = parse_sql("SELECT * FROM emp").unwrap();
        let e = estimate_query(&q, &stats());
        assert_eq!(e.rows, 10_000.0);
        assert_eq!(e.bytes, 500_000.0);
    }

    #[test]
    fn selection_reduces_estimate() {
        let all = estimate_query(&parse_sql("SELECT * FROM emp").unwrap(), &stats());
        let eq = estimate_query(
            &parse_sql("SELECT * FROM emp WHERE id = 3").unwrap(),
            &stats(),
        );
        let rng = estimate_query(
            &parse_sql("SELECT * FROM emp WHERE id > 3").unwrap(),
            &stats(),
        );
        assert!(eq.rows < rng.rows && rng.rows < all.rows);
    }

    #[test]
    fn aggregate_is_one_row() {
        let q = parse_sql("SELECT SUM(salary) AS s FROM emp").unwrap();
        let e = estimate_query(&q, &stats());
        assert_eq!(e.rows, 1.0);
        assert!(e.bytes < 100.0);
    }

    #[test]
    fn per_row_inner_queries_dominate_original_cost() {
        let p = parse_program(
            r#"fn f() {
                rows = executeQuery("SELECT * FROM emp");
                out = list();
                for (r in rows) {
                    d = executeScalar("SELECT id FROM dept WHERE id = ?", r.id);
                    out.add(d);
                }
                return out;
            }"#,
        )
        .unwrap();
        let f = &p.functions[0];
        let loop_id = f.body.stmts[2].id;
        let c = estimate_loop_original(f, loop_id, &stats()).unwrap();
        // 10 000 inner round trips at 500µs dominate.
        assert!(c > 5_000_000.0, "{c}");
    }

    #[test]
    fn decide_prefers_single_query() {
        let p = parse_program(
            r#"fn f() {
                rows = executeQuery("SELECT * FROM emp");
                s = 0;
                for (r in rows) { s = s + r.salary; }
                return s;
            }"#,
        )
        .unwrap();
        let f = &p.functions[0];
        let loop_id = f.body.stmts[2].id;
        let assigns = vec![(
            intern::Symbol::intern("s"),
            Expr::call(
                "executeScalar",
                vec![Expr::str("SELECT SUM(salary) AS agg0 FROM emp")],
            ),
        )];
        let d = decide(f, loop_id, &assigns, &stats());
        assert!(d.beneficial, "{d:?}");
        assert!(d.rewritten_us < d.original_us);
    }

    #[test]
    fn decide_rejects_costlier_rewrite() {
        // A rewrite that still fetches the whole table per assigned variable
        // three times over is worse than the original single fetch.
        let p = parse_program(
            r#"fn f() {
                rows = executeQuery("SELECT * FROM emp");
                s = 0;
                for (r in rows) { s = s + r.salary; }
                return s;
            }"#,
        )
        .unwrap();
        let f = &p.functions[0];
        let loop_id = f.body.stmts[2].id;
        let fetch_all = Expr::call("executeQuery", vec![Expr::str("SELECT * FROM emp")]);
        let assigns = vec![
            (intern::Symbol::intern("a"), fetch_all.clone()),
            (intern::Symbol::intern("b"), fetch_all.clone()),
            (intern::Symbol::intern("c"), fetch_all),
        ];
        let d = decide(f, loop_id, &assigns, &stats());
        assert!(!d.beneficial, "{d:?}");
    }

    #[test]
    fn stats_from_database() {
        let db = dbms::gen::gen_emp(100, 1);
        let s = DbStats::from_database(&db);
        let q = parse_sql("SELECT * FROM emp").unwrap();
        let e = estimate_query(&q, &s);
        assert_eq!(e.rows, 100.0);
        assert!(e.bytes > 1_000.0);
    }
}
