//! Keyword-search servlet corpora (paper Experiment 3).
//!
//! "The fraction of servlets where all queries were extracted by our tool
//! was 17/17 for RuBiS, 16/16 for RuBBoS and 58/79 for AcadPortal."
//!
//! RuBiS (an eBay-like bidding system) and RuBBoS (a Slashdot-like bulletin
//! board) are public benchmarks; AcadPortal is IIT Bombay's academic portal.
//! We re-create each corpus as servlet-style `imp` programs that *print*
//! form output inside cursor loops (the keyword-search extraction mode:
//! print-to-append preprocessing plus unordered rules).
//!
//! For AcadPortal the paper also reports that "in about 20% of the cases,
//! the manually extracted query was less precise than that extracted
//! automatically" — servlets carry an optional `manual_sql` modeling the
//! human-written query (typically an over-fetching `SELECT *`).

use algebra::schema::{Catalog, SqlType, TableSchema};
use dbms::prng::StdRng;
use dbms::{Database, Value};

/// One servlet of a corpus.
#[derive(Debug, Clone)]
pub struct Servlet {
    /// Application name ("rubis" | "rubbos" | "acadportal").
    pub app: &'static str,
    /// Servlet name; the `imp` function is `servlet`.
    pub name: String,
    /// Source code.
    pub source: String,
    /// Whether keyword-search extraction is expected to succeed.
    pub expect_extract: bool,
    /// The manually-written query of the original keyword-search system,
    /// when we model one (Experiment 3's precision comparison).
    pub manual_sql: Option<String>,
}

fn servlet(
    app: &'static str,
    name: &str,
    source: String,
    expect_extract: bool,
    manual_sql: Option<String>,
) -> Servlet {
    Servlet {
        app,
        name: name.to_string(),
        source,
        expect_extract,
        manual_sql,
    }
}

// --- RuBiS ----------------------------------------------------------------

/// RuBiS schema (bidding system modeled after ebay.com).
pub fn rubis_catalog() -> Catalog {
    Catalog::new()
        .with(
            TableSchema::new(
                "users",
                &[
                    ("id", SqlType::Int),
                    ("nickname", SqlType::Text),
                    ("rating", SqlType::Int),
                    ("region", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "items",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("seller", SqlType::Int),
                    ("category", SqlType::Int),
                    ("price", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "categories",
                &[("id", SqlType::Int), ("name", SqlType::Text)],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "bids",
                &[
                    ("id", SqlType::Int),
                    ("item_id", SqlType::Int),
                    ("user_id", SqlType::Int),
                    ("bid", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "comments",
                &[
                    ("id", SqlType::Int),
                    ("to_user", SqlType::Int),
                    ("from_user", SqlType::Int),
                    ("rating", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new("regions", &[("id", SqlType::Int), ("name", SqlType::Text)])
                .with_key(&["id"]),
        )
}

/// A servlet that prints projected columns of a filtered table.
fn print_filter(table: &str, cols: &[&str], pred: &str) -> String {
    let prints: Vec<String> = cols.iter().map(|c| format!("r.{c}")).collect();
    format!(
        r#"fn servlet(p) {{
            rows = executeQuery("SELECT * FROM {table}");
            for (r in rows) {{
                if ({pred}) {{ print({}); }}
            }}
            return 0;
        }}"#,
        prints.join(", ")
    )
}

/// A servlet that prints everything from a table.
fn print_all(table: &str, cols: &[&str]) -> String {
    let prints: Vec<String> = cols.iter().map(|c| format!("r.{c}")).collect();
    format!(
        r#"fn servlet(p) {{
            rows = executeQuery("SELECT * FROM {table}");
            for (r in rows) {{ print({}); }}
            return 0;
        }}"#,
        prints.join(", ")
    )
}

/// A servlet printing an aggregate.
fn print_agg(table: &str, init: &str, update: &str) -> String {
    format!(
        r#"fn servlet(p) {{
            rows = executeQuery("SELECT * FROM {table}");
            acc = {init};
            for (r in rows) {{ {update} }}
            print(acc);
            return 0;
        }}"#
    )
}

/// A nested-loop join servlet (outer row → inner query → print).
fn print_join(
    outer: &str,
    inner: &str,
    inner_col: &str,
    outer_col: &str,
    print_expr: &str,
) -> String {
    format!(
        r#"fn servlet(p) {{
            os = executeQuery("SELECT * FROM {outer}");
            for (o in os) {{
                is = executeQuery("SELECT * FROM {inner} WHERE {inner_col} = ?", o.{outer_col});
                for (i in is) {{ print({print_expr}); }}
            }}
            return 0;
        }}"#
    )
}

/// The 17 RuBiS servlets — all extractable (paper: 17/17).
pub fn rubis() -> Vec<Servlet> {
    vec![
        servlet(
            "rubis",
            "BrowseCategories",
            print_all("categories", &["name"]),
            true,
            None,
        ),
        servlet(
            "rubis",
            "BrowseRegions",
            print_all("regions", &["name"]),
            true,
            None,
        ),
        servlet(
            "rubis",
            "SearchItemsByCategory",
            print_filter("items", &["name", "price"], "r.category == p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "SearchItemsByPrice",
            print_filter("items", &["name"], "r.price <= p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "ViewItem",
            print_filter("items", &["name", "price", "seller"], "r.id == p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "ViewUserInfo",
            print_filter("users", &["nickname", "rating"], "r.id == p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "ViewBidHistory",
            print_filter("bids", &["user_id", "bid"], "r.item_id == p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "PutBidAuth",
            print_filter("users", &["nickname"], "r.id == p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "PutCommentAuth",
            print_filter("comments", &["from_user", "rating"], "r.to_user == p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "StoreBuyNowMax",
            print_agg("bids", "0", "if (r.bid > acc) { acc = r.bid; }"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "AboutMeBidCount",
            print_agg("bids", "0", "if (r.user_id == p) { acc = acc + 1; }"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "AboutMeComments",
            print_filter("comments", &["rating"], "r.to_user == p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "SellerItems",
            print_filter("items", &["name", "price"], "r.seller == p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "ItemsWithBids",
            print_join("items", "bids", "item_id", "id", "pair(o.name, i.bid)"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "UsersInRegion",
            print_join(
                "regions",
                "users",
                "region",
                "id",
                "pair(o.name, i.nickname)",
            ),
            true,
            None,
        ),
        servlet(
            "rubis",
            "HighRatedUsers",
            print_filter("users", &["nickname"], "r.rating >= p"),
            true,
            None,
        ),
        servlet(
            "rubis",
            "CheapItemsInCategory",
            print_filter("items", &["name"], "r.category == p && r.price <= 100"),
            true,
            None,
        ),
    ]
}

/// A RuBiS database with `n` items.
pub fn rubis_database(n: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let cat = rubis_catalog();
    let mut db = Database::new();
    for schema in cat.tables() {
        db.create_table(schema.clone());
    }
    for i in 0..5 {
        db.insert(
            "categories",
            vec![Value::Int(i), Value::Str(format!("cat-{i}"))],
        );
        db.insert(
            "regions",
            vec![Value::Int(i), Value::Str(format!("region-{i}"))],
        );
    }
    let n_users = (n / 2).max(2);
    for i in 0..n_users {
        db.insert(
            "users",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("user{i}")),
                Value::Int(rng.gen_range(0..10)),
                Value::Int(rng.gen_range(0..5)),
            ],
        );
    }
    for i in 0..n {
        db.insert(
            "items",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("item{i}")),
                Value::Int(rng.gen_range(0..n_users as i64)),
                Value::Int(rng.gen_range(0..5)),
                Value::Int(rng.gen_range(1..500)),
            ],
        );
        db.insert(
            "bids",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n.max(1) as i64)),
                Value::Int(rng.gen_range(0..n_users as i64)),
                Value::Int(rng.gen_range(1..1000)),
            ],
        );
        db.insert(
            "comments",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_users as i64)),
                Value::Int(rng.gen_range(0..n_users as i64)),
                Value::Int(rng.gen_range(0..6)),
            ],
        );
    }
    db
}

// --- RuBBoS ---------------------------------------------------------------

/// RuBBoS schema (bulletin board modeled after slashdot.org).
pub fn rubbos_catalog() -> Catalog {
    Catalog::new()
        .with(
            TableSchema::new(
                "stories",
                &[
                    ("id", SqlType::Int),
                    ("title", SqlType::Text),
                    ("author", SqlType::Int),
                    ("category", SqlType::Int),
                    ("rating", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "story_comments",
                &[
                    ("id", SqlType::Int),
                    ("story_id", SqlType::Int),
                    ("writer", SqlType::Int),
                    ("score", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "authors",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("karma", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new("topics", &[("id", SqlType::Int), ("name", SqlType::Text)])
                .with_key(&["id"]),
        )
}

/// The 16 RuBBoS servlets — all extractable (paper: 16/16).
pub fn rubbos() -> Vec<Servlet> {
    vec![
        servlet(
            "rubbos",
            "BrowseTopics",
            print_all("topics", &["name"]),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "StoriesOfTheDay",
            print_filter("stories", &["title"], "r.rating >= 4"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "BrowseStoriesByCategory",
            print_filter("stories", &["title", "rating"], "r.category == p"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "ViewStory",
            print_filter("stories", &["title", "author"], "r.id == p"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "ViewStoryComments",
            print_filter("story_comments", &["writer", "score"], "r.story_id == p"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "AuthorPage",
            print_filter("authors", &["name", "karma"], "r.id == p"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "AuthorStories",
            print_filter("stories", &["title"], "r.author == p"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "HighKarmaAuthors",
            print_filter("authors", &["name"], "r.karma > p"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "CommentCount",
            print_agg(
                "story_comments",
                "0",
                "if (r.story_id == p) { acc = acc + 1; }",
            ),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "TopScore",
            print_agg(
                "story_comments",
                "0",
                "if (r.score > acc) { acc = r.score; }",
            ),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "ModeratedComments",
            print_filter("story_comments", &["writer"], "r.score < 0"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "StoriesWithComments",
            print_join(
                "stories",
                "story_comments",
                "story_id",
                "id",
                "pair(o.title, i.score)",
            ),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "TopicStories",
            print_join(
                "topics",
                "stories",
                "category",
                "id",
                "pair(o.name, i.title)",
            ),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "KarmaSum",
            print_agg("authors", "0", "acc = acc + r.karma;"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "RecentStories",
            print_filter("stories", &["title"], "r.id >= p"),
            true,
            None,
        ),
        servlet(
            "rubbos",
            "ActiveAuthors",
            print_filter("authors", &["name"], "r.karma != 0"),
            true,
            None,
        ),
    ]
}

/// A RuBBoS database with `n` stories.
pub fn rubbos_database(n: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let cat = rubbos_catalog();
    let mut db = Database::new();
    for schema in cat.tables() {
        db.create_table(schema.clone());
    }
    for i in 0..5 {
        db.insert(
            "topics",
            vec![Value::Int(i), Value::Str(format!("topic-{i}"))],
        );
    }
    let n_authors = (n / 3).max(2);
    for i in 0..n_authors {
        db.insert(
            "authors",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("author{i}")),
                Value::Int(rng.gen_range(-5..50)),
            ],
        );
    }
    for i in 0..n {
        db.insert(
            "stories",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("story{i}")),
                Value::Int(rng.gen_range(0..n_authors as i64)),
                Value::Int(rng.gen_range(0..5)),
                Value::Int(rng.gen_range(0..6)),
            ],
        );
        for _ in 0..rng.gen_range(0..3) {
            let cid = db.table("story_comments").unwrap().len() as i64;
            db.insert(
                "story_comments",
                vec![
                    Value::Int(cid),
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..n_authors as i64)),
                    Value::Int(rng.gen_range(-2..6)),
                ],
            );
        }
    }
    db
}

// --- AcadPortal -----------------------------------------------------------

/// AcadPortal schema (an academic administration portal).
pub fn acadportal_catalog() -> Catalog {
    Catalog::new()
        .with(
            TableSchema::new(
                "students",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("dept", SqlType::Text),
                    ("cpi", SqlType::Int),
                    ("year", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "courses",
                &[
                    ("id", SqlType::Int),
                    ("title", SqlType::Text),
                    ("dept", SqlType::Text),
                    ("credits", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "enrollments",
                &[
                    ("id", SqlType::Int),
                    ("student_id", SqlType::Int),
                    ("course_id", SqlType::Int),
                    ("grade", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "faculty",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("dept", SqlType::Text),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "grades_audit",
                &[
                    ("id", SqlType::Int),
                    ("enrollment_id", SqlType::Int),
                    ("note", SqlType::Text),
                ],
            )
            .with_key(&["id"]),
        )
}

/// The 79 AcadPortal servlets: 58 extractable, 21 beyond the current
/// implementation (paper: 58/79, "mainly due to limitations in our
/// implementation such as the presence of operations which are not yet
/// supported").
pub fn acadportal() -> Vec<Servlet> {
    let mut out = Vec::new();
    let tables: [(&str, &[&str], &str, &str); 4] = [
        ("students", &["name", "cpi"], "r.dept == \"cse\"", "r.cpi"),
        (
            "courses",
            &["title", "credits"],
            "r.credits >= 6",
            "r.credits",
        ),
        (
            "enrollments",
            &["student_id", "grade"],
            "r.grade >= 8",
            "r.grade",
        ),
        ("faculty", &["name"], "r.dept == \"ee\"", "r.id"),
    ];

    // 58 extractable servlets from six template families.
    let mut n = 0usize;
    for (t, cols, pred, num) in tables {
        for k in 0..6 {
            let name = format!("{t}_list_{k}");
            // Vary predicates slightly per instance.
            let p = match k % 3 {
                0 => pred.to_string(),
                1 => format!("r.id >= {}", k * 3),
                _ => "r.id == p".to_string(),
            };
            out.push(servlet(
                "acadportal",
                &name,
                print_filter(t, cols, &p),
                true,
                {
                    // ~20% of the 58 extractable servlets carry an over-fetching
                    // manual query (SELECT * instead of the printed projection).
                    if n.is_multiple_of(4) {
                        Some(format!("SELECT * FROM {t}"))
                    } else {
                        None
                    }
                },
            ));
            n += 1;
        }
        for k in 0..4 {
            let name = format!("{t}_agg_{k}");
            let update = match k % 2 {
                0 => "acc = acc + 1;".to_string(),
                _ => format!("if ({num} > acc) {{ acc = {num}; }}"),
            };
            out.push(servlet(
                "acadportal",
                &name,
                print_agg(t, "0", &update),
                true,
                None,
            ));
            n += 1;
        }
        for k in 0..4 {
            let name = format!("{t}_all_{k}");
            out.push(servlet("acadportal", &name, print_all(t, cols), true, {
                if n.is_multiple_of(3) {
                    Some(format!("SELECT * FROM {t}"))
                } else {
                    None
                }
            }));
            n += 1;
        }
    }
    // Two join servlets to reach 58.
    out.push(servlet(
        "acadportal",
        "student_transcript",
        print_join(
            "students",
            "enrollments",
            "student_id",
            "id",
            "pair(o.name, i.grade)",
        ),
        true,
        None,
    ));
    out.push(servlet(
        "acadportal",
        "course_roster",
        print_join(
            "courses",
            "enrollments",
            "course_id",
            "id",
            "pair(o.title, i.student_id)",
        ),
        true,
        None,
    ));
    assert_eq!(out.len(), 58);

    // 21 servlets beyond the current implementation.
    let failing: [(&str, String); 7] = [
        (
            "while_paging",
            r#"fn servlet(p) {
                i = 0;
                while (i < p) {
                    s = executeScalar("SELECT name FROM students WHERE id = ?", i);
                    print(s);
                    i = i + 1;
                }
                return 0;
            }"#
            .to_string(),
        ),
        (
            "early_exit",
            r#"fn servlet(p) {
                rows = executeQuery("SELECT * FROM students");
                for (r in rows) {
                    print(r.name);
                    if (r.id > p) break;
                }
                return 0;
            }"#
            .to_string(),
        ),
        (
            "custom_format",
            r#"fn servlet(p) {
                rows = executeQuery("SELECT * FROM students");
                for (r in rows) { print(formatFancy(r.name)); }
                return 0;
            }"#
            .to_string(),
        ),
        (
            "dynamic_table",
            r#"fn servlet(p) {
                rows = executeQuery("SELECT * FROM " + p);
                for (r in rows) { print(r.id); }
                return 0;
            }"#
            .to_string(),
        ),
        (
            "running_delta",
            r#"fn servlet(p) {
                rows = executeQuery("SELECT * FROM enrollments");
                prev = 0;
                delta = 0;
                for (r in rows) {
                    delta = delta + (r.grade - prev);
                    prev = r.grade;
                }
                print(delta);
                return 0;
            }"#
            .to_string(),
        ),
        (
            "argmax_report",
            r#"fn servlet(p) {
                rows = executeQuery("SELECT * FROM students");
                best = 0;
                bestName = "";
                for (r in rows) {
                    if (r.cpi > best) { best = r.cpi; bestName = r.name; }
                }
                print(bestName, best);
                return 0;
            }"#
            .to_string(),
        ),
        (
            "audit_side_effect",
            r#"fn servlet(p) {
                rows = executeQuery("SELECT * FROM enrollments");
                for (r in rows) {
                    executeUpdate("INSERT INTO grades_audit VALUES (?, ?, 'viewed')", r.id, r.id);
                    print(r.grade);
                }
                return 0;
            }"#
            .to_string(),
        ),
    ];
    for round in 0..3 {
        for (base, src) in &failing {
            out.push(servlet(
                "acadportal",
                &format!("{base}_{round}"),
                src.clone(),
                false,
                None,
            ));
        }
    }
    assert_eq!(out.len(), 79);
    out
}

/// An AcadPortal database with `n` students.
pub fn acadportal_database(n: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let cat = acadportal_catalog();
    let mut db = Database::new();
    for schema in cat.tables() {
        db.create_table(schema.clone());
    }
    let depts = ["cse", "ee", "me", "ch"];
    for i in 0..n {
        db.insert(
            "students",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("student{i}")),
                Value::Str(depts[rng.gen_range(0..depts.len())].into()),
                Value::Int(rng.gen_range(4..11)),
                Value::Int(rng.gen_range(1..5)),
            ],
        );
    }
    for i in 0..(n / 4).max(3) {
        db.insert(
            "courses",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("course{i}")),
                Value::Str(depts[rng.gen_range(0..depts.len())].into()),
                Value::Int(rng.gen_range(3..9)),
            ],
        );
    }
    for i in 0..(n * 2) {
        db.insert(
            "enrollments",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n.max(1) as i64)),
                Value::Int(rng.gen_range(0..((n / 4).max(3)) as i64)),
                Value::Int(rng.gen_range(4..11)),
            ],
        );
    }
    for i in 0..(n / 10).max(2) {
        db.insert(
            "faculty",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("prof{i}")),
                Value::Str(depts[rng.gen_range(0..depts.len())].into()),
            ],
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_match_the_paper() {
        assert_eq!(rubis().len(), 17);
        assert_eq!(rubbos().len(), 16);
        assert_eq!(acadportal().len(), 79);
        let acad_ok = acadportal().iter().filter(|s| s.expect_extract).count();
        assert_eq!(acad_ok, 58);
    }

    #[test]
    fn all_servlets_parse() {
        for s in rubis().iter().chain(&rubbos()).chain(&acadportal()) {
            imp::parse_and_normalize(&s.source)
                .unwrap_or_else(|e| panic!("{}:{} does not parse: {e}", s.app, s.name));
        }
    }

    #[test]
    fn manual_queries_exist_for_a_fifth_of_acadportal() {
        let manual = acadportal()
            .iter()
            .filter(|s| s.manual_sql.is_some())
            .count();
        // ~20% of the 58 extractable servlets carry a manual query model.
        assert!((8..=14).contains(&manual), "{manual}");
    }

    #[test]
    fn databases_generate() {
        assert!(rubis_database(40, 1).table("items").unwrap().len() == 40);
        assert!(rubbos_database(30, 1).table("stories").unwrap().len() == 30);
        assert!(acadportal_database(25, 1).table("students").unwrap().len() == 25);
    }
}
