//! The Matoso ranking-page fragment (paper Figure 2, Experiment 7).

use algebra::schema::Catalog;
use dbms::Database;

/// The `imp` re-creation of Figure 2 (with the `Math.max` chains and the
/// compare-and-assign maximum, exactly as printed).
pub const FIND_MAX_SCORE: &str = r#"
    fn findMaxScore(round) {
        boards = executeQuery("SELECT * FROM board WHERE rnd_id = ?", round);
        scoreMax = 0;
        for (t in boards) {
            p1 = t.p1;
            p2 = t.p2;
            p3 = t.p3;
            p4 = t.p4;
            score = max(p1, p2);
            score = max(score, p3);
            score = max(score, p4);
            if (score > scoreMax)
                scoreMax = score;
        }
        return scoreMax;
    }
"#;

/// Schema catalog for the Matoso `board` table.
pub fn catalog() -> Catalog {
    dbms::gen::gen_board(0, 1, 0).catalog()
}

/// A board database with `n` boards over 4 rounds.
pub fn database(n: usize, seed: u64) -> Database {
    dbms::gen::gen_board(n, 4, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_catalog_matches() {
        let p = imp::parse_and_normalize(FIND_MAX_SCORE).unwrap();
        assert!(p.function("findMaxScore").is_some());
        assert!(catalog().get("board").is_some());
        assert_eq!(database(10, 1).table("board").unwrap().len(), 10);
    }
}
