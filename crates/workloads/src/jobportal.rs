//! The JobPortal star-schema fragment (paper Figure 12, Experiment 8).

use algebra::schema::Catalog;
use dbms::Database;

/// Figure 12 in `imp`: a loop over job applicants issuing per-applicant
/// scalar lookups, the last one guarded by the application mode.
pub const APPLICANT_REPORT: &str = r#"
    fn applicantReport() {
        apps = executeQuery("SELECT * FROM applicants");
        out = list();
        for (a in apps) {
            addr = executeScalar("SELECT address FROM personal_details WHERE applicant_id = ?", a.applicant_id);
            s1 = executeScalar("SELECT score FROM committee1_feedback WHERE applicant_id = ?", a.applicant_id);
            s2 = executeScalar("SELECT score FROM committee2_feedback WHERE applicant_id = ?", a.applicant_id);
            q = a.appln_mode == "online"
                ? executeScalar("SELECT degree FROM edu_qualifs WHERE applicant_id = ?", a.applicant_id)
                : "n/a";
            out.add(pair(a.name, concat(addr, "|", s1, "/", s2, "|", q)));
        }
        return out;
    }
"#;

/// The star-schema workload description used by the baseline strategies.
pub fn star_workload() -> baselines_compat::StarSpec {
    baselines_compat::StarSpec {
        outer_sql: "SELECT * FROM applicants".to_string(),
        inners: vec![
            (
                "SELECT address FROM personal_details WHERE applicant_id = ?",
                None,
            ),
            (
                "SELECT score FROM committee1_feedback WHERE applicant_id = ?",
                None,
            ),
            (
                "SELECT score FROM committee2_feedback WHERE applicant_id = ?",
                None,
            ),
            (
                "SELECT degree FROM edu_qualifs WHERE applicant_id = ?",
                Some(("appln_mode", "online")),
            ),
        ],
    }
}

/// Lightweight description decoupled from the `baselines` crate (the bench
/// harness converts it; keeping `workloads` independent of `baselines`
/// avoids a dependency cycle).
pub mod baselines_compat {
    /// A star workload: outer SQL plus `(inner SQL, optional guard)` pairs;
    /// the guard is `(outer column, required text value)`.
    #[derive(Debug, Clone)]
    pub struct StarSpec {
        /// The outer query SQL.
        pub outer_sql: String,
        /// The per-row lookups.
        pub inners: Vec<(&'static str, Option<(&'static str, &'static str)>)>,
    }
}

/// Catalog for the JobPortal schema.
pub fn catalog() -> Catalog {
    dbms::gen::gen_jobportal(0, 0).catalog()
}

/// A JobPortal database with `n` applicants.
pub fn database(n: usize, seed: u64) -> Database {
    dbms::gen::gen_jobportal(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::parse::parse_sql;

    #[test]
    fn program_parses_and_queries_are_valid() {
        let p = imp::parse_and_normalize(APPLICANT_REPORT).unwrap();
        assert!(p.function("applicantReport").is_some());
        let spec = star_workload();
        parse_sql(&spec.outer_sql).unwrap();
        for (sql, _) in &spec.inners {
            parse_sql(sql).unwrap();
        }
        assert_eq!(spec.inners.len(), 4, "Q2..Q5 of Fig. 12");
    }
}
