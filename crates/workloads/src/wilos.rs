//! The 33 Wilos code fragments of Table 1.
//!
//! Wilos is an open-source process-orchestration application; the paper
//! evaluates both QBS and EqSQL on 33 fragments from it. We do not have the
//! original Java, but Table 1 plus the paper's discussion identifies each
//! fragment's *pattern* (selection, projection, join, aggregation,
//! existence check, update-in-loop, polymorphic type comparison, custom
//! comparator, …). Each sample below re-creates one fragment's pattern in
//! `imp` under the function name `sample`, together with:
//!
//! * the paper-reported QBS extraction time (`None` = QBS failed, "–");
//! * the paper-reported EqSQL outcome ([`Expectation`]).
//!
//! The per-sample expectations are asserted by this crate's tests against
//! the real extractor, so Table 1's EqSQL column is reproduced behaviourally
//! rather than copied.

use algebra::schema::{Catalog, SqlType, TableSchema};
use dbms::prng::StdRng;
use dbms::{Database, Value};

use crate::Expectation;

/// One Table 1 sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Row number in Table 1 (1-based).
    pub id: usize,
    /// The paper's "File (Line No.)" label.
    pub label: &'static str,
    /// The pattern category (used in reports).
    pub category: &'static str,
    /// `imp` source; the fragment is the function `sample`.
    pub source: &'static str,
    /// Number of arguments `sample` takes (bound to small integers in
    /// experiments).
    pub n_args: usize,
    /// QBS extraction time reported in the paper (seconds); `None` = "–".
    pub paper_qbs_seconds: Option<f64>,
    /// Expected EqSQL outcome (Table 1's last column).
    pub expect: Expectation,
}

/// The Wilos schema used by the samples.
pub fn catalog() -> Catalog {
    Catalog::new()
        .with(
            TableSchema::new(
                "activity",
                &[
                    ("id", SqlType::Int),
                    ("process_id", SqlType::Int),
                    ("state", SqlType::Text),
                    ("effort", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "guidance",
                &[
                    ("id", SqlType::Int),
                    ("activity_id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("gtype", SqlType::Text),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "project",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("isfinished", SqlType::Bool),
                    ("budget", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "affectedto",
                &[
                    ("id", SqlType::Int),
                    ("user_id", SqlType::Int),
                    ("activity_id", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "concrete_activity",
                &[
                    ("id", SqlType::Int),
                    ("activity_id", SqlType::Int),
                    ("state", SqlType::Text),
                    ("iteration_id", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "role_descriptor",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("process_id", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "workproduct",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("state", SqlType::Text),
                    ("owner_id", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "iteration",
                &[
                    ("id", SqlType::Int),
                    ("project_id", SqlType::Int),
                    ("state", SqlType::Text),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "login",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("pass", SqlType::Text),
                    ("role_id", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "participant",
                &[
                    ("id", SqlType::Int),
                    ("user_id", SqlType::Int),
                    ("project_id", SqlType::Int),
                    ("role", SqlType::Text),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "phase",
                &[
                    ("id", SqlType::Int),
                    ("project_id", SqlType::Int),
                    ("state", SqlType::Text),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "process",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("state", SqlType::Text),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new(
                "wilos_user",
                &[
                    ("id", SqlType::Int),
                    ("name", SqlType::Text),
                    ("role_id", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        )
        .with(
            TableSchema::new("role", &[("id", SqlType::Int), ("name", SqlType::Text)])
                .with_key(&["id"]),
        )
}

/// A deterministic Wilos database sized for functional runs.
pub fn database(rows_per_table: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let cat = catalog();
    let mut db = Database::new();
    let states = ["created", "started", "finished", "suspended", "ready"];
    let gtypes = ["checklist", "concept", "example", "guideline"];
    for schema in cat.tables() {
        db.create_table(schema.clone());
        for i in 0..rows_per_table {
            let mut row = Vec::new();
            for col in &schema.columns {
                let v = match (schema.name.as_str(), col.name.as_str()) {
                    (_, "id") => Value::Int(i as i64),
                    (_, "state") => Value::Str(states[rng.gen_range(0..states.len())].into()),
                    (_, "gtype") => Value::Str(gtypes[rng.gen_range(0..gtypes.len())].into()),
                    (_, "isfinished") => Value::Bool(rng.gen_range(0..100i64) < 20),
                    (_, "name") => Value::Str(format!("{}-{i}", schema.name)),
                    (_, "pass") => Value::Str(format!("pw{i}")),
                    (_, "role") => Value::Str(
                        ["dev", "manager", "tester"][rng.gen_range(0..3usize)].to_string(),
                    ),
                    (_, "budget") | (_, "effort") => Value::Int(rng.gen_range(0..1000)),
                    _ => Value::Int(rng.gen_range(0..(rows_per_table.max(2)) as i64)),
                };
                row.push(v);
            }
            db.insert(&schema.name, row);
        }
    }
    db
}

/// All 33 samples, in Table 1 order.
pub fn samples() -> Vec<Sample> {
    vec![
        Sample {
            id: 1,
            label: "ActivityService (401)",
            category: "selection with update kept",
            source: r#"
                fn sample() {
                    acts = executeQuery("SELECT * FROM activity");
                    out = list();
                    for (a in acts) {
                        if (a.state == "ready") { out.add(a.id); }
                        if (a.effort < 0) {
                            executeUpdate("DELETE FROM guidance WHERE id = -1");
                        }
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: None,
            expect: Expectation::Extracts,
        },
        Sample {
            id: 2,
            label: "ActivityService (328)",
            category: "count with update kept",
            source: r#"
                fn sample() {
                    acts = executeQuery("SELECT * FROM activity WHERE state = 'started'");
                    n = 0;
                    for (a in acts) {
                        n = n + 1;
                        if (a.effort > 900) {
                            executeUpdate("INSERT INTO guidance VALUES (-1, 0, 'hot', 'note')");
                        }
                    }
                    return n;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: None,
            expect: Expectation::Extracts,
        },
        Sample {
            id: 3,
            label: "Guidance Service (140)",
            category: "selection with update kept",
            source: r#"
                fn sample() {
                    gs = executeQuery("SELECT * FROM guidance");
                    out = list();
                    for (g in gs) {
                        if (g.gtype == "checklist") { out.add(g.name); }
                        if (g.activity_id < 0) {
                            executeUpdate("DELETE FROM guidance WHERE id = ?", g.id);
                        }
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: None,
            expect: Expectation::Extracts,
        },
        Sample {
            id: 4,
            label: "Guidance Service (154)",
            category: "existence check with update kept",
            source: r#"
                fn sample(aid) {
                    gs = executeQuery("SELECT * FROM guidance");
                    found = false;
                    for (g in gs) {
                        if (g.activity_id == aid) { found = true; }
                        if (g.name == "") {
                            executeUpdate("DELETE FROM guidance WHERE id = ?", g.id);
                        }
                    }
                    return found;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: None,
            expect: Expectation::Extracts,
        },
        Sample {
            id: 5,
            label: "ProjectService (266)",
            category: "polymorphic type comparison",
            source: r#"
                fn sample() {
                    ps = executeQuery("SELECT * FROM project");
                    out = list();
                    for (p in ps) {
                        if (p.typeOf() == "ConcreteProject") { out.add(p.id); }
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: None,
            expect: Expectation::Fails,
        },
        Sample {
            id: 6,
            label: "ProjectService (297)",
            category: "selection (unfinished projects, Experiment 5)",
            source: r#"
                fn sample() {
                    ps = executeQuery("SELECT * FROM project");
                    out = list();
                    for (p in ps) {
                        if (p.isfinished == false) { out.add(p.id); }
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(19.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 7,
            label: "ProjectService (338)",
            category: "custom comparator",
            source: r#"
                fn sample(threshold) {
                    ps = executeQuery("SELECT * FROM project");
                    out = list();
                    for (p in ps) {
                        if (customCompare(p.name, threshold) > 0) { out.add(p.id); }
                    }
                    return out;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: None,
            expect: Expectation::Fails,
        },
        Sample {
            id: 8,
            label: "ProjectService (394)",
            category: "selection + projection",
            source: r#"
                fn sample(minBudget) {
                    ps = executeQuery("SELECT * FROM project");
                    out = list();
                    for (p in ps) {
                        if (p.budget > minBudget) { out.add(p.name); }
                    }
                    return out;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: Some(21.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 9,
            label: "ProjectService (410)",
            category: "count",
            source: r#"
                fn sample() {
                    ps = executeQuery("SELECT * FROM project WHERE isfinished = false");
                    n = 0;
                    for (p in ps) { n = n + 1; }
                    return n;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(39.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 10,
            label: "ProjectService (248)",
            category: "existence check",
            source: r#"
                fn sample(pid) {
                    ps = executeQuery("SELECT * FROM participant");
                    found = false;
                    for (p in ps) {
                        if (p.project_id == pid) { found = true; }
                    }
                    return found;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: Some(150.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 11,
            label: "AffectedtoDao (13)",
            category: "selection by parameter",
            source: r#"
                fn sample(uid) {
                    xs = executeQuery("SELECT * FROM affectedto");
                    out = list();
                    for (x in xs) {
                        if (x.user_id == uid) { out.add(x.activity_id); }
                    }
                    return out;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: Some(72.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 12,
            label: "ConcreteActivityDao (139)",
            category: "dependent accumulation (Fig. 7 dummyVal)",
            source: r#"
                fn sample() {
                    cs = executeQuery("SELECT * FROM concrete_activity");
                    agg = 0;
                    weighted = 0;
                    for (c in cs) {
                        e = executeScalar("SELECT effort FROM activity WHERE id = ?", c.activity_id);
                        agg = agg + e;
                        weighted = weighted * 2 + agg;
                    }
                    return weighted;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: None,
            expect: Expectation::Fails,
        },
        Sample {
            id: 13,
            label: "ConcreteActivityService (133)",
            category: "loop over non-query collection (temp-table case)",
            source: r#"
                fn sample(states) {
                    out = list();
                    for (s in states) { out.add(s); }
                    return out;
                }
            "#,
            n_args: 0, // driven with a list argument by callers
            paper_qbs_seconds: None,
            expect: Expectation::CouldButNot,
        },
        Sample {
            id: 14,
            label: "ConcreteRoleAffectationService (55)",
            category: "nested join collecting whole inner rows",
            source: r#"
                fn sample() {
                    us = executeQuery("SELECT * FROM wilos_user");
                    out = list();
                    for (u in us) {
                        rds = executeQuery("SELECT * FROM role_descriptor WHERE process_id = ?", u.role_id);
                        for (rd in rds) { out.add(rd); }
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(310.0),
            expect: Expectation::CouldButNot,
        },
        Sample {
            id: 15,
            label: "ConcreteRoleDescriptorService (181)",
            category: "positional element retrieval",
            source: r#"
                fn sample() {
                    rds = executeQuery("SELECT * FROM role_descriptor");
                    out = list();
                    for (rd in rds) {
                        extra = executeQuery("SELECT * FROM guidance WHERE activity_id = ?", rd.id);
                        if (out.size() < 5) { out.add(pair(rd.name, extra.size())); }
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(290.0),
            expect: Expectation::Fails,
        },
        Sample {
            id: 16,
            label: "ConcreteWorkBreakdownElementService (55)",
            category: "while-loop hierarchy traversal",
            source: r#"
                fn sample(n) {
                    total = 0;
                    i = 0;
                    while (i < n) {
                        row = executeScalar("SELECT effort FROM activity WHERE id = ?", i);
                        total = total + row;
                        i = i + 1;
                    }
                    return total;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: None,
            expect: Expectation::Fails,
        },
        Sample {
            id: 17,
            label: "ConcreteWorkProductDescriptorService (236)",
            category: "ordered string aggregation",
            source: r#"
                fn sample() {
                    ws = executeQuery("SELECT * FROM workproduct");
                    s = "";
                    for (w in ws) {
                        s = s + w.name + ";";
                    }
                    return s;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(284.0),
            expect: Expectation::Fails,
        },
        Sample {
            id: 18,
            label: "IterationService (103)",
            category: "selection by parameter",
            source: r#"
                fn sample(pid) {
                    its = executeQuery("SELECT * FROM iteration");
                    out = list();
                    for (it in its) {
                        if (it.project_id == pid) { out.add(it.id); }
                    }
                    return out;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: None,
            expect: Expectation::Extracts,
        },
        Sample {
            id: 19,
            label: "LoginService (103)",
            category: "credential existence check",
            source: r#"
                fn sample(uid) {
                    ls = executeQuery("SELECT * FROM login");
                    ok = false;
                    for (l in ls) {
                        if (l.id == uid) {
                            if (l.pass == "pw1") { ok = true; }
                        }
                    }
                    return ok;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: Some(125.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 20,
            label: "LoginService (83)",
            category: "selection by role",
            source: r#"
                fn sample(rid) {
                    ls = executeQuery("SELECT * FROM login");
                    out = list();
                    for (l in ls) {
                        if (l.role_id == rid) { out.add(l.name); }
                    }
                    return out;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: Some(164.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 21,
            label: "ParticipantBean (1079)",
            category: "pair projection",
            source: r#"
                fn sample() {
                    ps = executeQuery("SELECT * FROM participant");
                    out = list();
                    for (p in ps) { out.add(pair(p.user_id, p.role)); }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(31.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 22,
            label: "ParticipantBean (681)",
            category: "dependent aggregation (argmax)",
            source: r#"
                fn sample() {
                    ps = executeQuery("SELECT * FROM participant");
                    best = 0;
                    bestId = 0;
                    for (p in ps) {
                        if (p.user_id > best) {
                            best = p.user_id;
                            bestId = p.id;
                        }
                    }
                    return bestId;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(121.0),
            expect: Expectation::Fails,
        },
        Sample {
            id: 23,
            label: "ParticipantService (146)",
            category: "navigation through joined object graph",
            source: r#"
                fn sample() {
                    ps = executeQuery("SELECT * FROM participant");
                    out = list();
                    for (p in ps) {
                        out.add(p.project.name);
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(281.0),
            expect: Expectation::CouldButNot,
        },
        Sample {
            id: 24,
            label: "ParticipantService (119)",
            category: "nested-loop join with pair projection",
            source: r#"
                fn sample() {
                    ps = executeQuery("SELECT * FROM participant");
                    out = list();
                    for (p in ps) {
                        projs = executeQuery("SELECT * FROM project WHERE id = ?", p.project_id);
                        for (pr in projs) {
                            out.add(pair(p.user_id, pr.name));
                        }
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(301.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 25,
            label: "ParticipantService (266)",
            category: "early loop exit",
            source: r#"
                fn sample(uid) {
                    ps = executeQuery("SELECT * FROM participant");
                    found = 0;
                    for (p in ps) {
                        if (p.user_id == uid) {
                            found = p.project_id;
                            break;
                        }
                    }
                    return found;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: Some(260.0),
            expect: Expectation::Fails,
        },
        Sample {
            id: 26,
            label: "PhaseService (98)",
            category: "selection with update kept",
            source: r#"
                fn sample(pid) {
                    phs = executeQuery("SELECT * FROM phase");
                    out = list();
                    for (ph in phs) {
                        if (ph.project_id == pid) { out.add(ph.id); }
                        if (ph.state == "orphan") {
                            executeUpdate("DELETE FROM phase WHERE id = ?", ph.id);
                        }
                    }
                    return out;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: None,
            expect: Expectation::Extracts,
        },
        Sample {
            id: 27,
            label: "ProcessBean (248)",
            category: "group-by via nested aggregation loops",
            source: r#"
                fn sample() {
                    procs = executeQuery("SELECT * FROM process");
                    out = list();
                    for (pr in procs) {
                        n = 0;
                        acts = executeQuery("SELECT * FROM activity WHERE process_id = ?", pr.id);
                        for (a in acts) { n = n + 1; }
                        out.add(pair(pr.name, n));
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(82.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 28,
            label: "ProcessManagerBean (243)",
            category: "count by parameter",
            source: r#"
                fn sample(pid) {
                    acts = executeQuery("SELECT * FROM activity");
                    n = 0;
                    for (a in acts) {
                        if (a.process_id == pid) { n = n + 1; }
                    }
                    return n;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: Some(50.0),
            expect: Expectation::Extracts,
        },
        Sample {
            id: 29,
            label: "RoleDao (15)",
            category: "dynamically constructed SQL",
            source: r#"
                fn sample(tbl) {
                    rows = executeQuery("SELECT * FROM " + tbl);
                    out = list();
                    for (r in rows) { out.add(r.id); }
                    return out;
                }
            "#,
            n_args: 1,
            paper_qbs_seconds: None,
            expect: Expectation::Fails,
        },
        Sample {
            id: 30,
            label: "RoleService (15)",
            category: "bulk collection copy (addAll)",
            source: r#"
                fn sample() {
                    rs = executeQuery("SELECT * FROM role");
                    out = list();
                    for (r in rs) {
                        more = executeQuery("SELECT * FROM wilos_user WHERE role_id = ?", r.id);
                        out.addAll(more);
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(150.0),
            expect: Expectation::CouldButNot,
        },
        Sample {
            id: 31,
            label: "WilosUserBean (717)",
            category: "navigation through joined object graph",
            source: r#"
                fn sample() {
                    us = executeQuery("SELECT * FROM wilos_user");
                    out = list();
                    for (u in us) {
                        out.add(u.role.name);
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(23.0),
            expect: Expectation::CouldButNot,
        },
        Sample {
            id: 32,
            label: "WorkProductsExpTableBean (990)",
            category: "unmodeled string library function",
            source: r#"
                fn sample() {
                    ws = executeQuery("SELECT * FROM workproduct");
                    out = list();
                    for (w in ws) {
                        out.add(substring(w.name, 0, 3));
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(52.0),
            expect: Expectation::CouldButNot,
        },
        Sample {
            id: 33,
            label: "WorkProductsExpTableBean (974)",
            category: "unmodeled string library function",
            source: r#"
                fn sample() {
                    ws = executeQuery("SELECT * FROM workproduct");
                    out = list();
                    for (w in ws) {
                        out.add(trim(w.name));
                    }
                    return out;
                }
            "#,
            n_args: 0,
            paper_qbs_seconds: Some(50.0),
            expect: Expectation::CouldButNot,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_three_samples_with_table1_totals() {
        let all = samples();
        assert_eq!(all.len(), 33);
        let qbs_ok = all.iter().filter(|s| s.paper_qbs_seconds.is_some()).count();
        assert_eq!(qbs_ok, 21, "paper: QBS succeeds on 21/33");
        let extracts = all
            .iter()
            .filter(|s| s.expect == Expectation::Extracts)
            .count();
        assert_eq!(extracts, 17, "paper: EqSQL extracts 17/33");
        let could = all
            .iter()
            .filter(|s| s.expect == Expectation::CouldButNot)
            .count();
        assert_eq!(could, 7, "paper: 7 further cases within technique scope");
    }

    #[test]
    fn all_samples_parse() {
        for s in samples() {
            imp::parse_and_normalize(s.source)
                .unwrap_or_else(|e| panic!("sample {} does not parse: {e}", s.id));
        }
    }

    #[test]
    fn ids_are_sequential() {
        for (i, s) in samples().iter().enumerate() {
            assert_eq!(s.id, i + 1);
        }
    }

    #[test]
    fn database_is_deterministic_and_covers_catalog() {
        let a = database(50, 1);
        let b = database(50, 1);
        assert_eq!(a, b);
        for t in catalog().tables() {
            assert_eq!(a.table(&t.name).map(|x| x.len()), Some(50), "{}", t.name);
        }
    }
}
