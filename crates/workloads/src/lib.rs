//! `workloads` — the application corpus of the paper's evaluation (Sec. 7).
//!
//! * [`wilos`] — the 33 code fragments of Table 1, re-created in `imp` from
//!   their described patterns, with the paper's reported QBS times and
//!   per-sample expectations;
//! * [`matoso`] — the Figure 2 ranking-page fragment (Experiment 7);
//! * [`jobportal`] — the Figure 12 star-schema fragment (Experiment 8);
//! * [`servlets`] — the keyword-search corpora: RuBiS (17), RuBBoS (16) and
//!   AcadPortal (79) servlet-style programs (Experiment 3).
//!
//! Every module ships its schema catalog and a deterministic data
//! generator, so experiments are reproducible end to end.

pub mod jobportal;
pub mod matoso;
pub mod servlets;
pub mod wilos;

/// What the EqSQL implementation is expected to do with a sample
/// (mirroring Table 1's three outcomes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Equivalent SQL is extracted (a time appears in the EqSQL column).
    Extracts,
    /// The paper's techniques cover the pattern but the implementation does
    /// not (the ✗ entries of Table 1).
    CouldButNot,
    /// Outside the techniques' scope (the "–" entries).
    Fails,
}
