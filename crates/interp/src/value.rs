//! Runtime values of the `imp` interpreter.

use std::fmt;
use std::rc::Rc;

use dbms::table::Field;
use dbms::Value;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum RtValue {
    /// A database scalar (int/float/bool/string/null).
    Scalar(Value),
    /// An ordered list.
    List(Vec<RtValue>),
    /// An ordered set (insertion order, unique elements).
    Set(Vec<RtValue>),
    /// A row from a query result.
    Row {
        /// Column metadata, shared across rows of one result.
        fields: Rc<Vec<Field>>,
        /// The row's values.
        values: Vec<Value>,
    },
    /// A pair (used by dependent aggregations, Appendix B).
    Pair(Box<RtValue>, Box<RtValue>),
    /// No value (result of statements / void calls).
    Unit,
}

impl RtValue {
    /// Shorthand for an integer scalar.
    pub fn int(v: i64) -> RtValue {
        RtValue::Scalar(Value::Int(v))
    }

    /// Shorthand for a string scalar.
    pub fn str(v: impl Into<String>) -> RtValue {
        RtValue::Scalar(Value::Str(v.into()))
    }

    /// Shorthand for a bool scalar.
    pub fn bool(v: bool) -> RtValue {
        RtValue::Scalar(Value::Bool(v))
    }

    /// Null scalar.
    pub fn null() -> RtValue {
        RtValue::Scalar(Value::Null)
    }

    /// View as a scalar, when it is one.
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            RtValue::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// Truthiness for `if`/`while` conditions: only `true` is true.
    pub fn is_true(&self) -> bool {
        matches!(self, RtValue::Scalar(Value::Bool(true)))
    }

    /// Iterable view (lists and sets).
    pub fn as_elements(&self) -> Option<&[RtValue]> {
        match self {
            RtValue::List(v) | RtValue::Set(v) => Some(v),
            _ => None,
        }
    }

    /// Field access on rows; pairs expose `first`/`second`.
    pub fn field(&self, name: &str) -> Option<RtValue> {
        match self {
            RtValue::Row { fields, values } => {
                let rel = dbms::Relation {
                    fields: (**fields).clone(),
                    rows: vec![],
                };
                rel.resolve(None, name)
                    .ok()
                    .map(|i| RtValue::Scalar(values[i].clone()))
            }
            RtValue::Pair(a, b) => match name {
                "first" => Some((**a).clone()),
                "second" => Some((**b).clone()),
                _ => None,
            },
            _ => None,
        }
    }

    /// A normalized display used by `print` and output comparison. A
    /// single-column row renders as its bare value: extraction may turn a
    /// printed scalar into a one-column query result, and the two must
    /// produce identical output.
    pub fn render(&self) -> String {
        match self {
            RtValue::Row { values, .. } if values.len() == 1 => values[0].to_string(),
            // Multi-column rows print positionally, like the pairs/tuples
            // they replace.
            RtValue::Row { values, .. } => {
                let parts: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                format!("({})", parts.join(", "))
            }
            _ => self.to_string(),
        }
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::Scalar(v) => write!(f, "{v}"),
            RtValue::List(items) => {
                write!(f, "[")?;
                for (i, x) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            RtValue::Set(items) => {
                write!(f, "{{")?;
                for (i, x) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
            RtValue::Row { values, .. } if values.len() == 1 => {
                // A single-column row displays as its bare value, like the
                // scalar it replaces.
                write!(f, "{}", values[0])
            }
            RtValue::Row { values, .. } => {
                // Positional, like the tuples/pairs extraction replaces —
                // so printed output and rendered results compare cleanly.
                write!(f, "(")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            RtValue::Pair(a, b) => write!(f, "({a}, {b})"),
            RtValue::Unit => write!(f, "()"),
        }
    }
}

/// Structural equality modulo representation changes that SQL extraction
/// introduces (paper Sec. 5.2 rewrites downstream attribute references, so
/// observationally these coincide):
///
/// * a `Set` compares order-insensitively with another `Set`;
/// * a `Set` compares elementwise with the `List` produced by a `DISTINCT`
///   query (our sets iterate in insertion order = first occurrence);
/// * a scalar compares with a single-column `Row`;
/// * a `Pair` compares with a two-column `Row`.
pub fn loose_eq(a: &RtValue, b: &RtValue) -> bool {
    match (a, b) {
        (RtValue::Set(x), RtValue::Set(y)) => {
            x.len() == y.len() && x.iter().all(|e| y.iter().any(|f| loose_eq(e, f)))
        }
        (RtValue::List(x), RtValue::List(y))
        | (RtValue::Set(x), RtValue::List(y))
        | (RtValue::List(x), RtValue::Set(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(e, f)| loose_eq(e, f))
        }
        (RtValue::Scalar(a), RtValue::Row { values, .. })
        | (RtValue::Row { values, .. }, RtValue::Scalar(a))
            if values.len() == 1 =>
        {
            a.group_eq(&values[0])
        }
        (RtValue::Pair(a1, a2), RtValue::Pair(b1, b2)) => loose_eq(a1, b1) && loose_eq(a2, b2),
        // A pair compares with a two-column row: extraction rewrites
        // `pair(k, v)` collections into two-column query results aliased
        // first/second.
        (RtValue::Pair(a1, a2), RtValue::Row { values, .. })
        | (RtValue::Row { values, .. }, RtValue::Pair(a1, a2))
            if values.len() == 2 =>
        {
            loose_eq(a1, &RtValue::Scalar(values[0].clone()))
                && loose_eq(a2, &RtValue::Scalar(values[1].clone()))
        }
        (RtValue::Row { values: x, .. }, RtValue::Row { values: y, .. }) => {
            // Rows compare by values; field *names* may differ between an
            // original query and an extracted rewrite (aliases).
            x.len() == y.len() && x.iter().zip(y).all(|(e, f)| e.group_eq(f))
        }
        (RtValue::Scalar(x), RtValue::Scalar(y)) => x.group_eq(y),
        _ => a == b,
    }
}

/// View a query result as a runtime value: one element per row, scalars
/// for single-column results, shared-metadata [`RtValue::Row`]s otherwise.
/// This is the bridge both observational checkers (qbs verification,
/// rewrite certification) use to compare relational and imperative sides.
pub fn relation_to_rt(rel: &dbms::Relation) -> RtValue {
    let fields = Rc::new(rel.fields.clone());
    RtValue::List(
        rel.rows
            .iter()
            .map(|r| {
                if r.len() == 1 {
                    RtValue::Scalar(r[0].clone())
                } else {
                    RtValue::Row {
                        fields: Rc::clone(&fields),
                        values: r.clone(),
                    }
                }
            })
            .collect(),
    )
}

/// Compare a query result against an interpreter value: a scalar expects a
/// 1×1 relation (NULL matches NULL); collections compare via
/// [`relation_to_rt`] and [`loose_eq`] (sets order-insensitively).
pub fn relation_matches(rel: &dbms::Relation, expected: &RtValue) -> bool {
    match expected {
        RtValue::Scalar(v) => {
            rel.rows.len() == 1
                && rel.rows[0].len() == 1
                && (rel.rows[0][0].group_eq(v) || (rel.rows[0][0].is_null() && v.is_null()))
        }
        RtValue::List(_) | RtValue::Set(_) => loose_eq(&relation_to_rt(rel), expected),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_field_access() {
        let r = RtValue::Row {
            fields: Rc::new(vec![Field::qualified("t", "a"), Field::qualified("t", "b")]),
            values: vec![Value::Int(1), Value::Str("x".into())],
        };
        assert_eq!(r.field("b"), Some(RtValue::str("x")));
        assert_eq!(r.field("zzz"), None);
    }

    #[test]
    fn pair_fields() {
        let p = RtValue::Pair(Box::new(RtValue::int(1)), Box::new(RtValue::str("a")));
        assert_eq!(p.field("first"), Some(RtValue::int(1)));
        assert_eq!(p.field("second"), Some(RtValue::str("a")));
    }

    #[test]
    fn loose_eq_ignores_set_order() {
        let a = RtValue::Set(vec![RtValue::int(1), RtValue::int(2)]);
        let b = RtValue::Set(vec![RtValue::int(2), RtValue::int(1)]);
        assert!(loose_eq(&a, &b));
        let c = RtValue::List(vec![RtValue::int(1), RtValue::int(2)]);
        let d = RtValue::List(vec![RtValue::int(2), RtValue::int(1)]);
        assert!(!loose_eq(&c, &d));
    }

    #[test]
    fn loose_eq_rows_by_value() {
        let r1 = RtValue::Row {
            fields: Rc::new(vec![Field::new("x")]),
            values: vec![Value::Int(1)],
        };
        let r2 = RtValue::Row {
            fields: Rc::new(vec![Field::new("renamed")]),
            values: vec![Value::Int(1)],
        };
        assert!(loose_eq(&r1, &r2));
    }

    #[test]
    fn relation_matches_scalar_and_collection() {
        let rel = dbms::Relation {
            fields: vec![Field::new("s")],
            rows: vec![vec![Value::Int(7)]],
        };
        assert!(relation_matches(&rel, &RtValue::int(7)));
        assert!(!relation_matches(&rel, &RtValue::int(8)));
        assert!(relation_matches(
            &rel,
            &RtValue::List(vec![RtValue::int(7)])
        ));
        let empty = dbms::Relation {
            fields: vec![Field::new("s")],
            rows: vec![],
        };
        assert!(!relation_matches(&empty, &RtValue::int(0)));
        assert!(relation_matches(&empty, &RtValue::List(vec![])));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            RtValue::List(vec![RtValue::int(1), RtValue::int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(RtValue::null().to_string(), "NULL");
    }
}
