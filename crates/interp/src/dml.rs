//! A minimal DML subset backing `executeUpdate`.
//!
//! The paper's techniques deliberately keep database updates intact
//! (Sec. 7.1); experiments only need updates to *exist* so that the
//! dependence analysis can observe external writes. Supported statements:
//!
//! ```text
//! INSERT INTO <table> VALUES (<lit> [, <lit>]*)
//! DELETE FROM <table> [WHERE <col> = <lit>]
//! ```

use dbms::{Database, Value};

/// A DML execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmlError(pub String);

impl std::fmt::Display for DmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DML error: {}", self.0)
    }
}

impl std::error::Error for DmlError {}

/// Execute a DML statement; returns the number of affected rows.
/// `params` substitute `?` placeholders positionally.
pub fn execute_update(db: &mut Database, sql: &str, params: &[Value]) -> Result<i64, DmlError> {
    let toks: Vec<String> = tokenize(sql);
    let lower: Vec<String> = toks.iter().map(|t| t.to_ascii_lowercase()).collect();
    match lower.first().map(String::as_str) {
        Some("insert") => {
            if lower.get(1).map(String::as_str) != Some("into") {
                return Err(DmlError("expected INSERT INTO".into()));
            }
            let table = toks
                .get(2)
                .ok_or_else(|| DmlError("missing table".into()))?
                .clone();
            let vpos = lower
                .iter()
                .position(|t| t == "values")
                .ok_or_else(|| DmlError("missing VALUES".into()))?;
            let mut row = Vec::new();
            let mut pi = 0usize;
            for t in &toks[vpos + 1..] {
                match t.as_str() {
                    "(" | ")" | "," => {}
                    "?" => {
                        row.push(
                            params
                                .get(pi)
                                .cloned()
                                .ok_or_else(|| DmlError(format!("missing param {pi}")))?,
                        );
                        pi += 1;
                    }
                    lit => row.push(parse_lit(lit)?),
                }
            }
            if db.insert(&table.to_ascii_lowercase(), row) {
                Ok(1)
            } else {
                Err(DmlError(format!("unknown table {table}")))
            }
        }
        Some("delete") => {
            if lower.get(1).map(String::as_str) != Some("from") {
                return Err(DmlError("expected DELETE FROM".into()));
            }
            let table = toks
                .get(2)
                .ok_or_else(|| DmlError("missing table".into()))?
                .to_ascii_lowercase();
            let filter = if lower.get(3).map(String::as_str) == Some("where") {
                let col = toks
                    .get(4)
                    .ok_or_else(|| DmlError("missing column".into()))?
                    .clone();
                if toks.get(5).map(String::as_str) != Some("=") {
                    return Err(DmlError("only `col = lit` filters supported".into()));
                }
                let lit = toks
                    .get(6)
                    .ok_or_else(|| DmlError("missing literal".into()))?;
                let v = if lit == "?" {
                    params
                        .first()
                        .cloned()
                        .ok_or_else(|| DmlError("missing param".into()))?
                } else {
                    parse_lit(lit)?
                };
                Some((col.to_ascii_lowercase(), v))
            } else {
                None
            };
            let t = db
                .table_mut(&table)
                .ok_or_else(|| DmlError(format!("unknown table {table}")))?;
            let idx = match &filter {
                None => None,
                Some((col, _)) => Some(
                    t.schema
                        .column_index(col)
                        .ok_or_else(|| DmlError(format!("unknown column {col}")))?,
                ),
            };
            let rows = t
                .mem_rows_mut()
                .ok_or_else(|| DmlError(format!("DELETE on paged table {table} unsupported")))?;
            let before = rows.len();
            match (idx, filter) {
                (Some(idx), Some((_, v))) => rows.retain(|r| !r[idx].group_eq(&v)),
                _ => rows.clear(),
            }
            Ok((before - rows.len()) as i64)
        }
        other => Err(DmlError(format!("unsupported DML {other:?}"))),
    }
}

fn tokenize(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '(' | ')' | ',' | '=' | '?' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(c.to_string());
            }
            '\'' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                let mut s = String::from("'");
                for c2 in chars.by_ref() {
                    s.push(c2);
                    if c2 == '\'' {
                        break;
                    }
                }
                out.push(s);
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_lit(t: &str) -> Result<Value, DmlError> {
    if let Some(stripped) = t.strip_prefix('\'') {
        return Ok(Value::Str(stripped.trim_end_matches('\'').to_string()));
    }
    if t.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    if t.eq_ignore_ascii_case("true") {
        return Ok(Value::Bool(true));
    }
    if t.eq_ignore_ascii_case("false") {
        return Ok(Value::Bool(false));
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = t.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(DmlError(format!("bad literal {t}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::schema::{SqlType, TableSchema};

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(TableSchema::new(
            "log",
            &[("id", SqlType::Int), ("msg", SqlType::Text)],
        ));
        d.insert("log", vec![Value::Int(1), "a".into()]);
        d.insert("log", vec![Value::Int(2), "b".into()]);
        d
    }

    #[test]
    fn insert_values() {
        let mut d = db();
        let n = execute_update(&mut d, "INSERT INTO log VALUES (3, 'c')", &[]).unwrap();
        assert_eq!(n, 1);
        assert_eq!(d.table("log").unwrap().len(), 3);
    }

    #[test]
    fn insert_with_params() {
        let mut d = db();
        execute_update(
            &mut d,
            "INSERT INTO log VALUES (?, ?)",
            &[Value::Int(9), "z".into()],
        )
        .unwrap();
        assert_eq!(
            d.table("log").unwrap().scan().nth(2).unwrap(),
            vec![Value::Int(9), Value::Str("z".into())]
        );
    }

    #[test]
    fn delete_with_filter() {
        let mut d = db();
        let n = execute_update(&mut d, "DELETE FROM log WHERE id = 1", &[]).unwrap();
        assert_eq!(n, 1);
        assert_eq!(d.table("log").unwrap().len(), 1);
    }

    #[test]
    fn delete_all() {
        let mut d = db();
        let n = execute_update(&mut d, "DELETE FROM log", &[]).unwrap();
        assert_eq!(n, 2);
        assert!(d.table("log").unwrap().is_empty());
    }

    #[test]
    fn unknown_table_is_error() {
        let mut d = db();
        assert!(execute_update(&mut d, "DELETE FROM nope", &[]).is_err());
    }

    #[test]
    fn unsupported_statement_is_error() {
        let mut d = db();
        assert!(execute_update(&mut d, "UPDATE log SET msg = 'x'", &[]).is_err());
    }
}
