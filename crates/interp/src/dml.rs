//! The DML subset backing `executeUpdate`.
//!
//! Originally updates only needed to *exist* so the dependence analysis
//! could observe external writes (paper Sec. 7.1); foreach-dml extraction
//! (DESIGN.md §5i) additionally needs to *run* both sides of a write-loop
//! rewrite, so the executor covers the per-row statements loops issue and
//! the set-oriented statements the extractor emits:
//!
//! ```text
//! INSERT INTO <table> [(<col>, …)] VALUES (<val> [, <val>]*)
//! INSERT INTO <table> [(<col>, …)] SELECT …
//! UPDATE <table> SET <col> = <val> [, …] [WHERE <col> = <val>]
//! UPDATE <table> SET <col> = <s>.<c> [, …] FROM (SELECT …) AS <s>
//!     WHERE <col> = <s>.<c>
//! DELETE FROM <table> [WHERE <col> = <val>]
//! DELETE FROM <table> WHERE <col> IN (SELECT …)
//! DELETE FROM <table> WHERE <predicate>
//! ```
//!
//! Semantics pin down the loop-equivalence argument:
//!
//! * Subqueries are evaluated **fully, against the pre-statement state**,
//!   before any mutation (Halloween protection — exactly the snapshot a
//!   materialized cursor loop sees).
//! * `UPDATE … FROM` applies subquery rows **in order**; when two source
//!   rows hit the same target row the last writer wins, which is the
//!   per-row loop's behaviour.
//! * Key comparisons use SQL equality: `NULL` matches nothing, even
//!   another `NULL`.
//! * The paged backend serves `INSERT`; `UPDATE`/`DELETE` on a paged
//!   table report a clear error instead of corrupting state.

use algebra::parse::parse_sql;
use dbms::eval::eval_query;
use dbms::{Database, Value};

/// A DML execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmlError(pub String);

impl std::fmt::Display for DmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DML error: {}", self.0)
    }
}

impl std::error::Error for DmlError {}

/// SQL equality: `NULL` compares equal to nothing (not even `NULL`).
fn sql_eq(a: &Value, b: &Value) -> bool {
    !a.is_null() && !b.is_null() && a.group_eq(b)
}

/// Identity of two rows known to come from the same table (for multiset
/// removal): positional `group_eq`, where `NULL` matches `NULL`.
fn row_ident(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.group_eq(y))
}

/// Find keyword `kw` as a whole word at paren depth 0 outside quotes,
/// case-insensitively, starting at byte `from`. Returns its byte offset.
fn find_top_kw(s: &str, kw: &str, from: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let lower: Vec<u8> = bytes.iter().map(|b| b.to_ascii_lowercase()).collect();
    let kwb = kw.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut depth = 0usize;
    let mut in_str = false;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if c == b'\'' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            b'\'' => in_str = true,
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            _ => {
                if depth == 0
                    && i >= from
                    && lower[i..].starts_with(kwb)
                    && (i == 0 || !is_word(bytes[i - 1]))
                    && (i + kwb.len() == bytes.len() || !is_word(bytes[i + kwb.len()]))
                {
                    return Some(i);
                }
            }
        }
        i += 1;
    }
    None
}

/// Split `s` on top-level commas (outside quotes and parens).
fn split_top_commas(s: &str) -> Vec<&str> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = 0usize;
    for (i, &c) in bytes.iter().enumerate() {
        if in_str {
            if c == b'\'' {
                in_str = false;
            }
            continue;
        }
        match c {
            b'\'' => in_str = true,
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim());
    out
}

/// A value position in a simple (subquery-free) clause.
enum SimpleVal {
    Param,
    Lit(Value),
}

fn parse_simple_val(t: &str) -> Result<SimpleVal, DmlError> {
    let t = t.trim();
    if t == "?" {
        Ok(SimpleVal::Param)
    } else {
        Ok(SimpleVal::Lit(parse_lit(t)?))
    }
}

fn parse_lit(t: &str) -> Result<Value, DmlError> {
    if let Some(stripped) = t.strip_prefix('\'') {
        return Ok(Value::Str(stripped.trim_end_matches('\'').to_string()));
    }
    if t.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    if t.eq_ignore_ascii_case("true") {
        return Ok(Value::Bool(true));
    }
    if t.eq_ignore_ascii_case("false") {
        return Ok(Value::Bool(false));
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = t.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(DmlError(format!("bad literal {t}")))
}

/// `ident` or error.
fn parse_ident(t: &str) -> Result<String, DmlError> {
    let t = t.trim();
    let ok = !t.is_empty()
        && t.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if ok {
        Ok(t.to_ascii_lowercase())
    } else {
        Err(DmlError(format!("expected identifier, got `{t}`")))
    }
}

/// `alias.column` reference.
fn parse_qualified(t: &str) -> Option<(String, String)> {
    let (q, c) = t.trim().split_once('.')?;
    let q = parse_ident(q).ok()?;
    let c = parse_ident(c).ok()?;
    Some((q, c))
}

/// Evaluate a derived-table clause `( SELECT … ) [AS] alias` against the
/// pre-statement state.
fn eval_derived(
    db: &Database,
    from_text: &str,
    params: &[Value],
) -> Result<(dbms::Relation, String), DmlError> {
    let t = from_text.trim();
    if !t.starts_with('(') {
        return Err(DmlError(format!(
            "expected a derived table `(SELECT …) AS s`, got `{t}`"
        )));
    }
    // Find the matching close paren.
    let mut depth = 0usize;
    let mut in_str = false;
    let mut close = None;
    for (i, c) in t.char_indices() {
        match c {
            '\'' if !in_str => in_str = true,
            '\'' => in_str = false,
            '(' if !in_str => depth += 1,
            ')' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close.ok_or_else(|| DmlError("unbalanced parens in derived table".into()))?;
    let sub_sql = &t[1..close];
    let mut alias = t[close + 1..].trim();
    if let Some(rest) = alias
        .strip_prefix("AS ")
        .or_else(|| alias.strip_prefix("as "))
    {
        alias = rest.trim();
    }
    let alias = parse_ident(alias)?;
    let ra = parse_sql(sub_sql).map_err(|e| DmlError(format!("bad subquery: {e}")))?;
    let rel = eval_query(&ra, db, params).map_err(|e| DmlError(format!("subquery failed: {e}")))?;
    Ok((rel, alias))
}

/// Execute a DML statement; returns the number of affected rows.
/// `params` substitute `?` placeholders positionally (for statements with
/// a subquery, the placeholders live in the subquery).
pub fn execute_update(db: &mut Database, sql: &str, params: &[Value]) -> Result<i64, DmlError> {
    let sql = sql.trim().trim_end_matches(';');
    let head = sql
        .split_whitespace()
        .next()
        .map(|t| t.to_ascii_lowercase());
    match head.as_deref() {
        Some("insert") => exec_insert(db, sql, params),
        Some("update") => exec_update(db, sql, params),
        Some("delete") => exec_delete(db, sql, params),
        other => Err(DmlError(format!("unsupported DML {other:?}"))),
    }
}

// --- INSERT ---------------------------------------------------------------

fn exec_insert(db: &mut Database, sql: &str, params: &[Value]) -> Result<i64, DmlError> {
    let after = sql["insert".len()..].trim_start();
    let after = after
        .strip_prefix("INTO ")
        .or_else(|| after.strip_prefix("into "))
        .or_else(|| after.strip_prefix("Into "))
        .ok_or_else(|| DmlError("expected INSERT INTO".into()))?
        .trim_start();
    // Table name runs to whitespace or '('.
    let tend = after
        .find(|c: char| c.is_whitespace() || c == '(')
        .unwrap_or(after.len());
    let table = parse_ident(&after[..tend])?;
    let mut rest = after[tend..].trim_start();
    // Optional column list.
    let columns: Option<Vec<String>> =
        if rest.starts_with('(') && find_top_kw(rest, "values", 0) != Some(0) {
            // Distinguish `(cols) VALUES…/SELECT…` from nothing: the column
            // list is a parenthesized ident list right here.
            let close = rest
                .find(')')
                .ok_or_else(|| DmlError("unterminated column list".into()))?;
            let cols = split_top_commas(&rest[1..close])
                .into_iter()
                .map(parse_ident)
                .collect::<Result<Vec<_>, _>>()?;
            rest = rest[close + 1..].trim_start();
            Some(cols)
        } else {
            None
        };
    let schema = db
        .table(&table)
        .map(|t| t.schema.clone())
        .ok_or_else(|| DmlError(format!("unknown table {table}")))?;
    // Map an incoming tuple (in column-list order) to schema order,
    // filling unnamed columns with NULL.
    let reorder = |vals: Vec<Value>| -> Result<Vec<Value>, DmlError> {
        match &columns {
            None => {
                if vals.len() != schema.columns.len() {
                    return Err(DmlError(format!(
                        "INSERT arity mismatch: {} values for {} columns",
                        vals.len(),
                        schema.columns.len()
                    )));
                }
                Ok(vals)
            }
            Some(cols) => {
                if vals.len() != cols.len() {
                    return Err(DmlError(format!(
                        "INSERT arity mismatch: {} values for {} named columns",
                        vals.len(),
                        cols.len()
                    )));
                }
                let mut row = vec![Value::Null; schema.columns.len()];
                for (c, v) in cols.iter().zip(vals) {
                    let i = schema
                        .column_index(c)
                        .ok_or_else(|| DmlError(format!("unknown column {c}")))?;
                    row[i] = v;
                }
                Ok(row)
            }
        }
    };
    if let Some(stripped) = rest
        .strip_prefix("VALUES")
        .or_else(|| rest.strip_prefix("values"))
        .or_else(|| rest.strip_prefix("Values"))
    {
        let tuple = stripped.trim();
        let inner = tuple
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| DmlError("expected VALUES (…)".into()))?;
        let mut vals = Vec::new();
        let mut pi = 0usize;
        for item in split_top_commas(inner) {
            match parse_simple_val(item)? {
                SimpleVal::Param => {
                    vals.push(
                        params
                            .get(pi)
                            .cloned()
                            .ok_or_else(|| DmlError(format!("missing param {pi}")))?,
                    );
                    pi += 1;
                }
                SimpleVal::Lit(v) => vals.push(v),
            }
        }
        let row = reorder(vals)?;
        db.insert(&table, row);
        Ok(1)
    } else if rest
        .split_whitespace()
        .next()
        .is_some_and(|w| w.eq_ignore_ascii_case("select"))
    {
        // INSERT … SELECT: evaluate fully against the pre-insert state,
        // then append (works on the paged backend too).
        let ra = parse_sql(rest).map_err(|e| DmlError(format!("bad source query: {e}")))?;
        let rel = eval_query(&ra, db, params)
            .map_err(|e| DmlError(format!("source query failed: {e}")))?;
        let rows = rel
            .rows
            .into_iter()
            .map(reorder)
            .collect::<Result<Vec<_>, _>>()?;
        let n = rows.len() as i64;
        for row in rows {
            db.insert(&table, row);
        }
        Ok(n)
    } else {
        Err(DmlError("expected VALUES (…) or SELECT".into()))
    }
}

// --- UPDATE ---------------------------------------------------------------

fn exec_update(db: &mut Database, sql: &str, params: &[Value]) -> Result<i64, DmlError> {
    let set_pos =
        find_top_kw(sql, "set", 0).ok_or_else(|| DmlError("UPDATE without SET".into()))?;
    let table = parse_ident(&sql["update".len()..set_pos])?;
    let from_pos = find_top_kw(sql, "from", set_pos);
    let where_pos = find_top_kw(sql, "where", from_pos.unwrap_or(set_pos));
    let set_end = from_pos.or(where_pos).unwrap_or(sql.len());
    let set_text = &sql[set_pos + "set".len()..set_end];

    if let Some(fp) = from_pos {
        // Set-oriented form: UPDATE t SET c = s.v, … FROM (SELECT …) AS s
        // WHERE k = s.k0.
        let wp = where_pos.ok_or_else(|| DmlError("UPDATE … FROM needs a WHERE join".into()))?;
        let from_text = &sql[fp + "from".len()..wp];
        let (rel, alias) = eval_derived(db, from_text, params)?;
        let where_text = &sql[wp + "where".len()..];
        let (lhs, rhs) = where_text
            .split_once('=')
            .ok_or_else(|| DmlError("UPDATE … FROM WHERE must be `key = alias.col`".into()))?;
        let key_col = match parse_qualified(lhs) {
            Some((q, c)) if q == table => c,
            Some((q, _)) => return Err(DmlError(format!("unknown qualifier `{q}` in WHERE"))),
            None => parse_ident(lhs)?,
        };
        let (rq, rc) = parse_qualified(rhs)
            .ok_or_else(|| DmlError("WHERE right side must be `alias.col`".into()))?;
        if rq != alias {
            return Err(DmlError(format!("unknown alias `{rq}` in WHERE")));
        }
        let key_src = rel
            .resolve(None, &rc)
            .map_err(|e| DmlError(format!("bad key column: {e}")))?;
        let mut sets = Vec::new();
        for item in split_top_commas(set_text) {
            let (c, v) = item
                .split_once('=')
                .ok_or_else(|| DmlError(format!("bad SET item `{item}`")))?;
            let col = parse_ident(c)?;
            let (vq, vc) = parse_qualified(v)
                .ok_or_else(|| DmlError(format!("SET value must be `{alias}.col`, got `{v}`")))?;
            if vq != alias {
                return Err(DmlError(format!("unknown alias `{vq}` in SET")));
            }
            let src = rel
                .resolve(None, &vc)
                .map_err(|e| DmlError(format!("bad SET source column: {e}")))?;
            sets.push((col, src));
        }
        let t = db
            .table_mut(&table)
            .ok_or_else(|| DmlError(format!("unknown table {table}")))?;
        let key_idx = t
            .schema
            .column_index(&key_col)
            .ok_or_else(|| DmlError(format!("unknown column {key_col}")))?;
        let set_idxs = sets
            .iter()
            .map(|(c, src)| {
                t.schema
                    .column_index(c)
                    .map(|i| (i, *src))
                    .ok_or_else(|| DmlError(format!("unknown column {c}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let affected = t.mutate_rows(|rows| {
            let mut affected = 0i64;
            // Source rows apply in order: last writer wins, matching the
            // per-row loop this statement replaces.
            for srow in &rel.rows {
                let key = &srow[key_src];
                for row in rows.iter_mut() {
                    if sql_eq(&row[key_idx], key) {
                        for (tc, rc) in &set_idxs {
                            row[*tc] = srow[*rc].clone();
                        }
                        affected += 1;
                    }
                }
            }
            affected
        });
        Ok(affected)
    } else {
        // Per-row form: UPDATE t SET c = v, … [WHERE c = v].
        let mut pi = 0usize;
        let mut take = |v: SimpleVal| -> Result<Value, DmlError> {
            match v {
                SimpleVal::Param => {
                    let v = params
                        .get(pi)
                        .cloned()
                        .ok_or_else(|| DmlError(format!("missing param {pi}")))?;
                    pi += 1;
                    Ok(v)
                }
                SimpleVal::Lit(v) => Ok(v),
            }
        };
        let mut sets = Vec::new();
        for item in split_top_commas(set_text) {
            let (c, v) = item
                .split_once('=')
                .ok_or_else(|| DmlError(format!("bad SET item `{item}`")))?;
            sets.push((parse_ident(c)?, take(parse_simple_val(v)?)?));
        }
        let filter = match where_pos {
            None => None,
            Some(wp) => {
                let (c, v) = sql[wp + "where".len()..]
                    .split_once('=')
                    .ok_or_else(|| DmlError("only `col = val` UPDATE filters supported".into()))?;
                Some((parse_ident(c)?, take(parse_simple_val(v)?)?))
            }
        };
        let t = db
            .table_mut(&table)
            .ok_or_else(|| DmlError(format!("unknown table {table}")))?;
        let filter_idx = match &filter {
            None => None,
            Some((c, _)) => Some(
                t.schema
                    .column_index(c)
                    .ok_or_else(|| DmlError(format!("unknown column {c}")))?,
            ),
        };
        let set_idxs = sets
            .iter()
            .map(|(c, v)| {
                t.schema
                    .column_index(c)
                    .map(|i| (i, v.clone()))
                    .ok_or_else(|| DmlError(format!("unknown column {c}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let affected = t.mutate_rows(|rows| {
            let mut affected = 0i64;
            for row in rows.iter_mut() {
                let hit = match (&filter_idx, &filter) {
                    (Some(i), Some((_, v))) => sql_eq(&row[*i], v),
                    _ => true,
                };
                if hit {
                    for (i, v) in &set_idxs {
                        row[*i] = v.clone();
                    }
                    affected += 1;
                }
            }
            affected
        });
        Ok(affected)
    }
}

// --- DELETE ---------------------------------------------------------------

fn exec_delete(db: &mut Database, sql: &str, params: &[Value]) -> Result<i64, DmlError> {
    let from_pos =
        find_top_kw(sql, "from", 0).ok_or_else(|| DmlError("expected DELETE FROM".into()))?;
    let where_pos = find_top_kw(sql, "where", from_pos);
    let table = parse_ident(&sql[from_pos + "from".len()..where_pos.unwrap_or(sql.len())])?;
    let Some(wp) = where_pos else {
        // Unfiltered: clear the table.
        let t = db
            .table_mut(&table)
            .ok_or_else(|| DmlError(format!("unknown table {table}")))?;
        let before = t.mutate_rows(|rows| {
            let before = rows.len();
            rows.clear();
            before
        });
        return Ok(before as i64);
    };
    let where_text = sql[wp + "where".len()..].trim();

    if let Some(in_pos) = find_top_kw(where_text, "in", 0) {
        // DELETE FROM t WHERE col IN (SELECT …).
        let col = parse_ident(&where_text[..in_pos])?;
        let sub = where_text[in_pos + "in".len()..].trim();
        let inner = sub
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| DmlError("expected IN (SELECT …)".into()))?;
        let ra = parse_sql(inner).map_err(|e| DmlError(format!("bad subquery: {e}")))?;
        let rel =
            eval_query(&ra, db, params).map_err(|e| DmlError(format!("subquery failed: {e}")))?;
        if rel.fields.len() != 1 {
            return Err(DmlError(format!(
                "IN subquery must produce one column, got {}",
                rel.fields.len()
            )));
        }
        let keys: Vec<Value> = rel.rows.into_iter().map(|mut r| r.remove(0)).collect();
        let t = db
            .table_mut(&table)
            .ok_or_else(|| DmlError(format!("unknown table {table}")))?;
        let idx = t
            .schema
            .column_index(&col)
            .ok_or_else(|| DmlError(format!("unknown column {col}")))?;
        let removed = t.mutate_rows(|rows| {
            let before = rows.len();
            rows.retain(|r| !keys.iter().any(|k| sql_eq(&r[idx], k)));
            before - rows.len()
        });
        return Ok(removed as i64);
    }

    // Simple `col = val` filter (fast path, no parser round trip).
    if let Some((c, v)) = where_text.split_once('=') {
        if let (Ok(col), Ok(val)) = (parse_ident(c), parse_simple_val(v)) {
            let val = match val {
                SimpleVal::Param => params
                    .first()
                    .cloned()
                    .ok_or_else(|| DmlError("missing param".into()))?,
                SimpleVal::Lit(v) => v,
            };
            let t = db
                .table_mut(&table)
                .ok_or_else(|| DmlError(format!("unknown table {table}")))?;
            let idx = t
                .schema
                .column_index(&col)
                .ok_or_else(|| DmlError(format!("unknown column {col}")))?;
            let removed = t.mutate_rows(|rows| {
                let before = rows.len();
                rows.retain(|r| !sql_eq(&r[idx], &val));
                before - rows.len()
            });
            return Ok(removed as i64);
        }
    }

    // General predicate: evaluate `SELECT * FROM t WHERE pred` against the
    // pre-delete state and remove exactly the matching rows (multiset).
    let probe = format!("SELECT * FROM {table} WHERE {where_text}");
    let ra = parse_sql(&probe).map_err(|e| DmlError(format!("bad DELETE predicate: {e}")))?;
    let rel = eval_query(&ra, db, params)
        .map_err(|e| DmlError(format!("DELETE predicate failed: {e}")))?;
    let mut doomed = rel.rows;
    let t = db
        .table_mut(&table)
        .ok_or_else(|| DmlError(format!("unknown table {table}")))?;
    let removed = t.mutate_rows(|rows| {
        let before = rows.len();
        rows.retain(|r| match doomed.iter().position(|d| row_ident(d, r)) {
            Some(i) => {
                doomed.swap_remove(i);
                false
            }
            None => true,
        });
        before - rows.len()
    });
    Ok(removed as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::schema::{SqlType, TableSchema};

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(TableSchema::new(
            "log",
            &[("id", SqlType::Int), ("msg", SqlType::Text)],
        ));
        d.insert("log", vec![Value::Int(1), "a".into()]);
        d.insert("log", vec![Value::Int(2), "b".into()]);
        d
    }

    fn emp_db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new("emp", &[("id", SqlType::Int), ("salary", SqlType::Int)])
                .with_key(&["id"]),
        );
        d.insert("emp", vec![Value::Int(1), Value::Int(10)]);
        d.insert("emp", vec![Value::Int(2), Value::Int(20)]);
        d.insert("emp", vec![Value::Int(3), Value::Null]);
        d
    }

    #[test]
    fn insert_values() {
        let mut d = db();
        let n = execute_update(&mut d, "INSERT INTO log VALUES (3, 'c')", &[]).unwrap();
        assert_eq!(n, 1);
        assert_eq!(d.table("log").unwrap().len(), 3);
    }

    #[test]
    fn insert_with_params() {
        let mut d = db();
        execute_update(
            &mut d,
            "INSERT INTO log VALUES (?, ?)",
            &[Value::Int(9), "z".into()],
        )
        .unwrap();
        assert_eq!(
            d.table("log").unwrap().scan().nth(2).unwrap(),
            vec![Value::Int(9), Value::Str("z".into())]
        );
    }

    #[test]
    fn insert_with_column_list_reorders() {
        let mut d = db();
        execute_update(
            &mut d,
            "INSERT INTO log (msg, id) VALUES (?, ?)",
            &["z".into(), Value::Int(9)],
        )
        .unwrap();
        assert_eq!(
            d.table("log").unwrap().scan().nth(2).unwrap(),
            vec![Value::Int(9), Value::Str("z".into())]
        );
    }

    #[test]
    fn insert_select_snapshots_the_source() {
        let mut d = db();
        // Self-insert must read the pre-statement state: 2 rows in, 2 added.
        let n = execute_update(&mut d, "INSERT INTO log SELECT id, msg FROM log", &[]).unwrap();
        assert_eq!(n, 2);
        assert_eq!(d.table("log").unwrap().len(), 4);
    }

    #[test]
    fn delete_with_filter() {
        let mut d = db();
        let n = execute_update(&mut d, "DELETE FROM log WHERE id = 1", &[]).unwrap();
        assert_eq!(n, 1);
        assert_eq!(d.table("log").unwrap().len(), 1);
    }

    #[test]
    fn delete_all() {
        let mut d = db();
        let n = execute_update(&mut d, "DELETE FROM log", &[]).unwrap();
        assert_eq!(n, 2);
        assert!(d.table("log").unwrap().is_empty());
    }

    #[test]
    fn delete_null_key_matches_nothing() {
        let mut d = emp_db();
        let n = execute_update(&mut d, "DELETE FROM emp WHERE salary = ?", &[Value::Null]).unwrap();
        assert_eq!(n, 0, "NULL key must match no rows, not the NULL row");
        assert_eq!(d.table("emp").unwrap().len(), 3);
    }

    #[test]
    fn delete_in_subquery() {
        let mut d = emp_db();
        let n = execute_update(
            &mut d,
            "DELETE FROM emp WHERE id IN (SELECT id FROM emp WHERE salary >= 20)",
            &[],
        )
        .unwrap();
        assert_eq!(n, 1);
        assert_eq!(d.table("emp").unwrap().len(), 2);
    }

    #[test]
    fn delete_general_predicate() {
        let mut d = emp_db();
        // NULL salary is neither < 15 nor >= 15: the row survives.
        let n = execute_update(&mut d, "DELETE FROM emp WHERE (salary < 15)", &[]).unwrap();
        assert_eq!(n, 1);
        assert_eq!(d.table("emp").unwrap().len(), 2);
    }

    #[test]
    fn simple_update_with_filter() {
        let mut d = emp_db();
        let n = execute_update(
            &mut d,
            "UPDATE emp SET salary = ? WHERE id = ?",
            &[Value::Int(99), Value::Int(2)],
        )
        .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            d.table("emp").unwrap().scan().nth(1).unwrap(),
            vec![Value::Int(2), Value::Int(99)]
        );
    }

    #[test]
    fn update_from_subquery_applies_in_order() {
        let mut d = emp_db();
        let n = execute_update(
            &mut d,
            "UPDATE emp SET salary = s.v0 FROM (SELECT e.id AS k0, e.salary + 1 AS v0 \
             FROM emp AS e WHERE e.salary >= 10) AS s WHERE id = s.k0",
            &[],
        )
        .unwrap();
        assert_eq!(n, 2);
        let rows: Vec<_> = d.table("emp").unwrap().scan().collect();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(11)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Int(21)]);
        assert_eq!(rows[2], vec![Value::Int(3), Value::Null]);
    }

    #[test]
    fn unknown_table_is_error() {
        let mut d = db();
        assert!(execute_update(&mut d, "DELETE FROM nope", &[]).is_err());
    }

    #[test]
    fn unsupported_statement_is_error() {
        let mut d = db();
        assert!(execute_update(&mut d, "MERGE INTO log USING x", &[]).is_err());
    }

    #[test]
    fn paged_backend_agrees_with_mem_on_every_statement_form() {
        // UPDATE/DELETE on a paged table materialize + rewrite; every
        // statement form must leave both backings with identical contents.
        let schema = TableSchema::new("emp", &[("id", SqlType::Int), ("salary", SqlType::Int)])
            .with_key(&["id"]);
        let mut mem = Database::new().with_table(schema.clone());
        let mut paged = Database::paged_in_memory(4).with_table(schema);
        for i in 0..20i64 {
            let row = vec![Value::Int(i), Value::Int(i * 10)];
            mem.insert("emp", row.clone());
            paged.insert("emp", row);
        }
        let stmts: &[&str] = &[
            "INSERT INTO emp VALUES (999, 1)",
            "UPDATE emp SET salary = 7 WHERE id = 3",
            "UPDATE emp SET salary = s.s0 FROM (SELECT id AS k0, salary + 1 AS s0 FROM emp WHERE id < 5) AS s WHERE emp.id = s.k0",
            "DELETE FROM emp WHERE id = 999",
            "DELETE FROM emp WHERE id IN (SELECT id FROM emp WHERE salary > 150)",
            "DELETE FROM emp WHERE salary < 20",
        ];
        for sql in stmts {
            let a = execute_update(&mut mem, sql, &[]).unwrap();
            let b = execute_update(&mut paged, sql, &[]).unwrap();
            assert_eq!(a, b, "affected counts diverge on `{sql}`");
            assert_eq!(
                mem.table("emp").unwrap(),
                paged.table("emp").unwrap(),
                "contents diverge after `{sql}`"
            );
        }
        // Unfiltered DELETE clears the paged table too.
        let n = execute_update(&mut paged, "DELETE FROM emp", &[]).unwrap();
        assert!(n > 0);
        assert!(paged.table("emp").unwrap().is_empty());
    }
}
