//! `interp` — a tree-walking interpreter for `imp` programs.
//!
//! The interpreter serves three roles in the reproduction:
//!
//! 1. **Experiments** — running the original and the rewritten programs over
//!    the metered [`dbms::Connection`] yields the round-trip / data-transfer
//!    numbers of Figures 8–11;
//! 2. **Equivalence testing** — every extraction is checked by running both
//!    program versions on shared databases (Theorem 1 and the manual
//!    verification of Sec. 7.2, mechanized);
//! 3. **QBS's verifier** — the synthesis baseline checks candidate queries
//!    observationally against the interpreted loop.
//!
//! `executeQuery` strings are parsed by `algebra::parse` and executed via
//! the connection; a tiny DML subset (`INSERT INTO … VALUES`, `DELETE FROM …
//! [WHERE col = lit]`) backs `executeUpdate`.

pub mod dml;
pub mod run;
pub mod value;

pub use run::{Interp, RtError};
pub use value::RtValue;
