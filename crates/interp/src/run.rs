//! The interpreter proper.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use algebra::parse::parse_sql;
use dbms::eval::eval_binop;
use dbms::{Connection, Value};
use imp::ast::{BinaryOp, Block, Expr, Literal, Program, StmtKind, UnaryOp};

use crate::dml::execute_update;
use crate::value::{loose_eq, RtValue};

/// A runtime error.
#[derive(Debug, Clone, PartialEq)]
pub enum RtError {
    /// Undefined variable or function.
    Undefined(String),
    /// Type error.
    Type(String),
    /// SQL parse or evaluation error.
    Sql(String),
    /// The configured step budget was exhausted (guards synthesis runs).
    BudgetExhausted,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Undefined(n) => write!(f, "undefined name `{n}`"),
            RtError::Type(m) => write!(f, "type error: {m}"),
            RtError::Sql(m) => write!(f, "SQL error: {m}"),
            RtError::BudgetExhausted => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for RtError {}

enum Flow {
    Normal,
    Return(RtValue),
    Break,
    Continue,
}

type Env = HashMap<intern::Symbol, RtValue>;

/// Three-valued truth of a runtime value: `None` for SQL NULL, otherwise
/// the same truthiness `is_true` uses (only `Bool(true)` is true).
fn truth(v: &RtValue) -> Option<bool> {
    match v {
        RtValue::Scalar(Value::Null) => None,
        other => Some(other.is_true()),
    }
}

/// An interpreter instance bound to a program and a metered connection.
pub struct Interp<'a> {
    program: &'a Program,
    /// The metered connection; inspect `conn.stats` after a run.
    pub conn: Connection,
    /// Captured output lines. Printing a list flattens it to one line per
    /// element, making the print-to-append preprocessing (Appendix B)
    /// observationally transparent.
    pub output: Vec<String>,
    steps: u64,
    max_steps: u64,
}

impl<'a> Interp<'a> {
    /// Create an interpreter with a generous default step budget.
    pub fn new(program: &'a Program, conn: Connection) -> Interp<'a> {
        Interp {
            program,
            conn,
            output: Vec::new(),
            steps: 0,
            max_steps: 50_000_000,
        }
    }

    /// Override the step budget (used by the QBS verifier).
    pub fn with_budget(mut self, max_steps: u64) -> Interp<'a> {
        self.max_steps = max_steps;
        self
    }

    /// Call a function by name with arguments; returns its value.
    pub fn call(&mut self, name: &str, args: Vec<RtValue>) -> Result<RtValue, RtError> {
        let f = self
            .program
            .function(name)
            .ok_or_else(|| RtError::Undefined(format!("function {name}")))?;
        if f.params.len() != args.len() {
            return Err(RtError::Type(format!(
                "{name} expects {} args, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let mut env: Env = f.params.iter().copied().zip(args).collect();
        match self.exec_block(&f.body, &mut env)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(RtValue::Unit),
        }
    }

    fn tick(&mut self) -> Result<(), RtError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            Err(RtError::BudgetExhausted)
        } else {
            Ok(())
        }
    }

    fn exec_block(&mut self, b: &Block, env: &mut Env) -> Result<Flow, RtError> {
        for s in &b.stmts {
            self.tick()?;
            match &s.kind {
                StmtKind::Assign { target, value } => {
                    let v = self.eval(value, env)?;
                    env.insert(*target, v);
                }
                StmtKind::Expr(e) => {
                    self.eval(e, env)?;
                }
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let c = self.eval(cond, env)?;
                    let flow = if c.is_true() {
                        self.exec_block(then_branch, env)?
                    } else {
                        self.exec_block(else_branch, env)?
                    };
                    match flow {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                StmtKind::ForEach {
                    var,
                    iterable,
                    body,
                } => {
                    let coll = self.eval(iterable, env)?;
                    let elems = coll
                        .as_elements()
                        .ok_or_else(|| RtError::Type(format!("cannot iterate over {coll}")))?
                        .to_vec();
                    'iters: for el in elems {
                        env.insert(*var, el);
                        match self.exec_block(body, env)? {
                            Flow::Normal | Flow::Continue => {}
                            Flow::Break => break 'iters,
                            r @ Flow::Return(_) => return Ok(r),
                        }
                    }
                }
                StmtKind::While { cond, body } => loop {
                    self.tick()?;
                    if !self.eval(cond, env)?.is_true() {
                        break;
                    }
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                },
                StmtKind::Return(v) => {
                    let rv = match v {
                        Some(e) => self.eval(e, env)?,
                        None => RtValue::Unit,
                    };
                    return Ok(Flow::Return(rv));
                }
                StmtKind::Break => return Ok(Flow::Break),
                StmtKind::Continue => return Ok(Flow::Continue),
                StmtKind::Print(args) => {
                    let mut vals = Vec::new();
                    for a in args {
                        vals.push(self.eval(a, env)?);
                    }
                    self.print_values(&vals);
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn print_values(&mut self, vals: &[RtValue]) {
        // Printing a single list flattens to one line per element (see the
        // struct docs); everything else concatenates into one line.
        if vals.len() == 1 {
            if let RtValue::List(items) | RtValue::Set(items) = &vals[0] {
                for it in items {
                    self.output.push(it.render());
                }
                return;
            }
        }
        let line: String = vals
            .iter()
            .map(RtValue::render)
            .collect::<Vec<_>>()
            .join("");
        self.output.push(line);
    }

    fn eval(&mut self, e: &Expr, env: &mut Env) -> Result<RtValue, RtError> {
        self.tick()?;
        match e {
            Expr::Lit(l) => Ok(RtValue::Scalar(match l {
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(v) => Value::Float(*v),
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Str(s) => Value::Str(s.clone()),
                Literal::Null => Value::Null,
            })),
            Expr::Var(v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| RtError::Undefined(format!("variable {v}"))),
            Expr::Unary(op, x) => {
                let v = self.eval(x, env)?;
                match (op, v) {
                    // checked_neg: -i64::MIN → NULL-on-error, like dbms::eval.
                    (UnaryOp::Neg, RtValue::Scalar(Value::Int(i))) => Ok(RtValue::Scalar(
                        i.checked_neg().map_or(Value::Null, Value::Int),
                    )),
                    (UnaryOp::Neg, RtValue::Scalar(Value::Float(f))) => {
                        Ok(RtValue::Scalar(Value::Float(-f)))
                    }
                    // NULL propagates through unary operators (SQL semantics).
                    (UnaryOp::Neg | UnaryOp::Not, RtValue::Scalar(Value::Null)) => {
                        Ok(RtValue::null())
                    }
                    (UnaryOp::Not, RtValue::Scalar(Value::Bool(b))) => Ok(RtValue::bool(!b)),
                    (op, v) => Err(RtError::Type(format!("cannot apply {op:?} to {v}"))),
                }
            }
            Expr::Binary(op, l, r) => self.eval_binary(*op, l, r, env),
            Expr::Ternary(c, a, b) => {
                if self.eval(c, env)?.is_true() {
                    self.eval(a, env)
                } else {
                    self.eval(b, env)
                }
            }
            Expr::Field(o, name) => {
                let v = self.eval(o, env)?;
                v.field(name)
                    .ok_or_else(|| RtError::Type(format!("no field {name} on {v}")))
            }
            Expr::Call { name, args } => self.eval_call(name, args, env),
            Expr::MethodCall { recv, name, args } => self.eval_method(recv, name, args, env),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinaryOp,
        l: &Expr,
        r: &Expr,
        env: &mut Env,
    ) -> Result<RtValue, RtError> {
        // Short-circuit logical operators with SQL three-valued logic:
        // NULL operands make the result NULL unless the other operand
        // decides it (FALSE for AND, TRUE for OR). `if`/`while` conditions
        // still treat NULL as not-true, matching WHERE-clause filtering.
        match op {
            BinaryOp::And => {
                let lv = self.eval(l, env)?;
                match truth(&lv) {
                    Some(false) => return Ok(RtValue::bool(false)),
                    lt => {
                        let rv = self.eval(r, env)?;
                        return Ok(match (lt, truth(&rv)) {
                            (_, Some(false)) => RtValue::bool(false),
                            (Some(true), Some(true)) => RtValue::bool(true),
                            _ => RtValue::null(),
                        });
                    }
                }
            }
            BinaryOp::Or => {
                let lv = self.eval(l, env)?;
                match truth(&lv) {
                    Some(true) => return Ok(RtValue::bool(true)),
                    lt => {
                        let rv = self.eval(r, env)?;
                        return Ok(match (lt, truth(&rv)) {
                            (_, Some(true)) => RtValue::bool(true),
                            (Some(false), Some(false)) => RtValue::bool(false),
                            _ => RtValue::null(),
                        });
                    }
                }
            }
            _ => {}
        }
        let lv = self.eval(l, env)?;
        let rv = self.eval(r, env)?;
        // Structural (in)equality for non-scalars.
        if matches!(op, BinaryOp::Eq | BinaryOp::Ne)
            && (lv.as_scalar().is_none() || rv.as_scalar().is_none())
        {
            let eq = loose_eq(&lv, &rv);
            return Ok(RtValue::bool(if op == BinaryOp::Eq { eq } else { !eq }));
        }
        let (a, b) = match (lv.as_scalar(), rv.as_scalar()) {
            (Some(a), Some(b)) => (a.clone(), b.clone()),
            _ => {
                return Err(RtError::Type(format!(
                    "operator {} needs scalars, got {lv} and {rv}",
                    op.as_str()
                )))
            }
        };
        // Java-like `+` on strings is concatenation.
        if op == BinaryOp::Add && (matches!(a, Value::Str(_)) || matches!(b, Value::Str(_))) {
            return Ok(RtValue::Scalar(Value::Str(format!("{a}{b}"))));
        }
        let sop = match op {
            BinaryOp::Add => algebra::BinOp::Add,
            BinaryOp::Sub => algebra::BinOp::Sub,
            BinaryOp::Mul => algebra::BinOp::Mul,
            BinaryOp::Div => algebra::BinOp::Div,
            BinaryOp::Mod => algebra::BinOp::Mod,
            BinaryOp::Eq => algebra::BinOp::Eq,
            BinaryOp::Ne => algebra::BinOp::Ne,
            BinaryOp::Lt => algebra::BinOp::Lt,
            BinaryOp::Le => algebra::BinOp::Le,
            BinaryOp::Gt => algebra::BinOp::Gt,
            BinaryOp::Ge => algebra::BinOp::Ge,
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        };
        eval_binop(sop, a, b)
            .map(RtValue::Scalar)
            .map_err(|e| RtError::Type(e.to_string()))
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], env: &mut Env) -> Result<RtValue, RtError> {
        match name {
            "executeQuery" => {
                let rel = self.run_query(args, env)?;
                let fields = Rc::new(rel.fields.clone());
                Ok(RtValue::List(
                    rel.rows
                        .into_iter()
                        .map(|values| RtValue::Row {
                            fields: Rc::clone(&fields),
                            values,
                        })
                        .collect(),
                ))
            }
            "executeScalar" => {
                let rel = self.run_query(args, env)?;
                Ok(RtValue::Scalar(
                    rel.rows
                        .first()
                        .and_then(|r| r.first().cloned())
                        .unwrap_or(Value::Null),
                ))
            }
            "executeBatch" => {
                // One round trip answering a parameterized scalar lookup
                // for a whole batch of parameter values (the batching
                // baseline's primitive; results align with the input list,
                // NULL on miss).
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                let sql = match vals.first() {
                    Some(RtValue::Scalar(Value::Str(s))) => s.clone(),
                    other => {
                        return Err(RtError::Type(format!(
                            "executeBatch needs a SQL string, got {other:?}"
                        )))
                    }
                };
                let params = match vals.get(1) {
                    Some(RtValue::List(xs)) | Some(RtValue::Set(xs)) => xs.clone(),
                    other => {
                        return Err(RtError::Type(format!(
                            "executeBatch needs a parameter list, got {other:?}"
                        )))
                    }
                };
                let ra = parse_sql(&sql).map_err(|e| RtError::Sql(e.to_string()))?;
                // Charge: one round trip + parameter upload + result
                // transfer (batching's cost structure).
                let upload: usize = params
                    .iter()
                    .map(|p| p.as_scalar().map_or(8, Value::wire_size))
                    .sum();
                self.conn.stats.queries += 1;
                self.conn.stats.sim_us +=
                    self.conn.cost.latency_us + upload as f64 * self.conn.cost.per_byte_us;
                let mut out = Vec::with_capacity(params.len());
                for p in &params {
                    let key = p.as_scalar().cloned().ok_or_else(|| {
                        RtError::Type("executeBatch parameters must be scalars".into())
                    })?;
                    let rel = dbms::eval_query(&ra, &self.conn.db, &[key])
                        .map_err(|e| RtError::Sql(e.to_string()))?;
                    let v = rel
                        .rows
                        .first()
                        .and_then(|r| r.first().cloned())
                        .unwrap_or(Value::Null);
                    self.conn.stats.rows += 1;
                    self.conn.stats.bytes += v.wire_size() as u64;
                    self.conn.stats.sim_us += v.wire_size() as f64 * self.conn.cost.per_byte_us
                        + self.conn.cost.per_row_us;
                    out.push(RtValue::Scalar(v));
                }
                Ok(RtValue::List(out))
            }
            "executeUpdate" => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                let sql = match vals.first() {
                    Some(RtValue::Scalar(Value::Str(s))) => s.clone(),
                    other => {
                        return Err(RtError::Type(format!(
                            "executeUpdate needs a SQL string, got {other:?}"
                        )))
                    }
                };
                let params: Vec<Value> = vals[1..]
                    .iter()
                    .map(|v| {
                        v.as_scalar()
                            .cloned()
                            .ok_or_else(|| RtError::Type("DML parameters must be scalars".into()))
                    })
                    .collect::<Result<_, _>>()?;
                // One round trip for the DML statement.
                self.conn.stats.queries += 1;
                self.conn.stats.sim_us += self.conn.cost.latency_us;
                let n = execute_update(&mut self.conn.db, &sql, &params)
                    .map_err(|e| RtError::Sql(e.to_string()))?;
                Ok(RtValue::int(n))
            }
            "max" | "min" => {
                // GREATEST/LEAST semantics (the eval.rs spec): NULL
                // arguments are ignored; NULL only when all are NULL.
                let mut best: Option<Value> = None;
                for a in args {
                    let v = self.eval(a, env)?;
                    let v = v
                        .as_scalar()
                        .cloned()
                        .ok_or_else(|| RtError::Type(format!("{name} needs scalars")))?;
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let take = match v.sql_cmp(&b) {
                                Some(std::cmp::Ordering::Greater) => name == "max",
                                Some(std::cmp::Ordering::Less) => name == "min",
                                _ => false,
                            };
                            if take {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                Ok(best.map(RtValue::Scalar).unwrap_or(RtValue::null()))
            }
            "abs" => {
                let v = self.eval(&args[0], env)?;
                match v.as_scalar() {
                    // checked_abs: abs(i64::MIN) → NULL-on-error.
                    Some(Value::Int(i)) => Ok(RtValue::Scalar(
                        i.checked_abs().map_or(Value::Null, Value::Int),
                    )),
                    Some(Value::Float(f)) => Ok(RtValue::Scalar(Value::Float(f.abs()))),
                    Some(Value::Null) => Ok(RtValue::null()),
                    other => Err(RtError::Type(format!("abs of {other:?}"))),
                }
            }
            "concat" => {
                // CONCAT skips NULL arguments (matches ScalarFunc::Concat).
                let mut s = String::new();
                for a in args {
                    let v = self.eval(a, env)?;
                    if !matches!(v, RtValue::Scalar(Value::Null)) {
                        s.push_str(&v.render());
                    }
                }
                Ok(RtValue::str(s))
            }
            "lower" | "upper" => {
                let v = self.eval(&args[0], env)?;
                match v.as_scalar() {
                    Some(Value::Str(s)) => Ok(RtValue::str(if name == "lower" {
                        s.to_lowercase()
                    } else {
                        s.to_uppercase()
                    })),
                    Some(Value::Null) => Ok(RtValue::null()),
                    other => Err(RtError::Type(format!("{name} of {other:?}"))),
                }
            }
            "length" => {
                let v = self.eval(&args[0], env)?;
                match v.as_scalar() {
                    Some(Value::Str(s)) => Ok(RtValue::int(s.len() as i64)),
                    Some(Value::Null) => Ok(RtValue::null()),
                    other => Err(RtError::Type(format!("length of {other:?}"))),
                }
            }
            "coalesce" => {
                for a in args {
                    let v = self.eval(a, env)?;
                    if !matches!(v, RtValue::Scalar(Value::Null)) {
                        return Ok(v);
                    }
                }
                Ok(RtValue::null())
            }
            "list" => Ok(RtValue::List(Vec::new())),
            "set" => Ok(RtValue::Set(Vec::new())),
            "pair" => {
                let a = self.eval(&args[0], env)?;
                let b = self.eval(&args[1], env)?;
                Ok(RtValue::Pair(Box::new(a), Box::new(b)))
            }
            user => {
                // User-defined imp function.
                if self.program.function(user).is_none() {
                    return Err(RtError::Undefined(format!("function {user}")));
                }
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.call(user, vals)
            }
        }
    }

    fn run_query(&mut self, args: &[Expr], env: &mut Env) -> Result<dbms::Relation, RtError> {
        let mut vals = Vec::new();
        for a in args {
            vals.push(self.eval(a, env)?);
        }
        let sql = match vals.first() {
            Some(RtValue::Scalar(Value::Str(s))) => s.clone(),
            other => {
                return Err(RtError::Type(format!(
                    "executeQuery needs a SQL string, got {other:?}"
                )))
            }
        };
        let params: Vec<Value> = vals[1..]
            .iter()
            .map(|v| {
                v.as_scalar()
                    .cloned()
                    .ok_or_else(|| RtError::Type("query parameters must be scalars".into()))
            })
            .collect::<Result<_, _>>()?;
        let ra = parse_sql(&sql).map_err(|e| RtError::Sql(e.to_string()))?;
        self.conn
            .execute(&ra, &params)
            .map_err(|e| RtError::Sql(e.to_string()))
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        name: &str,
        args: &[Expr],
        env: &mut Env,
    ) -> Result<RtValue, RtError> {
        // Mutating methods require a variable receiver so the mutation is
        // visible (matching the analysis crate's model).
        let mutating = matches!(
            name,
            "add" | "insert" | "append" | "remove" | "clear" | "addAll"
        );
        if mutating {
            let var = match recv {
                Expr::Var(v) => *v,
                other => {
                    return Err(RtError::Type(format!(
                        "mutating method {name} needs a variable receiver, got {other:?}"
                    )))
                }
            };
            let mut arg_vals = Vec::new();
            for a in args {
                arg_vals.push(self.eval(a, env)?);
            }
            let coll = env
                .get_mut(&var)
                .ok_or_else(|| RtError::Undefined(format!("variable {var}")))?;
            match (coll, name) {
                (RtValue::List(items), "add" | "append" | "insert") => {
                    items.push(arg_vals.remove(0));
                }
                (RtValue::Set(items), "add" | "append" | "insert") => {
                    let v = arg_vals.remove(0);
                    if !items.iter().any(|e| loose_eq(e, &v)) {
                        items.push(v);
                    }
                }
                (RtValue::List(items) | RtValue::Set(items), "remove") => {
                    let v = arg_vals.remove(0);
                    items.retain(|e| !loose_eq(e, &v));
                }
                (RtValue::List(items) | RtValue::Set(items), "clear") => items.clear(),
                (RtValue::List(items), "addAll") => match arg_vals.remove(0) {
                    RtValue::List(more) | RtValue::Set(more) => items.extend(more),
                    other => {
                        return Err(RtError::Type(format!(
                            "addAll needs a collection, got {other}"
                        )))
                    }
                },
                (c, m) => return Err(RtError::Type(format!("cannot {m} on {c}"))),
            }
            return Ok(RtValue::Unit);
        }
        let rv = self.eval(recv, env)?;
        match (name, &rv) {
            ("size", RtValue::List(v) | RtValue::Set(v)) => Ok(RtValue::int(v.len() as i64)),
            ("isEmpty", RtValue::List(v) | RtValue::Set(v)) => Ok(RtValue::bool(v.is_empty())),
            ("contains", RtValue::List(v) | RtValue::Set(v)) => {
                let needle = self.eval(&args[0], env)?;
                Ok(RtValue::bool(v.iter().any(|e| loose_eq(e, &needle))))
            }
            ("get", RtValue::List(v)) => {
                let idx = self.eval(&args[0], env)?;
                match idx.as_scalar() {
                    Some(Value::Int(i)) if (*i as usize) < v.len() => Ok(v[*i as usize].clone()),
                    other => Err(RtError::Type(format!("bad index {other:?}"))),
                }
            }
            ("first", RtValue::List(v) | RtValue::Set(v)) => {
                Ok(v.first().cloned().unwrap_or(RtValue::null()))
            }
            (m, r) => Err(RtError::Type(format!("unknown method {m} on {r}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbms::gen::{gen_board, gen_emp};
    use imp::parser::parse_program;

    fn run_fn(src: &str, db: dbms::Database, f: &str) -> (RtValue, Vec<String>, dbms::Stats) {
        let p = parse_program(src).unwrap();
        let mut i = Interp::new(&p, Connection::new(db));
        let v = i.call(f, vec![]).unwrap();
        (v, i.output.clone(), i.conn.stats)
    }

    #[test]
    fn find_max_score_runs() {
        // Paper Figure 2.
        let src = r#"
            fn findMaxScore() {
                boards = executeQuery("SELECT * FROM board WHERE rnd_id = 1");
                scoreMax = 0;
                for (t in boards) {
                    score = max(max(max(t.p1, t.p2), t.p3), t.p4);
                    if (score > scoreMax) scoreMax = score;
                }
                return scoreMax;
            }
        "#;
        let db = gen_board(100, 4, 11);
        let (v, _, stats) = run_fn(src, db.clone(), "findMaxScore");
        // Cross-check against the aggregate query.
        let q = algebra::parse::parse_sql(
            "SELECT MAX(GREATEST(p1, p2, p3, p4)) AS m FROM board WHERE rnd_id = 1",
        )
        .unwrap();
        let expected = dbms::eval_query(&q, &db, &[]).unwrap().rows[0][0].clone();
        assert_eq!(v, RtValue::Scalar(expected));
        assert_eq!(stats.queries, 1);
        assert!(stats.rows > 1, "original fetches all rows");
    }

    #[test]
    fn collection_building_loop() {
        let src = r#"
            fn names() {
                rows = executeQuery("SELECT * FROM emp WHERE salary > 100000");
                out = list();
                for (r in rows) { out.add(r.name); }
                return out;
            }
        "#;
        let (v, _, _) = run_fn(src, gen_emp(50, 5), "names");
        match v {
            RtValue::List(items) => assert!(!items.is_empty()),
            other => panic!("expected list, got {other}"),
        }
    }

    #[test]
    fn set_deduplicates() {
        let src = r#"
            fn depts() {
                rows = executeQuery("SELECT * FROM emp");
                out = set();
                for (r in rows) { out.add(r.dept); }
                return out;
            }
        "#;
        let (v, _, _) = run_fn(src, gen_emp(100, 5), "depts");
        match v {
            RtValue::Set(items) => assert_eq!(items.len(), 3, "three departments"),
            other => panic!("expected set, got {other}"),
        }
    }

    #[test]
    fn print_flattens_lists() {
        let src = r#"
            fn f() {
                xs = list();
                xs.add(1);
                xs.add(2);
                print(xs);
            }
        "#;
        let (_, out, _) = run_fn(src, dbms::Database::new(), "f");
        assert_eq!(out, vec!["1", "2"]);
    }

    #[test]
    fn user_function_calls() {
        let src = r#"
            fn double(x) { return x * 2; }
            fn f() { return double(21); }
        "#;
        let (v, _, _) = run_fn(src, dbms::Database::new(), "f");
        assert_eq!(v, RtValue::int(42));
    }

    #[test]
    fn nested_loop_aggregation() {
        // Group-by pattern: per-department total (Rule T5.2's imperative shape).
        let src = r#"
            fn totals() {
                depts = executeQuery("SELECT DISTINCT dept FROM emp");
                out = list();
                for (d in depts) {
                    total = 0;
                    rows = executeQuery("SELECT salary FROM emp WHERE dept = ?", d.dept);
                    for (r in rows) { total = total + r.salary; }
                    out.add(pair(d.dept, total));
                }
                return out;
            }
        "#;
        let db = gen_emp(60, 8);
        let (v, _, stats) = run_fn(src, db.clone(), "totals");
        let items = match v {
            RtValue::List(items) => items,
            other => panic!("{other}"),
        };
        assert_eq!(items.len(), 3);
        assert_eq!(stats.queries, 4, "1 outer + 3 inner");
        // Check one group against SQL.
        let q = algebra::parse::parse_sql("SELECT dept, SUM(salary) AS s FROM emp GROUP BY dept")
            .unwrap();
        let rel = dbms::eval_query(&q, &db, &[]).unwrap();
        for row in &rel.rows {
            let (d, s) = (row[0].clone(), row[1].clone());
            assert!(items.iter().any(|p| match p {
                RtValue::Pair(a, b) =>
                    **a == RtValue::Scalar(d.clone()) && **b == RtValue::Scalar(s.clone()),
                _ => false,
            }));
        }
    }

    #[test]
    fn budget_exhaustion_reports() {
        let src = "fn f() { x = 0; while (true) { x = x + 1; } }";
        let p = parse_program(src).unwrap();
        let mut i = Interp::new(&p, Connection::new(dbms::Database::new())).with_budget(1000);
        assert_eq!(i.call("f", vec![]), Err(RtError::BudgetExhausted));
    }

    #[test]
    fn string_concat_with_plus() {
        let src = r#"fn f() { return "a" + 1 + "b"; }"#;
        let (v, _, _) = run_fn(src, dbms::Database::new(), "f");
        assert_eq!(v, RtValue::str("a1b"));
    }

    #[test]
    fn execute_update_roundtrip() {
        let src = r#"
            fn f() {
                executeUpdate("INSERT INTO emp VALUES (999, 'neo', 'eng', 1)");
                r = executeQuery("SELECT * FROM emp WHERE id = 999");
                return r.size();
            }
        "#;
        let (v, _, stats) = run_fn(src, gen_emp(5, 2), "f");
        assert_eq!(v, RtValue::int(1));
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn break_exits_loop() {
        let src = r#"
            fn f() {
                rows = executeQuery("SELECT * FROM emp");
                n = 0;
                for (r in rows) { n = n + 1; if (n >= 3) break; }
                return n;
            }
        "#;
        let (v, _, _) = run_fn(src, gen_emp(10, 3), "f");
        assert_eq!(v, RtValue::int(3));
    }

    #[test]
    fn exists_flag_pattern() {
        let src = r#"
            fn hasBig() {
                rows = executeQuery("SELECT * FROM emp");
                found = false;
                for (r in rows) { if (r.salary > 100000) found = true; }
                return found;
            }
        "#;
        let (v, _, _) = run_fn(src, gen_emp(100, 4), "hasBig");
        assert_eq!(v, RtValue::bool(true));
    }

    #[test]
    fn scalar_query_returns_single_value() {
        let src = r#"fn f() { return executeScalar("SELECT COUNT(*) AS c FROM emp"); }"#;
        let (v, _, _) = run_fn(src, gen_emp(7, 1), "f");
        assert_eq!(v, RtValue::int(7));
    }
}

#[cfg(test)]
mod method_tests {
    use super::*;
    use imp::parser::parse_program;

    fn eval(src: &str) -> RtValue {
        let p = parse_program(src).unwrap();
        let mut i = Interp::new(&p, Connection::new(dbms::Database::new()));
        i.call("f", vec![]).unwrap()
    }

    #[test]
    fn list_remove_and_clear() {
        assert_eq!(
            eval("fn f() { xs = list(); xs.add(1); xs.add(2); xs.add(1); xs.remove(1); return xs.size(); }"),
            RtValue::int(1)
        );
        assert_eq!(
            eval("fn f() { xs = list(); xs.add(1); xs.clear(); return xs.isEmpty(); }"),
            RtValue::bool(true)
        );
    }

    #[test]
    fn add_all_concatenates() {
        assert_eq!(
            eval("fn f() { a = list(); a.add(1); b = list(); b.add(2); b.add(3); a.addAll(b); return a.size(); }"),
            RtValue::int(3)
        );
    }

    #[test]
    fn get_and_first() {
        assert_eq!(
            eval("fn f() { a = list(); a.add(10); a.add(20); return a.get(1); }"),
            RtValue::int(20)
        );
        assert_eq!(
            eval("fn f() { a = list(); a.add(7); return a.first(); }"),
            RtValue::int(7)
        );
        assert_eq!(
            eval("fn f() { a = list(); return a.first(); }"),
            RtValue::null()
        );
    }

    #[test]
    fn contains_uses_loose_equality() {
        assert_eq!(
            eval("fn f() { a = set(); a.add(3); return a.contains(3); }"),
            RtValue::bool(true)
        );
        assert_eq!(
            eval("fn f() { a = set(); a.add(3); return a.contains(4); }"),
            RtValue::bool(false)
        );
    }

    #[test]
    fn out_of_range_get_is_error() {
        let p = parse_program("fn f() { a = list(); return a.get(0); }").unwrap();
        let mut i = Interp::new(&p, Connection::new(dbms::Database::new()));
        assert!(matches!(i.call("f", vec![]), Err(RtError::Type(_))));
    }

    #[test]
    fn mutating_method_on_non_variable_is_error() {
        let p = parse_program("fn f() { list().add(1); return 0; }").unwrap();
        let mut i = Interp::new(&p, Connection::new(dbms::Database::new()));
        assert!(matches!(i.call("f", vec![]), Err(RtError::Type(_))));
    }

    #[test]
    fn coalesce_builtin() {
        assert_eq!(
            eval("fn f() { return coalesce(null, null, 5, 7); }"),
            RtValue::int(5)
        );
        assert_eq!(
            eval("fn f() { return coalesce(null, null); }"),
            RtValue::null()
        );
    }

    #[test]
    fn ternary_and_comparisons() {
        assert_eq!(
            eval("fn f() { x = 3; return x > 2 ? \"big\" : \"small\"; }"),
            RtValue::str("big")
        );
        assert_eq!(
            eval("fn f() { return 2 <= 2 && !(1 == 2); }"),
            RtValue::bool(true)
        );
    }

    #[test]
    fn wrong_arity_call_is_error() {
        let p = parse_program("fn g(a, b) { return a; } fn f() { return g(1); }").unwrap();
        let mut i = Interp::new(&p, Connection::new(dbms::Database::new()));
        assert!(matches!(i.call("f", vec![]), Err(RtError::Type(_))));
    }

    #[test]
    fn undefined_variable_is_error() {
        let p = parse_program("fn f() { return ghost; }").unwrap();
        let mut i = Interp::new(&p, Connection::new(dbms::Database::new()));
        assert!(matches!(i.call("f", vec![]), Err(RtError::Undefined(_))));
    }
}
