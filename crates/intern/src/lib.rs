//! `intern` — the crate-wide string interner behind [`Symbol`].
//!
//! Variable, field, and function names flow through every layer of the
//! pipeline (AST → def-use/DDG → ve-Map → ee-DAG → rules), and before this
//! crate existed each layer carried them as owned `String`s: every clone an
//! allocation, every comparison a byte scan. A [`Symbol`] is a `u32` ticket
//! into a global, append-only, leak-backed string table: `Copy`, 4 bytes,
//! equality and hashing on the integer.
//!
//! Two properties the rest of the workspace relies on (see DESIGN.md "The
//! symbol interner"):
//!
//! 1. **Resolution is lock-free.** Interned strings live in leaked,
//!    append-only buckets; [`Symbol::as_str`] reads an atomic pointer and
//!    indexes — no lock, so `Display`/`Ord` in hot paths never contend.
//!    Only interning a *new* string takes the write lock.
//! 2. **`Ord` compares the resolved strings**, not the ticket numbers (with
//!    a ticket-equality fast path). `BTreeMap<Symbol, _>`/`BTreeSet<Symbol>`
//!    therefore iterate in name order exactly as their `String`-keyed
//!    predecessors did — diagnostics ordering, report JSON, and ve-Map
//!    iteration stay byte-identical no matter in which order symbols were
//!    first interned.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering as Atomic};
use std::sync::{OnceLock, RwLock};

/// An interned string: a 4-byte, `Copy` ticket into the global table.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Symbol(u32);

/// Number of entries in bucket 0; bucket `i` holds `FIRST_BUCKET << i`.
const FIRST_BUCKET: usize = 64;
/// Enough buckets for 2^37 symbols — effectively unbounded.
const BUCKETS: usize = 32;

/// Lock-free resolution table: leaked bucket arrays of `&'static str`.
struct Table {
    buckets: [AtomicPtr<&'static str>; BUCKETS],
    /// Published length: slots `< len` are fully initialized.
    len: AtomicU32,
}

/// Write-side state: the dedup map plus the next free slot.
struct WriteSide {
    map: std::collections::HashMap<&'static str, u32>,
}

fn table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| Table {
        buckets: [const { AtomicPtr::new(ptr::null_mut()) }; BUCKETS],
        len: AtomicU32::new(0),
    })
}

fn write_side() -> &'static RwLock<WriteSide> {
    static WRITE: OnceLock<RwLock<WriteSide>> = OnceLock::new();
    WRITE.get_or_init(|| {
        RwLock::new(WriteSide {
            map: std::collections::HashMap::new(),
        })
    })
}

/// Bucket index and offset for a slot index.
#[inline]
fn locate(idx: usize) -> (usize, usize) {
    let virt = idx + FIRST_BUCKET;
    let bucket = (virt.ilog2() as usize) - FIRST_BUCKET.ilog2() as usize;
    let offset = virt - (FIRST_BUCKET << bucket);
    (bucket, offset)
}

fn bucket_capacity(bucket: usize) -> usize {
    FIRST_BUCKET << bucket
}

impl Symbol {
    /// Intern `s`, returning its ticket. Idempotent: equal strings always
    /// yield the same `Symbol`.
    pub fn intern(s: &str) -> Symbol {
        let write = write_side();
        if let Some(&id) = write.read().unwrap().map.get(s) {
            return Symbol(id);
        }
        let mut w = write.write().unwrap();
        if let Some(&id) = w.map.get(s) {
            return Symbol(id);
        }
        let t = table();
        let id = t.len.load(Atomic::Relaxed);
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let (bucket, offset) = locate(id as usize);
        let mut slots = t.buckets[bucket].load(Atomic::Acquire);
        if slots.is_null() {
            let fresh: Box<[&'static str]> = vec![""; bucket_capacity(bucket)].into_boxed_slice();
            slots = Box::leak(fresh).as_mut_ptr();
            t.buckets[bucket].store(slots, Atomic::Release);
        }
        // Safety: `offset < bucket_capacity(bucket)` by construction, the
        // bucket allocation above is leaked (never freed), and slot `id` is
        // written exactly once — here, under the write lock, before `len`
        // is advanced past it.
        unsafe { slots.add(offset).write(leaked) };
        t.len.store(id + 1, Atomic::Release);
        w.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned text. Lock-free.
    #[inline]
    pub fn as_str(self) -> &'static str {
        let t = table();
        debug_assert!(self.0 < t.len.load(Atomic::Acquire), "foreign Symbol");
        let (bucket, offset) = locate(self.0 as usize);
        let slots = t.buckets[bucket].load(Atomic::Acquire);
        // Safety: a `Symbol` is only ever constructed by `intern`, which
        // published both the bucket pointer and the slot before returning.
        unsafe { *slots.add(offset) }
    }

    /// The raw ticket number (diagnostic/bench use only — *not* stable
    /// across processes; never persist it).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// True when the interned text is empty.
    pub fn is_empty(self) -> bool {
        self.as_str().is_empty()
    }
}

impl Default for Symbol {
    /// The empty string's symbol.
    fn default() -> Self {
        Symbol::intern("")
    }
}

impl Hash for Symbol {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl Ord for Symbol {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Name order, not ticket order — keeps `BTreeMap<Symbol, _>`
        // iteration identical to the `String`-keyed maps it replaced.
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for Symbol {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Deref for Symbol {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        *s
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.as_str().to_owned()
    }
}

impl PartialEq<str> for Symbol {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    #[inline]
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    #[inline]
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    #[inline]
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    #[inline]
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Symbol> for String {
    #[inline]
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("total");
        let b = Symbol::intern("total");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "total");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("a"), Symbol::intern("b"));
    }

    #[test]
    fn ord_is_name_order_not_ticket_order() {
        // Intern in reverse name order so ticket order disagrees.
        let z = Symbol::intern("zzz-ord-test");
        let a = Symbol::intern("aaa-ord-test");
        assert!(a < z, "name order must win");
        let set: BTreeSet<Symbol> = [z, a].into_iter().collect();
        let names: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["aaa-ord-test", "zzz-ord-test"]);
    }

    #[test]
    fn btreemap_iterates_in_name_order() {
        let mut m = BTreeMap::new();
        for name in ["delta", "alpha", "charlie", "bravo"] {
            m.insert(Symbol::intern(name), ());
        }
        let keys: Vec<&str> = m.keys().map(|s| s.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "bravo", "charlie", "delta"]);
    }

    #[test]
    fn str_comparisons_work_both_ways() {
        let s = Symbol::intern("executeQuery");
        assert!(s == "executeQuery");
        assert!("executeQuery" == s);
        assert!(s == "executeQuery");
        assert!(s.starts_with("execute"), "Deref<Target=str> methods");
    }

    #[test]
    fn many_symbols_cross_bucket_boundaries() {
        let mut ids = Vec::new();
        for i in 0..500 {
            ids.push(Symbol::intern(&format!("bucket-test-{i}")));
        }
        for (i, s) in ids.iter().enumerate() {
            assert_eq!(s.as_str(), format!("bucket-test-{i}"));
        }
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("concurrent-{}", (i + t) % 100)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all {
            for s in row {
                assert!(s.as_str().starts_with("concurrent-"));
            }
        }
        // Same text ⇒ same ticket, across threads.
        let a = Symbol::intern("concurrent-0");
        for row in &all {
            for s in row {
                if s.as_str() == "concurrent-0" {
                    assert_eq!(*s, a);
                }
            }
        }
    }

    #[test]
    fn size_is_four_bytes() {
        assert_eq!(std::mem::size_of::<Symbol>(), 4);
        assert_eq!(std::mem::size_of::<Option<Symbol>>(), 8);
    }
}
