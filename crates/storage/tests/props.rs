//! Property tests for the storage engine: slotted-page cell round-trips,
//! B-tree insert/scan against a `BTreeMap` reference, and flush/reopen
//! persistence of a whole store.

use std::collections::BTreeMap;

use proptest::prelude::*;
use storage::page::{Page, PageKind, MAX_CELL};
use storage::pager::Pager;
use storage::{bufpool::BufferPool, Store};

/// A batch of distinct (key, payload) cells small enough for one page.
fn arb_cells() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    proptest::collection::vec(
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..40)),
        0..60,
    )
    .prop_map(|mut kvs| {
        kvs.sort_by_key(|(k, _)| *k);
        kvs.dedup_by_key(|(k, _)| *k);
        kvs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cells inserted at their binary-search position come back in key
    /// order, byte-for-byte, and `find` locates every key.
    #[test]
    fn page_cells_round_trip(cells in arb_cells()) {
        let mut page = Page::init(PageKind::Leaf);
        let mut kept: Vec<(u64, Vec<u8>)> = Vec::new();
        for (key, payload) in &cells {
            let mut cell = key.to_le_bytes().to_vec();
            cell.extend_from_slice(payload);
            let pos = page.find(*key).unwrap_err();
            if page.insert_cell(pos, &cell) {
                kept.insert(pos, (*key, payload.clone()));
            }
        }
        prop_assert_eq!(page.nslots(), kept.len());
        for (i, (key, payload)) in kept.iter().enumerate() {
            prop_assert_eq!(page.key(i), *key);
            prop_assert_eq!(&page.cell(i)[8..], payload.as_slice());
            prop_assert_eq!(page.find(*key), Ok(i));
        }
        // Serialization invariant: the cells() listing agrees slot by slot.
        let listed = page.cells();
        prop_assert_eq!(listed.len(), kept.len());
        for (cell, (key, payload)) in listed.iter().zip(&kept) {
            prop_assert_eq!(&cell[..8], key.to_le_bytes().as_slice());
            prop_assert_eq!(&cell[8..], payload.as_slice());
        }
    }

    /// An oversized record never fits a page.
    #[test]
    fn oversized_cells_are_rejected(extra in 1usize..64) {
        let mut page = Page::init(PageKind::Leaf);
        let cell = vec![0u8; MAX_CELL + extra];
        prop_assert!(!page.insert_cell(0, &cell));
    }

    /// B-tree insert + point lookup + ordered scan agree with a `BTreeMap`
    /// under arbitrary insertion orders and a tiny buffer pool.
    #[test]
    fn btree_matches_reference(
        keys in proptest::collection::vec(any::<u64>(), 0..700),
        budget in 2usize..12,
    ) {
        let mut pager = Pager::in_memory();
        let mut pool = BufferPool::new(budget);
        let mut root = storage::btree::create(&mut pager, &mut pool).unwrap();
        let mut reference = BTreeMap::new();
        for key in &keys {
            let record = key.to_be_bytes().to_vec();
            // Last write wins in the reference; the B-tree keeps first —
            // skip duplicates so both sides see the same multiset.
            if reference.contains_key(key) {
                continue;
            }
            root = storage::btree::insert(&mut pager, &mut pool, root, *key, &record).unwrap();
            reference.insert(*key, record);
        }
        for (key, record) in &reference {
            let got = storage::btree::get(&mut pager, &mut pool, root, *key).unwrap();
            prop_assert_eq!(got.as_ref(), Some(record));
        }
        prop_assert_eq!(
            storage::btree::get(&mut pager, &mut pool, root, u64::MAX / 2 + 12345).unwrap()
                .is_some(),
            reference.contains_key(&(u64::MAX / 2 + 12345))
        );
    }

    /// Whole-store persistence: rows appended through the public API
    /// survive flush + reopen with identical bytes, rowids, and row count.
    #[test]
    fn store_flush_reopen_round_trips(
        rows in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..120), 1..80),
        frames in 2usize..10,
    ) {
        let dir = std::env::temp_dir().join(format!("eqsql-storage-props-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{}.eqs", rows.len()));

        let store = Store::create(&path, frames).unwrap();
        store.create_table("t", 1).unwrap();
        let mut expect = Vec::new();
        for record in &rows {
            let rowid = store.append("t", record, &[None]).unwrap();
            expect.push((rowid, record.clone()));
        }
        store.flush().unwrap();
        drop(store);

        let store = Store::open(&path, frames).unwrap();
        prop_assert_eq!(store.row_count("t").unwrap(), rows.len() as u64);
        let got: Vec<(u64, Vec<u8>)> = store
            .scan("t")
            .unwrap()
            .collect::<storage::Result<_>>()
            .unwrap();
        prop_assert_eq!(got, expect);
        let _ = std::fs::remove_file(&path);
    }
}
