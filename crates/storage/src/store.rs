//! The store façade: named append-only tables over one paged file.
//!
//! Page 0 is the meta page: magic, format version, and the table
//! directory (name, B-tree root, next rowid, row count, column count).
//! Every other page belongs to some table's B-tree. The directory is
//! rewritten on [`Store::flush`]; column sketches ([`crate::stats`]) are
//! memory-only, so a reopened store reports row counts but empty column
//! statistics until rows are appended again.
//!
//! A `Store` is a cheap clonable handle (`Arc<Mutex<…>>`): the `dbms`
//! layer clones whole `Database` values freely (the fuzzer runs the
//! original and the extracted program against clones), and paged tables in
//! those clones share this one store read-only. Scans lock per *leaf
//! page*, not per row — a [`ScanCursor`] buffers one leaf's records at a
//! time, so concurrent cursors (nested correlated loops) interleave
//! without deadlock and memory stays bounded by the leaf size, not the
//! table size.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::btree;
use crate::bufpool::{BufPoolStats, BufferPool};
use crate::page::{Page, PageKind, HEADER, PAGE_SIZE};
use crate::pager::Pager;
use crate::stats::{StatsBuilder, TableStatistics};
use crate::{Result, StorageError};

const MAGIC: u32 = 0x4551_5353; // "EQSS"
const VERSION: u16 = 1;

/// Default buffer-pool frame budget (64 frames = 256 KiB of cache).
pub const DEFAULT_FRAMES: usize = 64;

#[derive(Clone)]
struct TableEntry {
    root: u32,
    next_rowid: u64,
    row_count: u64,
    ncols: u16,
    stats: StatsBuilder,
}

struct Inner {
    pager: Pager,
    pool: BufferPool,
    dir: BTreeMap<String, TableEntry>,
    /// Set for [`Store::temp`] stores: the file is removed on last drop.
    temp_path: Option<PathBuf>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(p) = &self.temp_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// A clonable handle to one paged store.
#[derive(Clone)]
pub struct Store {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("store lock");
        f.debug_struct("Store")
            .field("tables", &inner.dir.keys().collect::<Vec<_>>())
            .field("pages", &inner.pager.page_count())
            .field("frames", &inner.pool.budget())
            .finish()
    }
}

impl Store {
    fn from_inner(inner: Inner) -> Store {
        Store {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// Create a new store file (truncating any existing one) with the given
    /// buffer-pool frame budget.
    pub fn create(path: &Path, frames: usize) -> Result<Store> {
        let mut pager = Pager::create(path)?;
        let meta = pager.allocate()?;
        debug_assert_eq!(meta, 0, "meta page must be page 0");
        let mut inner = Inner {
            pager,
            pool: BufferPool::new(frames),
            dir: BTreeMap::new(),
            temp_path: None,
        };
        write_meta(&mut inner)?;
        Ok(Store::from_inner(inner))
    }

    /// Open an existing store file.
    pub fn open(path: &Path, frames: usize) -> Result<Store> {
        let mut pager = Pager::open(path)?;
        let dir = read_meta(&mut pager)?;
        Ok(Store::from_inner(Inner {
            pager,
            pool: BufferPool::new(frames),
            dir,
            temp_path: None,
        }))
    }

    /// A memory-backed store (no file, no persistence) — used by the
    /// fuzzer's `--store` mode and unit tests.
    pub fn in_memory(frames: usize) -> Store {
        let mut pager = Pager::in_memory();
        let meta = pager.allocate().expect("in-memory allocate");
        debug_assert_eq!(meta, 0);
        let mut inner = Inner {
            pager,
            pool: BufferPool::new(frames),
            dir: BTreeMap::new(),
            temp_path: None,
        };
        write_meta(&mut inner).expect("in-memory meta write");
        Store::from_inner(inner)
    }

    /// A store backed by a fresh uniquely named file in the system temp
    /// directory, removed when the last handle drops.
    pub fn temp(frames: usize) -> Result<Store> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let name = format!(
            "eqsql-store-{}-{}-{nanos}.pages",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        );
        let path = std::env::temp_dir().join(name);
        let store = Store::create(&path, frames)?;
        store.inner.lock().expect("store lock").temp_path = Some(path);
        Ok(store)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("store lock poisoned")
    }

    /// Create (or reset) a table with `ncols` columns.
    pub fn create_table(&self, name: &str, ncols: usize) -> Result<()> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        // "Ensure" semantics: re-creating a table that already exists (the
        // reopen path — catalogs are re-declared against an opened store)
        // attaches to the persisted entry instead of wiping it.
        if let Some(entry) = inner.dir.get(name) {
            if entry.ncols as usize != ncols {
                return Err(StorageError::Corrupt(format!(
                    "table {name} exists with {} column(s), re-declared with {ncols}",
                    entry.ncols
                )));
            }
            return Ok(());
        }
        let root = btree::create(&mut inner.pager, &mut inner.pool)?;
        inner.dir.insert(
            name.to_string(),
            TableEntry {
                root,
                next_rowid: 1,
                row_count: 0,
                ncols: ncols as u16,
                stats: StatsBuilder::new(ncols),
            },
        );
        Ok(())
    }

    /// Append a record to `table`, observing per-column value hashes for
    /// statistics; returns the assigned rowid (monotone from 1, so scan
    /// order is insertion order).
    pub fn append(&self, table: &str, record: &[u8], hashes: &[Option<u64>]) -> Result<u64> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        let entry = inner
            .dir
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))?;
        let rowid = entry.next_rowid;
        let root = btree::insert(&mut inner.pager, &mut inner.pool, entry.root, rowid, record)?;
        entry.root = root;
        entry.next_rowid += 1;
        entry.row_count += 1;
        entry.stats.observe_row(hashes);
        Ok(rowid)
    }

    /// Point lookup by rowid.
    pub fn get(&self, table: &str, rowid: u64) -> Result<Option<Vec<u8>>> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        let root = inner
            .dir
            .get(table)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))?
            .root;
        btree::get(&mut inner.pager, &mut inner.pool, root, rowid)
    }

    /// Rows in `table`.
    pub fn row_count(&self, table: &str) -> Result<u64> {
        let inner = self.lock();
        inner
            .dir
            .get(table)
            .map(|e| e.row_count)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))
    }

    /// Table names in the store, sorted.
    pub fn tables(&self) -> Vec<String> {
        self.lock().dir.keys().cloned().collect()
    }

    /// This table's statistics snapshot. Column sketches are only reported
    /// when they observed every row (i.e. not after a reopen).
    pub fn statistics(&self, table: &str) -> Result<TableStatistics> {
        let inner = self.lock();
        let entry = inner
            .dir
            .get(table)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))?;
        let mut snap = entry.stats.snapshot();
        if entry.stats.rows() != entry.row_count {
            snap.columns.clear();
        }
        snap.rows = entry.row_count;
        Ok(snap)
    }

    /// Begin an ordered scan of `table` (rowid order = insertion order).
    pub fn scan(&self, table: &str) -> Result<ScanCursor> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        let root = inner
            .dir
            .get(table)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))?
            .root;
        let leaf = btree::first_leaf(&mut inner.pager, &mut inner.pool, root)?;
        Ok(ScanCursor {
            store: self.clone(),
            next_leaf: Some(leaf),
            buf: Vec::new(),
            idx: 0,
        })
    }

    /// Flush: write back dirty frames and the meta page, then sync.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        inner.pool.flush_all(&mut inner.pager)?;
        write_meta(inner)?;
        inner.pager.sync()
    }

    /// Buffer-pool counters for this store.
    pub fn pool_stats(&self) -> BufPoolStats {
        self.lock().pool.stats()
    }

    /// The buffer pool's frame budget (frames × page size bounds cache
    /// memory).
    pub fn frame_budget(&self) -> usize {
        self.lock().pool.budget()
    }

    /// Total pages in the backing file.
    pub fn page_count(&self) -> u32 {
        self.lock().pager.page_count()
    }

    /// Column count recorded for `table` at creation.
    pub fn column_count(&self, table: &str) -> Result<usize> {
        let inner = self.lock();
        inner
            .dir
            .get(table)
            .map(|e| e.ncols as usize)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))
    }

    /// Do two handles refer to the same underlying store?
    pub fn same_store(&self, other: &Store) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Deep-snapshot this store into an independent in-memory image.
    ///
    /// Dirty frames are flushed and the meta page rewritten so the page
    /// image is current, then every page is copied into a fresh in-memory
    /// pager with its own empty buffer pool. Writes against the fork never
    /// touch the original (and vice versa) — this is what lets a paged
    /// `Database` be cloned for differential runs that mutate state.
    /// Column sketches are cloned too, so the fork's statistics match.
    pub fn fork(&self) -> Result<Store> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        inner.pool.flush_all(&mut inner.pager)?;
        write_meta(inner)?;
        let pager = inner.pager.fork_image()?;
        Ok(Store::from_inner(Inner {
            pager,
            pool: BufferPool::new(inner.pool.budget()),
            dir: inner.dir.clone(),
            temp_path: None,
        }))
    }

    /// Reset `table` to empty: fresh B-tree root, rowids restarting at 1,
    /// zeroed statistics. The old tree's pages are leaked in the backing
    /// image (there is no free list) — acceptable for the materialize-and-
    /// rewrite path behind paged UPDATE/DELETE, which operates on forked
    /// in-memory images at fuzz scale.
    pub fn truncate_table(&self, name: &str) -> Result<()> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        if !inner.dir.contains_key(name) {
            return Err(StorageError::UnknownTable(name.to_string()));
        }
        let root = btree::create(&mut inner.pager, &mut inner.pool)?;
        let entry = inner.dir.get_mut(name).expect("presence checked above");
        let ncols = entry.ncols as usize;
        entry.root = root;
        entry.next_rowid = 1;
        entry.row_count = 0;
        entry.stats = StatsBuilder::new(ncols);
        Ok(())
    }
}

/// An ordered cursor over one table's records.
///
/// Buffers one leaf page of records at a time: the store lock is taken
/// once per leaf, and memory held is one leaf's worth regardless of table
/// size.
pub struct ScanCursor {
    store: Store,
    next_leaf: Option<u32>,
    buf: Vec<(u64, Vec<u8>)>,
    idx: usize,
}

impl Iterator for ScanCursor {
    type Item = Result<(u64, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.idx < self.buf.len() {
                let item = std::mem::take(&mut self.buf[self.idx]);
                self.idx += 1;
                return Some(Ok(item));
            }
            let leaf = self.next_leaf?;
            let mut inner = self.store.lock();
            let inner = &mut *inner;
            let loaded = inner.pool.with_page(&mut inner.pager, leaf, |p| {
                let cells: Vec<(u64, Vec<u8>)> = (0..p.nslots())
                    .map(|i| {
                        let c = p.cell(i);
                        let key = u64::from_le_bytes(c[..8].try_into().expect("key bytes"));
                        (key, c[8..].to_vec())
                    })
                    .collect();
                (cells, p.extra())
            });
            match loaded {
                Err(e) => {
                    self.next_leaf = None;
                    return Some(Err(e));
                }
                Ok((cells, next)) => {
                    self.buf = cells;
                    self.idx = 0;
                    self.next_leaf = if next == 0 { None } else { Some(next) };
                    if self.buf.is_empty() && self.next_leaf.is_none() {
                        return None;
                    }
                }
            }
        }
    }
}

/// Serialize the table directory into page 0 and write it through the
/// pager (the meta page bypasses the buffer pool; it is only touched at
/// create/open/flush).
fn write_meta(inner: &mut Inner) -> Result<()> {
    let mut page = Page::init(PageKind::Meta);
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(inner.dir.len() as u16).to_le_bytes());
    for (name, e) in &inner.dir {
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&e.root.to_le_bytes());
        buf.extend_from_slice(&e.next_rowid.to_le_bytes());
        buf.extend_from_slice(&e.row_count.to_le_bytes());
        buf.extend_from_slice(&e.ncols.to_le_bytes());
    }
    if HEADER + buf.len() > PAGE_SIZE {
        return Err(StorageError::DirectoryFull);
    }
    page.0[HEADER..HEADER + buf.len()].copy_from_slice(&buf);
    inner.pager.write_page(0, &mut page)
}

struct MetaReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> MetaReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(StorageError::Corrupt("meta page truncated".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
}

fn read_meta(pager: &mut Pager) -> Result<BTreeMap<String, TableEntry>> {
    let page = pager.read_page(0)?;
    if page.kind() != Some(PageKind::Meta) {
        return Err(StorageError::Corrupt("page 0 is not a meta page".into()));
    }
    let mut r = MetaReader {
        buf: &page.0[HEADER..],
        at: 0,
    };
    let magic = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad magic {magic:#010x}")));
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(StorageError::Corrupt(format!("unknown version {version}")));
    }
    let ntables = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
    let mut dir = BTreeMap::new();
    for _ in 0..ntables {
        let name_len = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| StorageError::Corrupt("non-UTF-8 table name".into()))?;
        let root = u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"));
        let next_rowid = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        let row_count = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        let ncols = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
        dir.insert(
            name,
            TableEntry {
                root,
                next_rowid,
                row_count,
                ncols,
                // Sketches are not persisted; `statistics()` reports empty
                // column stats until rows() catches up with row_count.
                stats: StatsBuilder::new(ncols as usize),
            },
        );
    }
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> Vec<u8> {
        format!("row-{i}").into_bytes()
    }

    #[test]
    fn append_scan_get_round_trip() {
        let s = Store::in_memory(8);
        s.create_table("t", 1).unwrap();
        for i in 0..500u64 {
            let rid = s.append("t", &record(i), &[Some(i % 7)]).unwrap();
            assert_eq!(rid, i + 1);
        }
        assert_eq!(s.row_count("t").unwrap(), 500);
        let rows: Vec<(u64, Vec<u8>)> = s.scan("t").unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 500);
        for (i, (rid, rec)) in rows.iter().enumerate() {
            assert_eq!(*rid, i as u64 + 1);
            assert_eq!(rec, &record(i as u64));
        }
        assert_eq!(s.get("t", 250).unwrap().unwrap(), record(249));
        assert_eq!(s.get("t", 10_000).unwrap(), None);
        let stats = s.statistics("t").unwrap();
        assert_eq!(stats.rows, 500);
        assert_eq!(stats.columns[0].ndv, 7.0);
    }

    #[test]
    fn unknown_table_errors() {
        let s = Store::in_memory(4);
        assert!(matches!(
            s.append("missing", b"x", &[]),
            Err(StorageError::UnknownTable(_))
        ));
        assert!(s.scan("missing").is_err());
    }

    #[test]
    fn interleaved_scans_share_the_pool() {
        let s = Store::in_memory(4);
        s.create_table("t", 1).unwrap();
        for i in 0..800u64 {
            s.append("t", &record(i), &[Some(i)]).unwrap();
        }
        // Two cursors advanced in lock-step (the nested-loop pattern).
        let mut a = s.scan("t").unwrap();
        let mut b = s.scan("t").unwrap();
        let mut n = 0u64;
        while let (Some(x), Some(y)) = (a.next(), b.next()) {
            assert_eq!(x.unwrap(), y.unwrap());
            n += 1;
        }
        assert_eq!(n, 800);
    }

    #[test]
    fn flush_reopen_persists() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("eqsql-store-test-{}.pages", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let s = Store::create(&path, 8).unwrap();
            s.create_table("t", 2).unwrap();
            for i in 0..300u64 {
                s.append("t", &record(i), &[Some(i), None]).unwrap();
            }
            s.flush().unwrap();
        }
        let s = Store::open(&path, 8).unwrap();
        assert_eq!(s.tables(), vec!["t".to_string()]);
        assert_eq!(s.row_count("t").unwrap(), 300);
        assert_eq!(s.column_count("t").unwrap(), 2);
        let rows: Vec<(u64, Vec<u8>)> = s.scan("t").unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 300);
        assert_eq!(rows[299].1, record(299));
        // Sketches are memory-only: after reopen, column stats are empty
        // but the row count survives.
        let stats = s.statistics("t").unwrap();
        assert_eq!(stats.rows, 300);
        assert!(stats.columns.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fork_is_independent() {
        let s = Store::in_memory(4);
        s.create_table("t", 1).unwrap();
        for i in 0..300u64 {
            s.append("t", &record(i), &[Some(i % 5)]).unwrap();
        }
        let f = s.fork().unwrap();
        assert!(!s.same_store(&f));
        // Fork sees the snapshot, including cloned column sketches.
        assert_eq!(f.row_count("t").unwrap(), 300);
        assert_eq!(f.statistics("t").unwrap().columns[0].ndv, 5.0);
        // Writes to the fork do not leak back (and vice versa).
        f.append("t", b"fork-only", &[Some(99)]).unwrap();
        s.append("t", b"orig-only", &[Some(42)]).unwrap();
        let last_f: Vec<u8> = f.scan("t").unwrap().last().unwrap().unwrap().1;
        let last_s: Vec<u8> = s.scan("t").unwrap().last().unwrap().unwrap().1;
        assert_eq!(last_f, b"fork-only".to_vec());
        assert_eq!(last_s, b"orig-only".to_vec());
        assert_eq!(f.row_count("t").unwrap(), 301);
        assert_eq!(s.row_count("t").unwrap(), 301);
    }

    #[test]
    fn truncate_resets_table() {
        let s = Store::in_memory(4);
        s.create_table("t", 2).unwrap();
        for i in 0..200u64 {
            s.append("t", &record(i), &[Some(i), None]).unwrap();
        }
        s.truncate_table("t").unwrap();
        assert_eq!(s.row_count("t").unwrap(), 0);
        assert_eq!(s.scan("t").unwrap().count(), 0);
        // Rowids restart at 1 and stats are rebuilt from scratch.
        assert_eq!(s.append("t", &record(0), &[Some(7), Some(8)]).unwrap(), 1);
        let stats = s.statistics("t").unwrap();
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.columns[0].ndv, 1.0);
        assert!(matches!(
            s.truncate_table("missing"),
            Err(StorageError::UnknownTable(_))
        ));
    }

    #[test]
    fn temp_store_cleans_up() {
        let path;
        {
            let s = Store::temp(4).unwrap();
            s.create_table("t", 1).unwrap();
            s.append("t", b"abc", &[Some(1)]).unwrap();
            s.flush().unwrap();
            path = s.lock().temp_path.clone().unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
