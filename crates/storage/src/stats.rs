//! Per-table statistics collected as records are appended.
//!
//! The store feeds each appended row's per-column value hashes (or `None`
//! for SQL NULL) into a [`StatsBuilder`]; a snapshot yields row count plus
//! per-column distinct-value estimates and null fractions. The optimizer's
//! cost model (`core::costing`) consumes these to refine its fixed
//! System-R selectivities — equality against a column with NDV *d*
//! selects ≈ 1/*d* of the non-null rows.
//!
//! Distinct counting uses a k-minimum-values (KMV) sketch: keep the `K`
//! smallest value hashes ever seen; with the sketch full, the k-th minimum
//! `m` (as a fraction of the hash space) estimates the distinct count as
//! `(K-1)/m`. Below `K` distinct hashes the sketch is exact. The sketch is
//! tiny (≤ `K` u64s per column), insertion-order independent, and
//! deterministic — the same rows always yield the same estimate.

use std::collections::BTreeSet;

/// Sketch size: distinct counts up to `K` are exact.
pub const K: usize = 256;

/// One column's sketch: null count plus the KMV set.
#[derive(Debug, Clone, Default)]
struct ColSketch {
    nulls: u64,
    kmv: BTreeSet<u64>,
}

impl ColSketch {
    fn observe(&mut self, hash: Option<u64>) {
        match hash {
            None => self.nulls += 1,
            Some(h) => {
                self.kmv.insert(h);
                if self.kmv.len() > K {
                    let last = *self.kmv.iter().next_back().expect("nonempty");
                    self.kmv.remove(&last);
                }
            }
        }
    }

    fn ndv(&self) -> f64 {
        if self.kmv.len() < K {
            return self.kmv.len() as f64;
        }
        let kth = *self.kmv.iter().next_back().expect("full sketch") as f64;
        let frac = kth / (u64::MAX as f64);
        if frac <= 0.0 {
            return self.kmv.len() as f64;
        }
        (K as f64 - 1.0) / frac
    }
}

/// Statistics for one column of a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Estimated number of distinct non-null values.
    pub ndv: f64,
    /// Fraction of rows where the column is NULL, in `[0, 1]`.
    pub null_frac: f64,
}

/// A snapshot of one table's statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStatistics {
    /// Total rows appended.
    pub rows: u64,
    /// Per-column stats, in schema column order. Empty when the store was
    /// reopened without re-observing rows (row count survives in the meta
    /// page; sketches are memory-only).
    pub columns: Vec<ColumnStats>,
}

/// Accumulates row observations into per-column sketches.
#[derive(Debug, Clone, Default)]
pub struct StatsBuilder {
    rows: u64,
    cols: Vec<ColSketch>,
}

impl StatsBuilder {
    /// A builder for `ncols` columns.
    pub fn new(ncols: usize) -> StatsBuilder {
        StatsBuilder {
            rows: 0,
            cols: vec![ColSketch::default(); ncols],
        }
    }

    /// Observe one row: per column, `Some(value hash)` or `None` for NULL.
    /// Rows with a different arity than the builder are still counted, but
    /// only the overlapping columns are sketched.
    pub fn observe_row(&mut self, hashes: &[Option<u64>]) {
        self.rows += 1;
        for (col, h) in self.cols.iter_mut().zip(hashes) {
            col.observe(*h);
        }
    }

    /// Rows observed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Snapshot the current estimates.
    pub fn snapshot(&self) -> TableStatistics {
        let rows = self.rows.max(1) as f64;
        TableStatistics {
            rows: self.rows,
            columns: self
                .cols
                .iter()
                .map(|c| ColumnStats {
                    ndv: c.ndv(),
                    null_frac: c.nulls as f64 / rows,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnv64;

    #[test]
    fn exact_below_sketch_size() {
        let mut b = StatsBuilder::new(2);
        for i in 0..100u64 {
            let h = fnv64(&i.to_le_bytes());
            // Column 0 cycles through 10 values; column 1 is NULL half the time.
            let h0 = fnv64(&(i % 10).to_le_bytes());
            b.observe_row(&[Some(h0), if i % 2 == 0 { Some(h) } else { None }]);
        }
        let s = b.snapshot();
        assert_eq!(s.rows, 100);
        assert_eq!(s.columns[0].ndv, 10.0);
        assert_eq!(s.columns[0].null_frac, 0.0);
        assert_eq!(s.columns[1].null_frac, 0.5);
        assert_eq!(s.columns[1].ndv, 50.0);
    }

    #[test]
    fn estimate_above_sketch_size_is_close() {
        let mut b = StatsBuilder::new(1);
        let n = 20_000u64;
        for i in 0..n {
            b.observe_row(&[Some(fnv64(&i.to_le_bytes()))]);
        }
        let ndv = b.snapshot().columns[0].ndv;
        let err = (ndv - n as f64).abs() / n as f64;
        assert!(err < 0.15, "KMV estimate {ndv} too far from {n}");
    }

    #[test]
    fn order_independent() {
        let hashes: Vec<u64> = (0..1000u64).map(|i| fnv64(&i.to_le_bytes())).collect();
        let mut fwd = StatsBuilder::new(1);
        let mut rev = StatsBuilder::new(1);
        for h in &hashes {
            fwd.observe_row(&[Some(*h)]);
        }
        for h in hashes.iter().rev() {
            rev.observe_row(&[Some(*h)]);
        }
        assert_eq!(fwd.snapshot(), rev.snapshot());
    }
}
