//! Paged storage engine: slotted heap pages, a checksummed pager, a pinning
//! buffer pool with LRU eviction, and a row B-tree keyed by rowid.
//!
//! This crate is deliberately **value-agnostic**: it stores opaque byte
//! records keyed by a monotonically assigned `u64` rowid, so it has no
//! dependency on the `dbms` value model (the dependency points the other
//! way — `dbms` encodes its `Row`s into records and decodes them back).
//! Insertion order equals rowid order equals scan order, which is exactly
//! the contract the in-memory engine's `Vec<Row>` tables provide; the two
//! backends are therefore observationally identical to the evaluator.
//!
//! Layering, bottom to top:
//!
//! - [`page`] — a fixed-size slotted page: checksummed header, slot
//!   directory growing up, cell content growing down.
//! - [`pager`] — page-granular I/O over a file (or an in-memory vector for
//!   tests and the fuzzer), with checksum sealing on write and verification
//!   on read.
//! - [`bufpool`] — a pinning buffer pool with a configurable frame budget
//!   and least-recently-used eviction; hit/miss/eviction counters are kept
//!   per pool and mirrored into process-wide atomics for `/metrics`.
//! - [`btree`] — a B-tree over (rowid, record) pairs in slotted pages:
//!   point lookup, ordered scan via next-leaf links, right-leaning splits.
//! - [`store`] — the public façade: a table directory in a meta page,
//!   create/open/flush, append/get/scan per table.
//! - [`stats`] — per-table statistics (row count, per-column KMV distinct
//!   estimate, null fraction) collected as records are appended.

pub mod btree;
pub mod bufpool;
pub mod page;
pub mod pager;
pub mod stats;
pub mod store;

pub use bufpool::{global_counters, BufPoolStats};
pub use stats::{ColumnStats, StatsBuilder, TableStatistics};
pub use store::{ScanCursor, Store};

/// Errors surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(String),
    /// A page failed checksum or structural validation.
    Corrupt(String),
    /// A record exceeds what a single page can hold.
    RecordTooLarge(usize),
    /// A named table is absent from the store directory.
    UnknownTable(String),
    /// The meta page cannot hold the table directory.
    DirectoryFull,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(e) => write!(f, "corrupt page: {e}"),
            StorageError::RecordTooLarge(n) => {
                write!(f, "record of {n} bytes exceeds page capacity")
            }
            StorageError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            StorageError::DirectoryFull => write!(f, "table directory exceeds the meta page"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> StorageError {
        StorageError::Io(e.to_string())
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// FNV-1a over a byte slice; used for page checksums and value sketches.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
