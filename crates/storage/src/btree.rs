//! A B-tree over `(rowid, record)` pairs in slotted pages.
//!
//! Leaves hold cells `[key u64][record bytes]` and are chained through the
//! header's extra word (next-leaf link), so an ordered scan walks leaves
//! left to right without touching internal nodes. Internal nodes hold cells
//! `[key u64][child u32]` meaning "child's subtree covers keys ≤ key", with
//! the rightmost child (keys greater than every cell key) in the extra
//! word.
//!
//! Splits are right-leaning: rowids are assigned monotonically, so when an
//! insert lands past the last cell the split moves only the new cell to the
//! fresh node, leaving the left sibling packed instead of half empty.
//! Deletion is unsupported — tables are append-only.
//!
//! All functions take the pager and buffer pool explicitly; the [`Store`]
//! façade owns both and tracks each table's root page (which changes when
//! the root splits).
//!
//! [`Store`]: crate::store::Store

use crate::bufpool::BufferPool;
use crate::page::{Page, PageKind, MAX_CELL};
use crate::pager::Pager;
use crate::{Result, StorageError};

/// One internal-node entry: subtree of keys ≤ `key` lives at `child`.
type Entry = (u64, u32);

fn leaf_cell(key: u64, record: &[u8]) -> Vec<u8> {
    let mut c = key.to_le_bytes().to_vec();
    c.extend_from_slice(record);
    c
}

fn internal_cell(key: u64, child: u32) -> Vec<u8> {
    let mut c = key.to_le_bytes().to_vec();
    c.extend_from_slice(&child.to_le_bytes());
    c
}

/// The key prefix shared by leaf and internal cells.
fn key_of(cell: &[u8]) -> u64 {
    u64::from_le_bytes(cell[..8].try_into().expect("key bytes"))
}

/// Decode an internal cell only — leaf records may be shorter than the
/// 4-byte child pointer this reads.
fn entry_of(cell: &[u8]) -> Entry {
    let child = u32::from_le_bytes(cell[8..12].try_into().expect("child bytes"));
    (key_of(cell), child)
}

/// Allocate an empty tree (a single empty leaf) and return its root.
pub fn create(pager: &mut Pager, pool: &mut BufferPool) -> Result<u32> {
    let id = pager.allocate()?;
    pool.with_page_mut(pager, id, |p| *p = Page::init(PageKind::Leaf))?;
    Ok(id)
}

/// Insert `(key, record)` under `root`; returns the possibly-new root id.
/// Keys are rowids and must be unique (the store assigns them).
pub fn insert(
    pager: &mut Pager,
    pool: &mut BufferPool,
    root: u32,
    key: u64,
    record: &[u8],
) -> Result<u32> {
    if 8 + record.len() > MAX_CELL {
        return Err(StorageError::RecordTooLarge(record.len()));
    }
    match insert_into(pager, pool, root, key, record)? {
        None => Ok(root),
        Some((sep, right)) => {
            // Root split: a new internal root points at both halves.
            let new_root = pager.allocate()?;
            pool.with_page_mut(pager, new_root, |p| {
                *p = Page::init(PageKind::Internal);
                p.set_extra(right);
                assert!(p.insert_cell(0, &internal_cell(sep, root)));
            })?;
            Ok(new_root)
        }
    }
}

/// Recursive insert; `Some((sep, right))` reports that `page_id` split and
/// the caller must wire in `right` for keys greater than `sep`.
fn insert_into(
    pager: &mut Pager,
    pool: &mut BufferPool,
    page_id: u32,
    key: u64,
    record: &[u8],
) -> Result<Option<(u64, u32)>> {
    let kind = pool.with_page(pager, page_id, |p| p.kind())?;
    match kind {
        Some(PageKind::Leaf) => insert_leaf(pager, pool, page_id, key, record),
        Some(PageKind::Internal) => insert_internal(pager, pool, page_id, key, record),
        other => Err(StorageError::Corrupt(format!(
            "page {page_id}: expected a B-tree node, found {other:?}"
        ))),
    }
}

fn insert_leaf(
    pager: &mut Pager,
    pool: &mut BufferPool,
    page_id: u32,
    key: u64,
    record: &[u8],
) -> Result<Option<(u64, u32)>> {
    let cell = leaf_cell(key, record);
    let fitted = pool.with_page_mut(pager, page_id, |p| {
        let pos = match p.find(key) {
            Ok(i) | Err(i) => i,
        };
        p.insert_cell(pos, &cell)
    })?;
    if fitted {
        return Ok(None);
    }
    // Split. Gather every cell plus the new one in key order, then rebuild
    // the left page and a fresh right sibling.
    let (mut cells, next) = pool.with_page(pager, page_id, |p| (p.cells(), p.extra()))?;
    let pos = cells
        .iter()
        .position(|c| key_of(c) > key)
        .unwrap_or(cells.len());
    let at_end = pos == cells.len();
    cells.insert(pos, cell);
    // Right-leaning for monotone appends; balanced otherwise.
    let mid = if at_end {
        cells.len() - 1
    } else {
        cells.len() / 2
    };
    let right_cells = cells.split_off(mid);
    let right_id = pager.allocate()?;
    pool.with_page_mut(pager, right_id, |p| {
        *p = Page::init(PageKind::Leaf);
        p.set_extra(next);
        for (i, c) in right_cells.iter().enumerate() {
            assert!(p.insert_cell(i, c), "split half must fit a fresh page");
        }
    })?;
    pool.with_page_mut(pager, page_id, |p| {
        *p = Page::init(PageKind::Leaf);
        p.set_extra(right_id);
        for (i, c) in cells.iter().enumerate() {
            assert!(p.insert_cell(i, c), "split half must fit a fresh page");
        }
    })?;
    let sep = key_of(cells.last().expect("left half nonempty"));
    Ok(Some((sep, right_id)))
}

fn insert_internal(
    pager: &mut Pager,
    pool: &mut BufferPool,
    page_id: u32,
    key: u64,
    record: &[u8],
) -> Result<Option<(u64, u32)>> {
    let (entries, rightmost) = read_internal(pager, pool, page_id)?;
    // First entry whose key covers ours; past the end means rightmost child.
    let di = entries
        .iter()
        .position(|&(k, _)| key <= k)
        .unwrap_or(entries.len());
    let child = if di < entries.len() {
        entries[di].1
    } else {
        rightmost
    };
    let Some((sep, new_right)) = insert_into(pager, pool, child, key, record)? else {
        return Ok(None);
    };
    // The descended child kept keys ≤ sep; new_right covers the rest of its
    // old range. Splice the pair into this node's entry list.
    let (mut entries, mut rightmost) = read_internal(pager, pool, page_id)?;
    if di == entries.len() {
        entries.push((sep, child));
        rightmost = new_right;
    } else {
        entries[di].1 = new_right;
        entries.insert(di, (sep, child));
    }
    if fits_internal(entries.len()) {
        write_internal(pager, pool, page_id, &entries, rightmost)?;
        return Ok(None);
    }
    // Split this internal node, promoting the median (or, for appends at
    // the right edge, the last) separator.
    let at_end = di == entries.len() - 1;
    let mid = if at_end {
        entries.len() - 1
    } else {
        entries.len() / 2
    };
    let (promoted, mid_child) = entries[mid];
    let right_entries: Vec<Entry> = entries[mid + 1..].to_vec();
    let left_entries: Vec<Entry> = entries[..mid].to_vec();
    let right_id = pager.allocate()?;
    pool.with_page_mut(pager, right_id, |p| *p = Page::init(PageKind::Internal))?;
    write_internal(pager, pool, right_id, &right_entries, rightmost)?;
    write_internal(pager, pool, page_id, &left_entries, mid_child)?;
    Ok(Some((promoted, right_id)))
}

/// Can an internal node hold `n` entries? (16-byte header, 4-byte slot and
/// 12-byte cell per entry.)
fn fits_internal(n: usize) -> bool {
    crate::page::HEADER + n * (crate::page::SLOT + 12) <= crate::page::PAGE_SIZE
}

fn read_internal(
    pager: &mut Pager,
    pool: &mut BufferPool,
    page_id: u32,
) -> Result<(Vec<Entry>, u32)> {
    pool.with_page(pager, page_id, |p| {
        let entries = (0..p.nslots()).map(|i| entry_of(p.cell(i))).collect();
        (entries, p.extra())
    })
}

fn write_internal(
    pager: &mut Pager,
    pool: &mut BufferPool,
    page_id: u32,
    entries: &[Entry],
    rightmost: u32,
) -> Result<()> {
    pool.with_page_mut(pager, page_id, |p| {
        *p = Page::init(PageKind::Internal);
        p.set_extra(rightmost);
        for (i, &(k, c)) in entries.iter().enumerate() {
            assert!(p.insert_cell(i, &internal_cell(k, c)), "entries must fit");
        }
    })
}

/// Point lookup: the record stored under `key`, if any.
pub fn get(
    pager: &mut Pager,
    pool: &mut BufferPool,
    root: u32,
    key: u64,
) -> Result<Option<Vec<u8>>> {
    let mut id = root;
    loop {
        enum Step {
            Descend(u32),
            Found(Vec<u8>),
            Missing,
        }
        let step = pool.with_page(pager, id, |p| match p.kind() {
            Some(PageKind::Leaf) => match p.find(key) {
                Ok(i) => Step::Found(p.cell(i)[8..].to_vec()),
                Err(_) => Step::Missing,
            },
            Some(PageKind::Internal) => {
                let n = p.nslots();
                let mut child = p.extra();
                for i in 0..n {
                    if key <= p.key(i) {
                        child = entry_of(p.cell(i)).1;
                        break;
                    }
                }
                Step::Descend(child)
            }
            other => {
                debug_assert!(false, "page {id}: not a B-tree node: {other:?}");
                Step::Missing
            }
        })?;
        match step {
            Step::Descend(c) => id = c,
            Step::Found(rec) => return Ok(Some(rec)),
            Step::Missing => return Ok(None),
        }
    }
}

/// The leftmost leaf under `root` (where an ordered scan starts).
pub fn first_leaf(pager: &mut Pager, pool: &mut BufferPool, root: u32) -> Result<u32> {
    let mut id = root;
    loop {
        let next = pool.with_page(pager, id, |p| match p.kind() {
            Some(PageKind::Leaf) => None,
            _ => Some(if p.nslots() > 0 {
                entry_of(p.cell(0)).1
            } else {
                p.extra()
            }),
        })?;
        match next {
            None => return Ok(id),
            Some(c) => id = c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn scan_all(pager: &mut Pager, pool: &mut BufferPool, root: u32) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let mut leaf = first_leaf(pager, pool, root).unwrap();
        loop {
            let (cells, next) = pool
                .with_page(pager, leaf, |p| (p.cells(), p.extra()))
                .unwrap();
            for c in cells {
                let key = u64::from_le_bytes(c[..8].try_into().unwrap());
                out.push((key, c[8..].to_vec()));
            }
            if next == 0 {
                break;
            }
            leaf = next;
        }
        out
    }

    fn check_against_reference(keys: &[u64], budget: usize) {
        let mut pager = Pager::in_memory();
        let mut pool = BufferPool::new(budget);
        let mut root = create(&mut pager, &mut pool).unwrap();
        let mut reference = BTreeMap::new();
        for &k in keys {
            let rec = format!("record-{k}").into_bytes();
            root = insert(&mut pager, &mut pool, root, k, &rec).unwrap();
            reference.insert(k, rec);
        }
        let scanned = scan_all(&mut pager, &mut pool, root);
        let expected: Vec<(u64, Vec<u8>)> =
            reference.iter().map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(scanned, expected);
        for (k, v) in &reference {
            assert_eq!(
                get(&mut pager, &mut pool, root, *k).unwrap().as_ref(),
                Some(v)
            );
        }
        assert_eq!(get(&mut pager, &mut pool, root, u64::MAX).unwrap(), None);
    }

    #[test]
    fn monotone_inserts_split_right() {
        let keys: Vec<u64> = (0..2000).collect();
        check_against_reference(&keys, 8);
    }

    #[test]
    fn shuffled_inserts() {
        // Deterministic pseudo-shuffle (multiplicative hash order).
        let mut keys: Vec<u64> = (0..1500).collect();
        keys.sort_by_key(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        check_against_reference(&keys, 4);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut pager = Pager::in_memory();
        let mut pool = BufferPool::new(2);
        let root = create(&mut pager, &mut pool).unwrap();
        let big = vec![0u8; crate::page::PAGE_SIZE];
        assert!(matches!(
            insert(&mut pager, &mut pool, root, 1, &big),
            Err(StorageError::RecordTooLarge(_))
        ));
    }
}
