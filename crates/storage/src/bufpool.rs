//! A pinning buffer pool with LRU eviction.
//!
//! The pool caches up to `budget` page frames. Access is closure-scoped:
//! [`BufferPool::with_page`] / [`BufferPool::with_page_mut`] pin the frame
//! for the duration of the closure (eviction skips pinned frames), then
//! unpin it. Mutable access marks the frame dirty; dirty frames are written
//! back through the pager on eviction and on [`BufferPool::flush_all`].
//!
//! Recency is a monotone access counter, not wall-clock time, so eviction
//! order is deterministic. Hit/miss/eviction counts are kept per pool (the
//! scale benchmark reports them per run) and mirrored into process-wide
//! atomics that the service exports as
//! `eqsql_bufpool_{hits,misses,evictions}_total`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::page::Page;
use crate::pager::Pager;
use crate::Result;

static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide (hits, misses, evictions) across every pool ever used;
/// feeds the service's `/metrics` counters.
pub fn global_counters() -> (u64, u64, u64) {
    (
        GLOBAL_HITS.load(Ordering::Relaxed),
        GLOBAL_MISSES.load(Ordering::Relaxed),
        GLOBAL_EVICTIONS.load(Ordering::Relaxed),
    )
}

/// Counters for one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to go to the pager.
    pub misses: u64,
    /// Frames evicted to stay within the budget.
    pub evictions: u64,
}

impl BufPoolStats {
    /// Hit rate in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    id: u32,
    page: Page,
    dirty: bool,
    pins: u32,
    last_used: u64,
}

/// A fixed-budget page cache over a [`Pager`].
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<u32, usize>,
    budget: usize,
    clock: u64,
    stats: BufPoolStats,
}

impl BufferPool {
    /// A pool holding at most `budget` frames (minimum 1).
    pub fn new(budget: usize) -> BufferPool {
        BufferPool {
            frames: Vec::new(),
            map: HashMap::new(),
            budget: budget.max(1),
            clock: 0,
            stats: BufPoolStats::default(),
        }
    }

    /// The configured frame budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// This pool's counters.
    pub fn stats(&self) -> BufPoolStats {
        self.stats
    }

    /// Run `f` over a read-only view of page `id`, pinning its frame.
    pub fn with_page<R>(
        &mut self,
        pager: &mut Pager,
        id: u32,
        f: impl FnOnce(&Page) -> R,
    ) -> Result<R> {
        let slot = self.acquire(pager, id)?;
        let out = f(&self.frames[slot].page);
        self.frames[slot].pins -= 1;
        Ok(out)
    }

    /// Run `f` over a mutable view of page `id`, pinning its frame and
    /// marking it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        pager: &mut Pager,
        id: u32,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R> {
        let slot = self.acquire(pager, id)?;
        self.frames[slot].dirty = true;
        let out = f(&mut self.frames[slot].page);
        self.frames[slot].pins -= 1;
        Ok(out)
    }

    /// Fetch page `id` into a frame (evicting if needed) and pin it.
    fn acquire(&mut self, pager: &mut Pager, id: u32) -> Result<usize> {
        self.clock += 1;
        if let Some(&slot) = self.map.get(&id) {
            self.stats.hits += 1;
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
            let frame = &mut self.frames[slot];
            frame.last_used = self.clock;
            frame.pins += 1;
            return Ok(slot);
        }
        self.stats.misses += 1;
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        let page = pager.read_page(id)?;
        let slot = if self.frames.len() < self.budget {
            self.frames.push(Frame {
                id,
                page,
                dirty: false,
                pins: 0,
                last_used: 0,
            });
            self.frames.len() - 1
        } else {
            let victim = self.pick_victim();
            self.evict(pager, victim)?;
            self.frames[victim] = Frame {
                id,
                page,
                dirty: false,
                pins: 0,
                last_used: 0,
            };
            victim
        };
        self.map.insert(id, slot);
        let frame = &mut self.frames[slot];
        frame.last_used = self.clock;
        frame.pins += 1;
        Ok(slot)
    }

    /// Least-recently-used unpinned frame. Closure-scoped pinning means at
    /// most one frame is pinned at a time, so with budget ≥ 1 a victim
    /// always exists when this is called (the caller's frame is not yet
    /// resident).
    fn pick_victim(&self) -> usize {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, fr)| fr.pins == 0)
            .min_by_key(|(_, fr)| fr.last_used)
            .map(|(i, _)| i)
            .expect("buffer pool: every frame pinned")
    }

    fn evict(&mut self, pager: &mut Pager, slot: usize) -> Result<()> {
        self.stats.evictions += 1;
        GLOBAL_EVICTIONS.fetch_add(1, Ordering::Relaxed);
        let frame = &mut self.frames[slot];
        if frame.dirty {
            pager.write_page(frame.id, &mut frame.page)?;
            frame.dirty = false;
        }
        self.map.remove(&frame.id);
        Ok(())
    }

    /// Write every dirty frame back through the pager.
    pub fn flush_all(&mut self, pager: &mut Pager) -> Result<()> {
        for frame in &mut self.frames {
            if frame.dirty {
                pager.write_page(frame.id, &mut frame.page)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop a page's frame without writing it back (used when the caller
    /// has just rewritten the page through the pager directly).
    pub fn discard(&mut self, id: u32) {
        if let Some(slot) = self.map.remove(&id) {
            self.frames[slot].dirty = false;
            self.frames[slot].id = u32::MAX;
            self.frames[slot].last_used = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn pager_with(n: u32) -> Pager {
        let mut p = Pager::in_memory();
        for _ in 0..n {
            let id = p.allocate().unwrap();
            let mut page = Page::init(PageKind::Leaf);
            page.set_extra(id);
            p.write_page(id, &mut page).unwrap();
        }
        p
    }

    #[test]
    fn caches_within_budget() {
        let mut pager = pager_with(3);
        let mut pool = BufferPool::new(4);
        for _ in 0..5 {
            for id in 0..3 {
                let got = pool.with_page(&mut pager, id, |p| p.extra()).unwrap();
                assert_eq!(got, id);
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 12);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn evicts_lru_and_writes_back_dirty() {
        let mut pager = pager_with(3);
        let mut pool = BufferPool::new(2);
        pool.with_page_mut(&mut pager, 0, |p| p.set_extra(99))
            .unwrap();
        pool.with_page(&mut pager, 1, |_| ()).unwrap();
        // Touch page 2: page 0 is LRU, dirty, and must be written back.
        pool.with_page(&mut pager, 2, |_| ()).unwrap();
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.resident(), 2);
        // Re-read page 0 through a fresh pool: the write-back must be visible.
        let mut fresh = BufferPool::new(1);
        let v = fresh.with_page(&mut pager, 0, |p| p.extra()).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn hit_rate() {
        let s = BufPoolStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(BufPoolStats::default().hit_rate(), 0.0);
    }
}
