//! Page-granular I/O with checksum sealing.
//!
//! The pager owns the backing medium — a file, or an in-memory vector for
//! the fuzzer and unit tests — and moves whole pages across it. Every write
//! seals the page by stamping `fnv64(bytes[4..])` (truncated to 32 bits)
//! into the header's checksum field; every read verifies it, so torn or
//! bit-rotted pages surface as [`StorageError::Corrupt`] instead of silent
//! wrong answers.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::page::{Page, PAGE_SIZE};
use crate::{fnv64, Result, StorageError};

/// Backing medium for a pager.
enum Media {
    /// A real file on disk.
    File(File),
    /// An in-memory page vector (no persistence; used by tests and the
    /// fuzzer's store mode).
    Mem(Vec<Box<[u8; PAGE_SIZE]>>),
}

/// Moves sealed pages to and from the backing medium.
pub struct Pager {
    media: Media,
    page_count: u32,
}

/// Checksum of a page image: FNV-1a over everything after the checksum
/// field itself, truncated to 32 bits.
fn checksum(buf: &[u8; PAGE_SIZE]) -> u32 {
    fnv64(&buf[4..]) as u32
}

/// Stamp the checksum into a page image.
pub fn seal(page: &mut Page) {
    let sum = checksum(&page.0);
    page.0[..4].copy_from_slice(&sum.to_le_bytes());
}

/// Verify a page image's checksum.
fn verify(buf: &[u8; PAGE_SIZE], id: u32) -> Result<()> {
    let stored = u32::from_le_bytes(buf[..4].try_into().expect("4-byte slice"));
    let computed = checksum(buf);
    if stored != computed {
        return Err(StorageError::Corrupt(format!(
            "page {id}: checksum {stored:#010x} != computed {computed:#010x}"
        )));
    }
    Ok(())
}

impl Pager {
    /// Create a new file-backed pager, truncating any existing file.
    pub fn create(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            media: Media::File(file),
            page_count: 0,
        })
    }

    /// Open an existing file-backed pager.
    pub fn open(path: &Path) -> Result<Pager> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        Ok(Pager {
            media: Media::File(file),
            page_count: (len / PAGE_SIZE as u64) as u32,
        })
    }

    /// A memory-backed pager (starts empty, never persists).
    pub fn in_memory() -> Pager {
        Pager {
            media: Media::Mem(Vec::new()),
            page_count: 0,
        }
    }

    /// Number of pages in the store.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Append a fresh zero page and return its id.
    pub fn allocate(&mut self) -> Result<u32> {
        let id = self.page_count;
        let mut page = Page::default();
        seal(&mut page);
        self.write_raw(id, &page.0)?;
        self.page_count += 1;
        Ok(id)
    }

    /// Read and checksum-verify page `id`.
    pub fn read_page(&mut self, id: u32) -> Result<Page> {
        if id >= self.page_count {
            return Err(StorageError::Corrupt(format!(
                "page {id} out of range (have {})",
                self.page_count
            )));
        }
        let mut page = Page::default();
        match &mut self.media {
            Media::File(f) => {
                f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
                f.read_exact(&mut page.0[..])?;
            }
            Media::Mem(pages) => page.0.copy_from_slice(&pages[id as usize][..]),
        }
        verify(&page.0, id)?;
        Ok(page)
    }

    /// Seal and write page `id`.
    pub fn write_page(&mut self, id: u32, page: &mut Page) -> Result<()> {
        seal(page);
        self.write_raw(id, &page.0)
    }

    fn write_raw(&mut self, id: u32, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        match &mut self.media {
            Media::File(f) => {
                f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
                f.write_all(&buf[..])?;
            }
            Media::Mem(pages) => {
                let idx = id as usize;
                if idx == pages.len() {
                    pages.push(Box::new(*buf));
                } else {
                    pages[idx].copy_from_slice(&buf[..]);
                }
            }
        }
        Ok(())
    }

    /// Copy the entire page image into a fresh in-memory pager — the
    /// deep-snapshot primitive behind `Store::fork`. Pages go through the
    /// normal checksum-verified read path, so a corrupt page surfaces at
    /// fork time rather than later inside the fork.
    pub fn fork_image(&mut self) -> Result<Pager> {
        let mut pages = Vec::with_capacity(self.page_count as usize);
        for id in 0..self.page_count {
            let page = self.read_page(id)?;
            pages.push(page.0);
        }
        Ok(Pager {
            media: Media::Mem(pages),
            page_count: self.page_count,
        })
    }

    /// Flush the medium (file sync; no-op for memory backing).
    pub fn sync(&mut self) -> Result<()> {
        if let Media::File(f) = &mut self.media {
            f.flush()?;
            f.sync_all()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    #[test]
    fn round_trip_in_memory() {
        let mut p = Pager::in_memory();
        let id = p.allocate().unwrap();
        let mut page = Page::init(PageKind::Leaf);
        assert!(page.insert_cell(0, &[1u8; 12]));
        p.write_page(id, &mut page).unwrap();
        let back = p.read_page(id).unwrap();
        assert_eq!(back.kind(), Some(PageKind::Leaf));
        assert_eq!(back.cell(0), &[1u8; 12]);
    }

    #[test]
    fn corruption_is_detected() {
        let mut p = Pager::in_memory();
        let id = p.allocate().unwrap();
        let mut page = Page::init(PageKind::Leaf);
        p.write_page(id, &mut page).unwrap();
        if let Media::Mem(pages) = &mut p.media {
            pages[id as usize][100] ^= 0xff;
        }
        assert!(matches!(p.read_page(id), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn out_of_range_read_fails() {
        let mut p = Pager::in_memory();
        assert!(p.read_page(0).is_err());
    }
}
