//! Slotted pages.
//!
//! Every page is [`PAGE_SIZE`] bytes with a 16-byte header, a slot
//! directory growing upward from the header, and cell content growing
//! downward from the end of the page:
//!
//! ```text
//! offset  field
//! 0..4    checksum   u32  FNV-1a of bytes[4..], sealed by the pager on write
//! 4       kind       u8   free=0, leaf=1, internal=2, meta=3
//! 5       (reserved)
//! 6..8    nslots     u16  number of slot-directory entries
//! 8..10   free_off   u16  start of the cell content area
//! 10..14  extra      u32  leaf: next-leaf page id (0 = none);
//!                         internal: rightmost child page id
//! 14..16  (reserved)
//! 16..    slots      (offset u16, len u16) per cell, in key order
//! ...     free space
//! ...4096 cells      inserted back to front
//! ```
//!
//! Cells are opaque to this module except that B-tree pages store the cell's
//! `u64` key in its first 8 bytes (little-endian), which [`Page::key`] reads
//! and [`Page::find`] binary-searches. There is no in-page deletion or
//! compaction: tables are append-only, and node splits rebuild pages from
//! scratch via [`Page::init`].

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Byte length of the fixed page header.
pub const HEADER: usize = 16;

/// Bytes per slot-directory entry.
pub const SLOT: usize = 4;

/// Largest cell a freshly initialized page can hold.
pub const MAX_CELL: usize = PAGE_SIZE - HEADER - SLOT;

/// Page kinds stored in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Unused page.
    Free = 0,
    /// B-tree leaf: cells are `[key u64][record]`.
    Leaf = 1,
    /// B-tree internal node: cells are `[key u64][child u32]`.
    Internal = 2,
    /// Store metadata (page 0): magic, version, table directory.
    Meta = 3,
}

impl PageKind {
    /// Decode a header byte.
    pub fn from_u8(b: u8) -> Option<PageKind> {
        match b {
            0 => Some(PageKind::Free),
            1 => Some(PageKind::Leaf),
            2 => Some(PageKind::Internal),
            3 => Some(PageKind::Meta),
            _ => None,
        }
    }
}

/// A heap-allocated page buffer.
#[derive(Clone)]
pub struct Page(pub Box<[u8; PAGE_SIZE]>);

impl Default for Page {
    fn default() -> Page {
        Page(Box::new([0u8; PAGE_SIZE]))
    }
}

impl Page {
    /// A zeroed page of the given kind with an empty slot directory.
    pub fn init(kind: PageKind) -> Page {
        let mut p = Page::default();
        p.0[4] = kind as u8;
        p.set_nslots(0);
        p.set_free_off(PAGE_SIZE as u16);
        p
    }

    /// The page kind, when the header byte is valid.
    pub fn kind(&self) -> Option<PageKind> {
        PageKind::from_u8(self.0[4])
    }

    fn u16_at(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.0[at], self.0[at + 1]])
    }

    fn put_u16(&mut self, at: usize, v: u16) {
        self.0[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of cells on the page.
    pub fn nslots(&self) -> usize {
        self.u16_at(6) as usize
    }

    fn set_nslots(&mut self, n: usize) {
        self.put_u16(6, n as u16);
    }

    fn free_off(&self) -> usize {
        self.u16_at(8) as usize
    }

    fn set_free_off(&mut self, v: u16) {
        self.put_u16(8, v);
    }

    /// The header's extra word (next-leaf link or rightmost child).
    pub fn extra(&self) -> u32 {
        u32::from_le_bytes([self.0[10], self.0[11], self.0[12], self.0[13]])
    }

    /// Set the header's extra word.
    pub fn set_extra(&mut self, v: u32) {
        self.0[10..14].copy_from_slice(&v.to_le_bytes());
    }

    /// Bytes available for one more cell (content plus its slot entry).
    pub fn free_space(&self) -> usize {
        self.free_off() - (HEADER + SLOT * self.nslots())
    }

    /// Would a cell of `len` bytes fit?
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let at = HEADER + SLOT * i;
        (self.u16_at(at) as usize, self.u16_at(at + 2) as usize)
    }

    /// The `i`-th cell's bytes.
    pub fn cell(&self, i: usize) -> &[u8] {
        let (off, len) = self.slot(i);
        &self.0[off..off + len]
    }

    /// The `i`-th cell's key (first 8 bytes, little-endian).
    pub fn key(&self, i: usize) -> u64 {
        let c = self.cell(i);
        u64::from_le_bytes(c[..8].try_into().expect("cell shorter than a key"))
    }

    /// Binary-search the slot directory for `key`: `Ok(i)` when cell `i`
    /// has exactly that key, `Err(i)` for the insertion point otherwise.
    pub fn find(&self, key: u64) -> std::result::Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.nslots());
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key(mid).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Insert a cell at slot position `pos`, shifting later slots right.
    /// Returns `false` (page unchanged) when the cell does not fit.
    #[must_use]
    pub fn insert_cell(&mut self, pos: usize, cell: &[u8]) -> bool {
        if !self.fits(cell.len()) {
            return false;
        }
        let n = self.nslots();
        debug_assert!(pos <= n, "slot position out of range");
        let off = self.free_off() - cell.len();
        self.0[off..off + cell.len()].copy_from_slice(cell);
        self.set_free_off(off as u16);
        // Shift slot entries [pos, n) one entry to the right.
        let src = HEADER + SLOT * pos;
        let end = HEADER + SLOT * n;
        self.0.copy_within(src..end, src + SLOT);
        self.put_u16(src, off as u16);
        self.put_u16(src + 2, cell.len() as u16);
        self.set_nslots(n + 1);
        true
    }

    /// All cells in slot order, as owned byte vectors (used by splits to
    /// rebuild nodes).
    pub fn cells(&self) -> Vec<Vec<u8>> {
        (0..self.nslots()).map(|i| self.cell(i).to_vec()).collect()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("kind", &self.kind())
            .field("nslots", &self.nslots())
            .field("free_space", &self.free_space())
            .field("extra", &self.extra())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(key: u64, payload: &[u8]) -> Vec<u8> {
        let mut c = key.to_le_bytes().to_vec();
        c.extend_from_slice(payload);
        c
    }

    #[test]
    fn insert_and_read_back_in_order() {
        let mut p = Page::init(PageKind::Leaf);
        for (i, k) in [5u64, 1, 3].iter().enumerate() {
            let pos = p.find(*k).unwrap_err();
            assert!(p.insert_cell(pos, &cell(*k, format!("v{i}").as_bytes())));
        }
        assert_eq!(p.nslots(), 3);
        assert_eq!((p.key(0), p.key(1), p.key(2)), (1, 3, 5));
        assert_eq!(&p.cell(1)[8..], b"v2");
        assert_eq!(p.find(3), Ok(1));
        assert_eq!(p.find(4), Err(2));
    }

    #[test]
    fn rejects_overflow() {
        let mut p = Page::init(PageKind::Leaf);
        let big = cell(1, &vec![0u8; MAX_CELL - 8]);
        assert!(p.insert_cell(0, &big));
        assert!(!p.insert_cell(1, &cell(2, b"x")));
        assert_eq!(p.nslots(), 1);
    }

    #[test]
    fn extra_word_round_trips() {
        let mut p = Page::init(PageKind::Internal);
        p.set_extra(0xdead_beef);
        assert_eq!(p.extra(), 0xdead_beef);
        assert_eq!(p.kind(), Some(PageKind::Internal));
    }
}
