//! Recursive-descent parser for the `imp` language.

use std::fmt;

use crate::ast::{
    BinaryOp, Block, Expr, Function, Literal, Program, Stmt, StmtId, StmtKind, UnaryOp,
};
use crate::lexer::{lex, LexError};
use crate::token::{Keyword, Span, Token, TokenKind};

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse a full program (a sequence of `fn` definitions).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    let mut functions = Vec::new();
    while !p.at(&TokenKind::Eof) {
        functions.push(p.function()?);
    }
    Ok(Program { functions })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Kw(k) if *k == kw)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.span().start,
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.at_kw(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`, found {}", kw.as_str(), self.peek())))
        }
    }

    fn ident(&mut self) -> Result<intern::Symbol, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let start = self.span();
        self.expect_kw(Keyword::Fn)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.ident()?);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.merge(self.tokens[self.pos.saturating_sub(1)].span);
        Ok(Function {
            name,
            params,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        let id = self.fresh_id();
        let kind = match self.peek().clone() {
            TokenKind::Kw(Keyword::If) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = self.block_or_single()?;
                let else_branch = if self.at_kw(Keyword::Else) {
                    self.bump();
                    if self.at_kw(Keyword::If) {
                        // `else if` — wrap the nested if in a block.
                        let nested = self.stmt()?;
                        Block {
                            stmts: vec![nested],
                        }
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Block::new()
                };
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                }
            }
            TokenKind::Kw(Keyword::For) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let var = self.ident()?;
                self.expect_kw(Keyword::In)?;
                let iterable = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block_or_single()?;
                StmtKind::ForEach {
                    var,
                    iterable,
                    body,
                }
            }
            TokenKind::Kw(Keyword::While) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block_or_single()?;
                StmtKind::While { cond, body }
            }
            TokenKind::Kw(Keyword::Return) => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                StmtKind::Return(value)
            }
            TokenKind::Kw(Keyword::Break) => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Break
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Continue
            }
            TokenKind::Kw(Keyword::Print) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.at(&TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Print(args)
            }
            TokenKind::Ident(name) if *self.peek2() == TokenKind::Eq => {
                self.bump();
                self.bump();
                let value = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Assign {
                    target: name,
                    value,
                }
            }
            _ => {
                let e = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Expr(e)
            }
        };
        let span = start.merge(self.tokens[self.pos.saturating_sub(1)].span);
        Ok(Stmt { id, kind, span })
    }

    /// Either a braced block or a single statement (Java-style bodies).
    fn block_or_single(&mut self) -> Result<Block, ParseError> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            let s = self.stmt()?;
            Ok(Block { stmts: vec![s] })
        }
    }

    // Expression grammar, lowest precedence first.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.or_expr()?;
        if self.at(&TokenKind::Question) {
            self.bump();
            let a = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let b = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinaryOp::Eq,
                TokenKind::NotEq => BinaryOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinaryOp::Lt,
                TokenKind::Le => BinaryOp::Le,
                TokenKind::Gt => BinaryOp::Gt,
                TokenKind::Ge => BinaryOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)))
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary(UnaryOp::Not, Box::new(e)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.at(&TokenKind::Dot) {
                self.bump();
                let name = self.ident()?;
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    e = Expr::MethodCall {
                        recv: Box::new(e),
                        name,
                        args,
                    };
                } else {
                    e = Expr::Field(Box::new(e), name);
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Lit(Literal::Int(i)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Lit(Literal::Float(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Literal::Str(s)))
            }
            TokenKind::Kw(Keyword::True) => {
                self.bump();
                Ok(Expr::Lit(Literal::Bool(true)))
            }
            TokenKind::Kw(Keyword::False) => {
                self.bump();
                Ok(Expr::Lit(Literal::Bool(false)))
            }
            TokenKind::Kw(Keyword::Null) => {
                self.bump();
                Ok(Expr::Lit(Literal::Null))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_find_max_score() {
        // The paper's Figure 2, expressed in `imp`.
        let src = r#"
            fn findMaxScore() {
                boards = executeQuery("SELECT * FROM board WHERE rnd_id = 1");
                scoreMax = 0;
                for (t in boards) {
                    p1 = t.p1;
                    p2 = t.p2;
                    p3 = t.p3;
                    p4 = t.p4;
                    score = max(p1, p2);
                    score = max(score, p3);
                    score = max(score, p4);
                    if (score > scoreMax)
                        scoreMax = score;
                }
                return scoreMax;
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "findMaxScore");
        assert_eq!(f.body.stmts.len(), 4);
        match &f.body.stmts[2].kind {
            StmtKind::ForEach { var, body, .. } => {
                assert_eq!(var, "t");
                assert_eq!(body.stmts.len(), 8);
            }
            other => panic!("expected for-each, got {other:?}"),
        }
    }

    #[test]
    fn single_statement_bodies() {
        let p = parse_program("fn f() { if (x > 0) y = 1; else y = 2; }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(then_branch.stmts.len(), 1);
                assert_eq!(else_branch.stmts.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let p =
            parse_program("fn f() { if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; } }")
                .unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::If { else_branch, .. } => {
                assert_eq!(else_branch.stmts.len(), 1);
                assert!(matches!(else_branch.stmts[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn method_calls_and_fields() {
        let p = parse_program("fn f() { names.add(u.name); n = names.size(); }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Expr(Expr::MethodCall { recv, name, args }) => {
                assert_eq!(**recv, Expr::var("names"));
                assert_eq!(name, "add");
                assert_eq!(
                    args[0],
                    Expr::Field(Box::new(Expr::var("u")), "name".into())
                );
            }
            other => panic!("expected method call, got {other:?}"),
        }
    }

    #[test]
    fn precedence_binds_correctly() {
        let p = parse_program("fn f() { x = a + b * c > d && e; }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Assign { value, .. } => {
                // ((a + (b*c)) > d) && e
                match value {
                    Expr::Binary(BinaryOp::And, l, _) => {
                        assert!(matches!(**l, Expr::Binary(BinaryOp::Gt, _, _)));
                    }
                    other => panic!("expected &&, got {other:?}"),
                }
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn ternary_expression() {
        let p = parse_program("fn f() { x = a > 0 ? a : 0 - a; }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Assign {
                value: Expr::Ternary(..),
                ..
            } => {}
            other => panic!("expected ternary assign, got {other:?}"),
        }
    }

    #[test]
    fn statement_ids_are_unique_and_ordered() {
        let p = parse_program("fn f() { a = 1; b = 2; for (t in q) { c = 3; } }").unwrap();
        let b = &p.functions[0].body;
        assert!(b.stmts[0].id < b.stmts[1].id);
        match &b.stmts[2].kind {
            StmtKind::ForEach { body, .. } => assert!(b.stmts[2].id < body.stmts[0].id),
            other => panic!("expected for-each, got {other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("fn f() { x = ; }").unwrap_err();
        assert_eq!(err.offset, 13);
        assert!(err.message.contains("expected expression"));
    }

    #[test]
    fn print_statement() {
        let p = parse_program("fn f() { print(\"x=\", x); }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Print(args) => assert_eq!(args.len(), 2),
            other => panic!("expected print, got {other:?}"),
        }
    }

    #[test]
    fn break_and_continue() {
        let p = parse_program("fn f() { for (t in q) { if (t.x > 3) break; continue; } }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::ForEach { body, .. } => {
                assert!(matches!(body.stmts[1].kind, StmtKind::Continue));
            }
            other => panic!("expected for-each, got {other:?}"),
        }
    }

    #[test]
    fn multiple_functions() {
        let p = parse_program("fn a() { return 1; } fn b(x, y) { return x; }").unwrap();
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[1].params, vec!["x", "y"]);
    }
}
