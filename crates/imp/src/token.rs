//! Tokens and source spans for the `imp` language.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Build a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both inputs.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Language keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    /// `fn` — function definition.
    Fn,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `for`.
    For,
    /// `in` — cursor-loop binder.
    In,
    /// `while`.
    While,
    /// `return`.
    Return,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `true`.
    True,
    /// `false`.
    False,
    /// `null`.
    Null,
    /// `print` — output statement.
    Print,
}

impl Keyword {
    /// Look up a keyword by its spelling.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not FromStr
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "fn" => Keyword::Fn,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "in" => Keyword::In,
            "while" => Keyword::While,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "null" => Keyword::Null,
            "print" => Keyword::Print,
            _ => return None,
        })
    }

    /// The keyword's spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Fn => "fn",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::For => "for",
            Keyword::In => "in",
            Keyword::While => "while",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Null => "null",
            Keyword::Print => "print",
        }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (interned, so tokens clone without allocating).
    Ident(intern::Symbol),
    /// Keyword.
    Kw(Keyword),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped contents).
    Str(String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Kw(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [Keyword::Fn, Keyword::For, Keyword::In, Keyword::Print] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("select"), None);
    }

    #[test]
    fn span_merge_covers_both() {
        let s = Span::new(3, 7).merge(Span::new(1, 5));
        assert_eq!(s, Span::new(1, 7));
    }
}

/// Convert a byte offset into a 1-based (line, column) pair.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let clamped = offset.min(src.len());
    let before = &src[..clamped];
    let line = before.bytes().filter(|b| *b == b'\n').count() + 1;
    let col = before.rfind('\n').map_or(clamped + 1, |nl| clamped - nl);
    (line, col)
}

#[cfg(test)]
mod line_col_tests {
    use super::*;

    #[test]
    fn first_line() {
        assert_eq!(line_col("abc", 0), (1, 1));
        assert_eq!(line_col("abc", 2), (1, 3));
    }

    #[test]
    fn later_lines() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn offset_past_end_clamps() {
        assert_eq!(line_col("a\nb", 99), (2, 2));
    }
}
