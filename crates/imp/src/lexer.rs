//! Hand-written lexer for the `imp` language.

use std::fmt;

use crate::token::{Keyword, Span, Token, TokenKind};

/// A lexical error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` into a vector ending with a single [`TokenKind::Eof`].
///
/// Supports `//` line comments and `/* … */` block comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        let start = i;
        let kind = match c {
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let text = &src[i..j];
                i = j;
                match Keyword::from_str(text) {
                    Some(kw) => TokenKind::Kw(kw),
                    None => TokenKind::Ident(intern::Symbol::intern(text)),
                }
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j + 1 < bytes.len()
                    && bytes[j] == b'.'
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &src[i..j];
                i = j;
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("invalid float literal `{text}`"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("invalid integer literal `{text}`"),
                        offset: start,
                    })?)
                }
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    match bytes[j] {
                        b'"' => {
                            j += 1;
                            break;
                        }
                        b'\\' => {
                            if j + 1 >= bytes.len() {
                                return Err(LexError {
                                    message: "unterminated escape".into(),
                                    offset: j,
                                });
                            }
                            let esc = bytes[j + 1] as char;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '"' => '"',
                                '\\' => '\\',
                                other => {
                                    return Err(LexError {
                                        message: format!("unknown escape `\\{other}`"),
                                        offset: j,
                                    })
                                }
                            });
                            j += 2;
                        }
                        b => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                i = j;
                TokenKind::Str(s)
            }
            '=' if peek(bytes, i + 1) == Some('=') => two(&mut i, TokenKind::EqEq),
            '!' if peek(bytes, i + 1) == Some('=') => two(&mut i, TokenKind::NotEq),
            '<' if peek(bytes, i + 1) == Some('=') => two(&mut i, TokenKind::Le),
            '>' if peek(bytes, i + 1) == Some('=') => two(&mut i, TokenKind::Ge),
            '&' if peek(bytes, i + 1) == Some('&') => two(&mut i, TokenKind::AndAnd),
            '|' if peek(bytes, i + 1) == Some('|') => two(&mut i, TokenKind::OrOr),
            '+' => one(&mut i, TokenKind::Plus),
            '-' => one(&mut i, TokenKind::Minus),
            '*' => one(&mut i, TokenKind::Star),
            '/' => one(&mut i, TokenKind::Slash),
            '%' => one(&mut i, TokenKind::Percent),
            '=' => one(&mut i, TokenKind::Eq),
            '<' => one(&mut i, TokenKind::Lt),
            '>' => one(&mut i, TokenKind::Gt),
            '!' => one(&mut i, TokenKind::Bang),
            '?' => one(&mut i, TokenKind::Question),
            ':' => one(&mut i, TokenKind::Colon),
            '.' => one(&mut i, TokenKind::Dot),
            ',' => one(&mut i, TokenKind::Comma),
            ';' => one(&mut i, TokenKind::Semi),
            '(' => one(&mut i, TokenKind::LParen),
            ')' => one(&mut i, TokenKind::RParen),
            '{' => one(&mut i, TokenKind::LBrace),
            '}' => one(&mut i, TokenKind::RBrace),
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: start,
                })
            }
        };
        out.push(Token {
            kind,
            span: Span::new(start, i),
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(bytes.len(), bytes.len()),
    });
    Ok(out)
}

fn peek(bytes: &[u8], i: usize) -> Option<char> {
    bytes.get(i).map(|b| *b as char)
}

fn one(i: &mut usize, kind: TokenKind) -> TokenKind {
    *i += 1;
    kind
}

fn two(i: &mut usize, kind: TokenKind) -> TokenKind {
    *i += 2;
    kind
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 5;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Int(5),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("for t in boards"),
            vec![
                TokenKind::Kw(Keyword::For),
                TokenKind::Ident("t".into()),
                TokenKind::Kw(Keyword::In),
                TokenKind::Ident("boards".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("a >= b && c != d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Ident("b".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("c".into()),
                TokenKind::NotEq,
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n""#),
            vec![TokenKind::Str("a\"b\n".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x // comment\n/* block\n */ y"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn floats_and_ints() {
        assert_eq!(
            kinds("1.5 2"),
            vec![TokenKind::Float(1.5), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn field_access_after_int_is_not_float() {
        // `1.x` — digit followed by dot followed by non-digit.
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn error_on_bad_char() {
        let err = lex("x @ y").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn error_on_unterminated_comment() {
        assert!(lex("/* abc").is_err());
    }
}
