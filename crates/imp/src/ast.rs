//! Abstract syntax tree for the `imp` language.
//!
//! Statements carry globally-unique [`StmtId`]s (assigned by the parser, or
//! by [`Program::renumber`] after AST surgery). The dependence analyses in
//! the `analysis` crate and the rewriter in `eqsql-core` key everything on
//! these ids.

use std::fmt;

use intern::Symbol;

use crate::token::Span;

/// A whole program: an ordered list of function definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Re-assign fresh, unique statement ids across the whole program.
    ///
    /// Must be called after any transformation that clones or splices
    /// statements (inlining, rewriting), so ids remain unique.
    pub fn renumber(&mut self) {
        let mut next = 0u32;
        for f in &mut self.functions {
            renumber_block(&mut f.body, &mut next);
        }
    }
}

fn renumber_block(b: &mut Block, next: &mut u32) {
    for s in &mut b.stmts {
        s.id = StmtId(*next);
        *next += 1;
        match &mut s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                renumber_block(then_branch, next);
                renumber_block(else_branch, next);
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                renumber_block(body, next);
            }
            _ => {}
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: Symbol,
    /// Formal parameter names.
    pub params: Vec<Symbol>,
    /// Body.
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// A `{}`-delimited sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Block::default()
    }
}

/// Unique identifier of a statement within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Unique id (see [`StmtId`]).
    pub id: StmtId,
    /// The statement payload.
    pub kind: StmtKind,
    /// Source span.
    pub span: Span,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `target = value;`
    Assign {
        /// Assigned variable.
        target: Symbol,
        /// Right-hand side.
        value: Expr,
    },
    /// An expression evaluated for effect, e.g. `results.add(x);`.
    Expr(Expr),
    /// `if (cond) { … } else { … }` (the else branch may be empty).
    If {
        /// Condition.
        cond: Expr,
        /// True branch.
        then_branch: Block,
        /// False branch (empty block when absent).
        else_branch: Block,
    },
    /// Cursor loop `for (v in iterable) { … }`.
    ForEach {
        /// Loop variable bound to each element.
        var: Symbol,
        /// Iterated collection.
        iterable: Expr,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) { … }` — never extracted (paper Sec. 7.1: batching
    /// handles these via loop splitting; we parse but do not translate).
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `return [expr];`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `print(e1, e2, …);`
    Print(Vec<Expr>),
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Null.
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinaryOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "&&",
            BinaryOp::Or => "||",
        }
    }

    /// True for `== != < <= > >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal.
    Lit(Literal),
    /// Variable reference.
    Var(Symbol),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Ternary `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Field access `obj.field` — models Java getters.
    Field(Box<Expr>, Symbol),
    /// Free function call `name(args…)`: library functions (`max`, `min`,
    /// `abs`, `concat`, `list`, `set`), database access (`executeQuery`,
    /// `executeUpdate`), or user-defined `imp` functions.
    Call {
        /// Callee name.
        name: Symbol,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Method call `recv.name(args…)`: collection operations (`add`,
    /// `insert`, `contains`, `size`, `get`, `isEmpty`) and string ops.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: Symbol,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<Symbol>) -> Self {
        Expr::Var(name.into())
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Self {
        Expr::Lit(Literal::Int(v))
    }

    /// Shorthand for a string literal.
    pub fn str(v: impl Into<String>) -> Self {
        Expr::Lit(Literal::Str(v.into()))
    }

    /// Shorthand for a call.
    pub fn call(name: impl Into<Symbol>, args: Vec<Expr>) -> Self {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Visit every sub-expression (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Unary(_, e) => e.walk(f),
            Expr::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Ternary(c, a, b) => {
                c.walk(f);
                a.walk(f);
                b.walk(f);
            }
            Expr::Field(e, _) => e.walk(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// All variable names read by this expression.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Var(v) = e {
                out.push(*v);
            }
        });
        out
    }

    /// True when this expression (or a sub-expression) calls one of `names`.
    pub fn calls_any(&self, names: &[&str]) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Call { name, .. } = e {
                if names.contains(&name.as_str()) {
                    found = true;
                }
            }
        });
        found
    }
}

/// Names of built-in database access functions, and the single shared
/// effect table for every builtin the language knows.
///
/// The effect classification here is the *one* source of truth consumed by
/// both the def/use analysis (`analysis::defuse`) and the interprocedural
/// effect analysis (`analysis::effects`); keeping it next to the AST stops
/// the per-analysis copies from drifting.
pub mod builtins {
    /// Runs a query, returns its result list.
    pub const EXECUTE_QUERY: &str = "executeQuery";
    /// Runs a scalar query, returns the single value of the single row.
    pub const EXECUTE_SCALAR: &str = "executeScalar";
    /// Runs a DML statement against the database.
    pub const EXECUTE_UPDATE: &str = "executeUpdate";
    /// Runs one parameterized scalar lookup for a whole batch of parameter
    /// values in a single round trip (the batching baseline's primitive,
    /// modeling the parameter-table technique of Guravannavar & Sudarshan).
    pub const EXECUTE_BATCH: &str = "executeBatch";
    /// All functions that touch the database.
    pub const DB_FUNCTIONS: [&str; 4] =
        [EXECUTE_QUERY, EXECUTE_SCALAR, EXECUTE_UPDATE, EXECUTE_BATCH];

    /// Pure library functions: no external reads or writes, value depends
    /// only on the arguments.
    pub const PURE_FUNCTIONS: &[&str] = &[
        "max", "min", "abs", "concat", "list", "set", "lower", "upper", "length", "pair",
        "coalesce",
    ];

    /// Collection / string methods that mutate their receiver.
    pub const MUTATING_METHODS: &[&str] = &["add", "insert", "append", "remove", "clear", "addAll"];

    /// Collection methods that only read their receiver.
    pub const READING_METHODS: &[&str] =
        &["contains", "size", "get", "isEmpty", "first", "indexOf"];

    /// Effect class of a builtin *free function*.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FnEffect {
        /// No external access at all.
        Pure,
        /// Reads the database (treated as one external location).
        DbRead,
        /// Writes (and reads) the database.
        DbWrite,
    }

    /// Classify a free-function name. `None` means the name is not a
    /// builtin (a user-defined function, or genuinely unknown).
    pub fn function_effect(name: &str) -> Option<FnEffect> {
        match name {
            EXECUTE_QUERY | EXECUTE_SCALAR | EXECUTE_BATCH => Some(FnEffect::DbRead),
            EXECUTE_UPDATE => Some(FnEffect::DbWrite),
            n if PURE_FUNCTIONS.contains(&n) => Some(FnEffect::Pure),
            _ => None,
        }
    }

    /// Effect class of a builtin *method* name.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum MethodEffect {
        /// Mutates its receiver (still pure w.r.t. external state).
        MutatesReceiver,
        /// Only reads its receiver.
        ReadsReceiver,
    }

    /// Classify a method name; `None` for unknown methods (conservatively
    /// treated as external accesses by the analyses).
    pub fn method_effect(name: &str) -> Option<MethodEffect> {
        if MUTATING_METHODS.contains(&name) {
            Some(MethodEffect::MutatesReceiver)
        } else if READING_METHODS.contains(&name) {
            Some(MethodEffect::ReadsReceiver)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_collects_reads() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::var("a")),
            Box::new(Expr::Field(Box::new(Expr::var("t")), "x".into())),
        );
        assert_eq!(e.vars(), vec!["a".to_string(), "t".to_string()]);
    }

    #[test]
    fn calls_any_detects_nested_calls() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::int(1)),
            Box::new(Expr::call(
                "executeQuery",
                vec![Expr::str("SELECT * FROM t")],
            )),
        );
        assert!(e.calls_any(&builtins::DB_FUNCTIONS));
        assert!(!Expr::int(1).calls_any(&builtins::DB_FUNCTIONS));
    }

    #[test]
    fn renumber_assigns_unique_ids() {
        use crate::parser::parse_program;
        let mut p = parse_program(
            "fn f() { x = 1; if (x > 0) { y = 2; } else { y = 3; } for (t in q) { z = t.a; } }",
        )
        .unwrap();
        p.renumber();
        let mut ids = Vec::new();
        fn collect(b: &Block, ids: &mut Vec<u32>) {
            for s in &b.stmts {
                ids.push(s.id.0);
                match &s.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        collect(then_branch, ids);
                        collect(else_branch, ids);
                    }
                    StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                        collect(body, ids)
                    }
                    _ => {}
                }
            }
        }
        collect(&p.functions[0].body, &mut ids);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be unique");
    }
}
