//! `imp` — the imperative source language of the `eqsql` reproduction.
//!
//! The original system analyses Java database applications via Soot/Jimple.
//! The paper stresses (Sec. 1, contribution 4) that "the techniques
//! themselves are not specific to any language or API", so this reproduction
//! defines a small Java-like language able to express every code fragment
//! the paper discusses: cursor loops over `executeQuery` results, getters
//! (field accesses), `Math.max`-style library calls, collections
//! (list/set `add`), conditionals, user-defined functions, and output
//! statements.
//!
//! Crate layout:
//!
//! * [`token`] / [`lexer`] — tokens and the hand-written lexer;
//! * [`ast`] — the abstract syntax tree (statements carry unique
//!   [`ast::StmtId`]s used by the dependence analyses);
//! * [`parser`] — recursive-descent parser;
//! * [`pretty`] — source regeneration (used to show rewritten programs);
//! * [`desugar`] — the paper's source normalizations: the
//!   `if (expr OP v) v = expr` min/max pattern (Sec. 4.2) and the
//!   print-to-ordered-append preprocessing (Sec. 2 / Appendix B).

pub mod ast;
pub mod desugar;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{BinaryOp, Block, Expr, Function, Literal, Program, Stmt, StmtId, StmtKind, UnaryOp};
pub use lexer::LexError;
pub use parser::{parse_program, ParseError};
pub use pretty::pretty_print;

/// Parse a program and apply the standard desugaring passes
/// (min/max normalization; print statements are *not* rewritten here — use
/// [`desugar::rewrite_prints`] explicitly, as Sec. 2 describes it as a
/// preprocessing step chosen per use case).
pub fn parse_and_normalize(src: &str) -> Result<Program, ParseError> {
    let mut p = parse_program(src)?;
    desugar::normalize_getters(&mut p);
    desugar::normalize_minmax(&mut p);
    desugar::normalize_bool_flags(&mut p);
    Ok(p)
}
