//! Source-level normalizations described by the paper.
//!
//! * [`normalize_minmax`] — Sec. 4.2: the structure
//!   `if (expr OP v) then v = expr` (with `OP ∈ {<, >, <=, >=}`) is a common
//!   implementation of min/max aggregation; it is rewritten to
//!   `v = max(v, expr)` / `v = min(v, expr)` *before* F-IR translation. The
//!   mirrored form `if (v OP expr)` is flipped first.
//! * [`rewrite_prints`] — Sec. 2 / Appendix B ("Handling Output Ordering"):
//!   output statements are replaced with appends to a global ordered
//!   collection (`__out`), printed once at the end of the function, so that
//!   a printing cursor loop becomes an ordinary collection-building loop
//!   amenable to extraction.

use crate::ast::{BinaryOp, Block, Expr, Function, Program, Stmt, StmtId, StmtKind};
use crate::token::Span;

/// The name of the synthetic output collection used by [`rewrite_prints`].
pub const OUT_VAR: &str = "__out";

/// Rewrite `if (expr OP v) v = expr;` into `v = max/min(v, expr);`
/// throughout the program. Returns the number of rewrites performed.
pub fn normalize_minmax(p: &mut Program) -> usize {
    let mut count = 0;
    for f in &mut p.functions {
        count += normalize_block(&mut f.body);
    }
    count
}

/// Rewrite boolean-flag conditionals (paper Appendix B, "Checking for
/// existence using cursor loops"):
///
/// * `if (c) v = true;`  →  `v = v || c;`
/// * `if (c) v = false;` →  `v = v && !c;`
///
/// restoring the accumulation cycle `loopToFold` needs. Returns the number
/// of rewrites.
pub fn normalize_bool_flags(p: &mut Program) -> usize {
    let mut count = 0;
    for f in &mut p.functions {
        count += bool_flags_block(&mut f.body);
    }
    count
}

fn bool_flags_block(b: &mut Block) -> usize {
    let mut count = 0;
    for s in &mut b.stmts {
        match &mut s.kind {
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if else_branch.stmts.is_empty() && then_branch.stmts.len() == 1 {
                    if let StmtKind::Assign {
                        target,
                        value: Expr::Lit(crate::ast::Literal::Bool(bv)),
                    } = &then_branch.stmts[0].kind
                    {
                        let target = *target;
                        let value = if *bv {
                            Expr::Binary(
                                BinaryOp::Or,
                                Box::new(Expr::Var(target)),
                                Box::new(cond.clone()),
                            )
                        } else {
                            Expr::Binary(
                                BinaryOp::And,
                                Box::new(Expr::Var(target)),
                                Box::new(Expr::Unary(
                                    crate::ast::UnaryOp::Not,
                                    Box::new(cond.clone()),
                                )),
                            )
                        };
                        s.kind = StmtKind::Assign { target, value };
                        count += 1;
                        continue;
                    }
                }
                count += bool_flags_block(then_branch);
                count += bool_flags_block(else_branch);
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                count += bool_flags_block(body);
            }
            _ => {}
        }
    }
    count
}

fn normalize_block(b: &mut Block) -> usize {
    let mut count = 0;
    for s in &mut b.stmts {
        match &mut s.kind {
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if else_branch.stmts.is_empty() {
                    if let Some((target, call)) = minmax_rewrite(cond, then_branch) {
                        s.kind = StmtKind::Assign {
                            target,
                            value: call,
                        };
                        count += 1;
                        continue;
                    }
                }
                count += normalize_block(then_branch);
                count += normalize_block(else_branch);
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                count += normalize_block(body);
            }
            _ => {}
        }
    }
    count
}

/// Recognize `if (a OP b) v = e;` where one comparison side is `v` and the
/// other equals `e`; return the replacement `v = max/min(v, e)`.
fn minmax_rewrite(cond: &Expr, then_branch: &Block) -> Option<(intern::Symbol, Expr)> {
    if then_branch.stmts.len() != 1 {
        return None;
    }
    let (target, value) = match &then_branch.stmts[0].kind {
        StmtKind::Assign { target, value } => (*target, value.clone()),
        _ => return None,
    };
    let (op, lhs, rhs) = match cond {
        Expr::Binary(op, l, r) if op.is_comparison() => (*op, l.as_ref(), r.as_ref()),
        _ => return None,
    };
    // Normalize to the form `expr OP v`.
    let (op, expr_side) = if *rhs == Expr::Var(target) && *lhs == value {
        (op, lhs)
    } else if *lhs == Expr::Var(target) && *rhs == value {
        // `v OP expr` — flip the comparison (paper Sec. 4.2 last paragraph).
        let flipped = match op {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            _ => return None,
        };
        (flipped, rhs)
    } else {
        return None;
    };
    let func = match op {
        BinaryOp::Gt | BinaryOp::Ge => "max",
        BinaryOp::Lt | BinaryOp::Le => "min",
        _ => return None,
    };
    Some((
        target,
        Expr::Call {
            name: func.into(),
            args: vec![Expr::Var(target), expr_side.clone()],
        },
    ))
}

/// Replace every `print(e1, …)` in `f` with `__out.add(e)` appends to a
/// synthetic ordered collection, initialize `__out = list()` at the top and
/// `print(__out)` at the bottom. Returns `true` when any print was found.
///
/// The caller should re-[`Program::renumber`] afterwards.
pub fn rewrite_prints(f: &mut Function) -> bool {
    let mut found = false;
    rewrite_prints_block(&mut f.body, &mut found);
    if found {
        let init = Stmt {
            id: StmtId(u32::MAX),
            kind: StmtKind::Assign {
                target: OUT_VAR.into(),
                value: Expr::call("list", vec![]),
            },
            span: Span::default(),
        };
        let flush = Stmt {
            id: StmtId(u32::MAX - 1),
            kind: StmtKind::Print(vec![Expr::var(OUT_VAR)]),
            span: Span::default(),
        };
        f.body.stmts.insert(0, init);
        // Flush before *every* return (early exits must not lose output),
        // and at the end of the function when it can fall off the bottom.
        insert_flush_before_returns(&mut f.body, &flush);
        match f.body.stmts.last() {
            Some(s) if matches!(s.kind, StmtKind::Return(_)) => {}
            _ => f.body.stmts.push(flush),
        }
    }
    found
}

fn insert_flush_before_returns(b: &mut Block, flush: &Stmt) {
    let mut i = 0;
    while i < b.stmts.len() {
        match &mut b.stmts[i].kind {
            StmtKind::Return(_) => {
                b.stmts.insert(i, flush.clone());
                i += 2;
                continue;
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                insert_flush_before_returns(then_branch, flush);
                insert_flush_before_returns(else_branch, flush);
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                insert_flush_before_returns(body, flush);
            }
            _ => {}
        }
        i += 1;
    }
}

fn rewrite_prints_block(b: &mut Block, found: &mut bool) {
    for s in &mut b.stmts {
        match &mut s.kind {
            StmtKind::Print(args) => {
                *found = true;
                let value = match args.len() {
                    0 => Expr::str(""),
                    1 => args[0].clone(),
                    _ => Expr::call("concat", args.clone()),
                };
                s.kind = StmtKind::Expr(Expr::MethodCall {
                    recv: Box::new(Expr::var(OUT_VAR)),
                    name: "add".into(),
                    args: vec![value],
                });
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                rewrite_prints_block(then_branch, found);
                rewrite_prints_block(else_branch, found);
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                rewrite_prints_block(body, found);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::pretty::pretty_print;

    #[test]
    fn minmax_pattern_becomes_max_call() {
        let mut p = parse_program(
            "fn f() { for (t in q) { if (t.score > best) best = t.score; } return best; }",
        )
        .unwrap();
        assert_eq!(normalize_minmax(&mut p), 1);
        let printed = pretty_print(&p);
        assert!(printed.contains("best = max(best, t.score);"), "{printed}");
    }

    #[test]
    fn flipped_pattern_becomes_min_call() {
        // `v < expr` means v should take expr when expr is… careful:
        // `if (lo > t.x) lo = t.x` is a min; `if (lo < t.x) lo = t.x` is a max.
        let mut p = parse_program("fn f() { for (t in q) { if (lo > t.x) lo = t.x; } return lo; }")
            .unwrap();
        assert_eq!(normalize_minmax(&mut p), 1);
        assert!(pretty_print(&p).contains("lo = min(lo, t.x);"));
    }

    #[test]
    fn var_on_left_is_flipped() {
        let mut p = parse_program("fn f() { for (t in q) { if (hi < t.x) hi = t.x; } return hi; }")
            .unwrap();
        assert_eq!(normalize_minmax(&mut p), 1);
        assert!(pretty_print(&p).contains("hi = max(hi, t.x);"));
    }

    #[test]
    fn unrelated_if_untouched() {
        let src = "fn f() { if (a > b) c = 1; }";
        let mut p = parse_program(src).unwrap();
        assert_eq!(normalize_minmax(&mut p), 0);
    }

    #[test]
    fn if_with_else_untouched() {
        let mut p =
            parse_program("fn f() { for (t in q) { if (t.x > v) { v = t.x; } else { w = 1; } } }")
                .unwrap();
        assert_eq!(normalize_minmax(&mut p), 0);
    }

    #[test]
    fn rewrite_prints_inserts_out_collection() {
        let mut p = parse_program(
            r#"fn f() { rows = executeQuery("SELECT * FROM t"); for (r in rows) { print(r.name); } return 0; }"#,
        )
        .unwrap();
        let f = &mut p.functions[0];
        assert!(rewrite_prints(f));
        p.renumber();
        let printed = pretty_print(&p);
        assert!(printed.contains("__out = list();"), "{printed}");
        assert!(printed.contains("__out.add(r.name);"), "{printed}");
        // Flush goes before the return.
        let flush_pos = printed.find("print(__out);").unwrap();
        let ret_pos = printed.find("return 0;").unwrap();
        assert!(flush_pos < ret_pos, "{printed}");
    }

    #[test]
    fn rewrite_prints_concats_multiple_args() {
        let mut p = parse_program(r#"fn f() { print("a", x); }"#).unwrap();
        assert!(rewrite_prints(&mut p.functions[0]));
        assert!(pretty_print(&p).contains("__out.add(concat(\"a\", x));"));
    }

    #[test]
    fn no_prints_no_changes() {
        let mut p = parse_program("fn f() { x = 1; }").unwrap();
        assert!(!rewrite_prints(&mut p.functions[0]));
        assert_eq!(p.functions[0].body.stmts.len(), 1);
    }
}

/// Rewrite Java-bean getter calls into field accesses throughout the
/// program: `t.getP1()` → `t.p1` (paper Sec. 3.2.1 models "getter and setter
/// functions for object attributes" as ee-DAG operators; we normalize them
/// at the source level). Returns the number of rewrites.
pub fn normalize_getters(p: &mut Program) -> usize {
    let mut count = 0;
    for f in &mut p.functions {
        getters_block(&mut f.body, &mut count);
    }
    count
}

fn getters_block(b: &mut Block, count: &mut usize) {
    for s in &mut b.stmts {
        match &mut s.kind {
            StmtKind::Assign { value, .. } => getters_expr(value, count),
            StmtKind::Expr(e) => getters_expr(e, count),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                getters_expr(cond, count);
                getters_block(then_branch, count);
                getters_block(else_branch, count);
            }
            StmtKind::ForEach { iterable, body, .. } => {
                getters_expr(iterable, count);
                getters_block(body, count);
            }
            StmtKind::While { cond, body } => {
                getters_expr(cond, count);
                getters_block(body, count);
            }
            StmtKind::Return(Some(v)) => getters_expr(v, count),
            StmtKind::Print(args) => {
                for a in args {
                    getters_expr(a, count);
                }
            }
            _ => {}
        }
    }
}

fn getters_expr(e: &mut Expr, count: &mut usize) {
    // Rewrite bottom-up.
    match e {
        Expr::Unary(_, x) => getters_expr(x, count),
        Expr::Binary(_, l, r) => {
            getters_expr(l, count);
            getters_expr(r, count);
        }
        Expr::Ternary(c, a, b) => {
            getters_expr(c, count);
            getters_expr(a, count);
            getters_expr(b, count);
        }
        Expr::Field(o, _) => getters_expr(o, count),
        Expr::Call { args, .. } => {
            for a in args {
                getters_expr(a, count);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            getters_expr(recv, count);
            for a in args {
                getters_expr(a, count);
            }
        }
        _ => {}
    }
    if let Expr::MethodCall { recv, name, args } = e {
        if args.is_empty() {
            if let Some(rest) = name.strip_prefix("get") {
                if !rest.is_empty() {
                    // getP1 → p1, getRoleName → roleName.
                    let mut field = String::new();
                    let mut cs = rest.chars();
                    if let Some(first) = cs.next() {
                        field.extend(first.to_lowercase());
                    }
                    field.extend(cs);
                    *e = Expr::Field(recv.clone(), intern::Symbol::intern(&field));
                    *count += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod getter_tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::pretty::pretty_print;

    #[test]
    fn getters_become_fields() {
        let mut p = parse_program(
            "fn f() { for (t in boards) { p1 = t.getP1(); s = max(t.getP2(), p1); } }",
        )
        .unwrap();
        assert_eq!(normalize_getters(&mut p), 2);
        let out = pretty_print(&p);
        assert!(out.contains("t.p1"), "{out}");
        assert!(out.contains("t.p2"), "{out}");
        assert!(!out.contains("getP"), "{out}");
    }

    #[test]
    fn camel_case_getter() {
        let mut p = parse_program("fn f(u) { return u.getRoleName(); }").unwrap();
        assert_eq!(normalize_getters(&mut p), 1);
        assert!(pretty_print(&p).contains("u.roleName"));
    }

    #[test]
    fn non_getters_untouched() {
        let mut p = parse_program("fn f(c) { return c.size(); }").unwrap();
        assert_eq!(normalize_getters(&mut p), 0);
    }

    #[test]
    fn getter_with_args_untouched() {
        let mut p = parse_program("fn f(c) { return c.getItem(3); }").unwrap();
        assert_eq!(normalize_getters(&mut p), 0);
    }
}
