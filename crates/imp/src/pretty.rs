//! Source regeneration for `imp` programs.
//!
//! Used to display rewritten programs after SQL extraction (paper Sec. 5.2:
//! "The original program is then rewritten to derive the value of that
//! particular variable, using the extracted equivalent SQL").

use std::fmt::Write as _;

use crate::ast::{Block, Expr, Function, Literal, Program, Stmt, StmtKind};

/// Pretty-print a whole program.
pub fn pretty_print(p: &Program) -> String {
    let mut out = String::new();
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        function(&mut out, f);
    }
    out
}

/// Pretty-print a single function.
pub fn pretty_function(f: &Function) -> String {
    let mut out = String::new();
    function(&mut out, f);
    out
}

/// Pretty-print a single expression.
pub fn pretty_expr(e: &Expr) -> String {
    let mut out = String::new();
    expr(&mut out, e);
    out
}

fn function(out: &mut String, f: &Function) {
    let _ = write!(
        out,
        "fn {}({}) ",
        f.name,
        f.params
            .iter()
            .map(|p| p.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    block(out, &f.body, 0);
    out.push('\n');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match &s.kind {
        StmtKind::Assign { target, value } => {
            let _ = write!(out, "{target} = ");
            expr(out, value);
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            expr(out, e);
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("if (");
            expr(out, cond);
            out.push_str(") ");
            block(out, then_branch, level);
            if !else_branch.stmts.is_empty() {
                out.push_str(" else ");
                block(out, else_branch, level);
            }
            out.push('\n');
        }
        StmtKind::ForEach {
            var,
            iterable,
            body,
        } => {
            let _ = write!(out, "for ({var} in ");
            expr(out, iterable);
            out.push_str(") ");
            block(out, body, level);
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            out.push_str("while (");
            expr(out, cond);
            out.push_str(") ");
            block(out, body, level);
            out.push('\n');
        }
        StmtKind::Return(v) => {
            out.push_str("return");
            if let Some(v) = v {
                out.push(' ');
                expr(out, v);
            }
            out.push_str(";\n");
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Print(args) => {
            out.push_str("print(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a);
            }
            out.push_str(");\n");
        }
    }
}

fn expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Lit(l) => literal(out, l),
        Expr::Var(v) => out.push_str(v),
        Expr::Unary(op, x) => {
            out.push(match op {
                crate::ast::UnaryOp::Neg => '-',
                crate::ast::UnaryOp::Not => '!',
            });
            maybe_paren(out, x);
        }
        Expr::Binary(op, l, r) => {
            maybe_paren(out, l);
            let _ = write!(out, " {} ", op.as_str());
            maybe_paren(out, r);
        }
        Expr::Ternary(c, a, b) => {
            maybe_paren(out, c);
            out.push_str(" ? ");
            maybe_paren(out, a);
            out.push_str(" : ");
            maybe_paren(out, b);
        }
        Expr::Field(o, name) => {
            maybe_paren(out, o);
            let _ = write!(out, ".{name}");
        }
        Expr::Call { name, args } => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a);
            }
            out.push(')');
        }
        Expr::MethodCall { recv, name, args } => {
            maybe_paren(out, recv);
            let _ = write!(out, ".{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a);
            }
            out.push(')');
        }
    }
}

fn maybe_paren(out: &mut String, e: &Expr) {
    let needs = matches!(e, Expr::Binary(..) | Expr::Ternary(..) | Expr::Unary(..));
    if needs {
        out.push('(');
    }
    expr(out, e);
    if needs {
        out.push(')');
    }
}

fn literal(out: &mut String, l: &Literal) {
    match l {
        Literal::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Literal::Float(v) => {
            let _ = write!(out, "{v}");
        }
        Literal::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Literal::Str(s) => {
            let _ = write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
        }
        Literal::Null => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Pretty-printed source must reparse to the same AST (modulo ids/spans).
    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = pretty_print(&p1);
        let p2 = parse_program(&printed).unwrap_or_else(|e| {
            panic!("reparse failed: {e}\n--- printed ---\n{printed}");
        });
        // Compare shape via a second print (ids/spans differ).
        assert_eq!(printed, pretty_print(&p2), "print not idempotent");
    }

    #[test]
    fn roundtrip_figure2() {
        roundtrip(
            r#"fn findMaxScore() {
                boards = executeQuery("SELECT * FROM board WHERE rnd_id = 1");
                scoreMax = 0;
                for (t in boards) {
                    score = max(max(max(t.p1, t.p2), t.p3), t.p4);
                    if (score > scoreMax) scoreMax = score;
                }
                return scoreMax;
            }"#,
        );
    }

    #[test]
    fn roundtrip_collections_and_prints() {
        roundtrip(
            r#"fn f(threshold) {
                rows = executeQuery("SELECT * FROM emp WHERE sal > ?", threshold);
                names = list();
                for (r in rows) {
                    names.add(r.name);
                    print("name: ", r.name);
                }
                return names;
            }"#,
        );
    }

    #[test]
    fn roundtrip_operators() {
        roundtrip("fn f(a, b) { x = (a + b) * 2 - -a; y = !(a > b) && (b <= a || a == 1); return x > 0 ? x : y ? 1 : 0; }");
    }

    #[test]
    fn string_escapes_survive() {
        roundtrip(r#"fn f() { s = "a\"b\\c"; return s; }"#);
    }
}
