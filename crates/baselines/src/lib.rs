//! `baselines` — the holistic-optimization baselines the paper compares
//! against in Experiments 2 and 8:
//!
//! * **batching** (Guravannavar & Sudarshan, VLDB 2008, \[11\]): rewrite
//!   iterative parameterized query execution into one set-oriented query
//!   over an uploaded parameter table;
//! * **prefetching** (Ramachandra & Sudarshan, SIGMOD 2012, \[19\]): submit
//!   queries asynchronously as soon as their parameters are available,
//!   overlapping round-trip latencies.
//!
//! [`applicability`] implements the static applicability tests used for
//! Experiment 2's 7/33 (batching) vs 24/33 (EqSQL) counts;
//! [`star`] implements the execution strategies on star-schema workloads
//! for Figure 11 (Experiment 8).

pub mod applicability;
pub mod batch_rewrite;
pub mod star;

pub use applicability::{batching_applicable, prefetch_applicable};
pub use batch_rewrite::rewrite_batching;
pub use star::{InnerLookup, StarWorkload};
