//! Static applicability tests for the baselines (Experiment 2).
//!
//! From the paper:
//!
//! * "Batching is applicable only when there is parameterized iterative
//!   query invocation from a loop. If the loop iterates over a query
//!   result, batching is able to extract a join query." Batching also
//!   handles `while` loops via loop splitting.
//! * "Prefetching is possible in all cases we examined" — any query whose
//!   parameters are available earlier can be submitted ahead of its use.

use imp::ast::{builtins, Block, Expr, Program, StmtKind};

/// True when batching \[11\] applies to some loop of `fname`: a loop (cursor
/// or `while`) whose body executes a query.
pub fn batching_applicable(program: &Program, fname: &str) -> bool {
    let Some(f) = program.function(fname) else {
        return false;
    };
    any_loop_with_inner_query(&f.body)
}

fn any_loop_with_inner_query(b: &Block) -> bool {
    b.stmts.iter().any(|s| match &s.kind {
        StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
            block_has_query(body) || any_loop_with_inner_query(body)
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => any_loop_with_inner_query(then_branch) || any_loop_with_inner_query(else_branch),
        _ => false,
    })
}

fn block_has_query(b: &Block) -> bool {
    let mut found = false;
    for s in &b.stmts {
        visit_stmt_exprs(s, &mut |e| {
            if let Expr::Call { name, .. } = e {
                if name == builtins::EXECUTE_QUERY || name == builtins::EXECUTE_SCALAR {
                    found = true;
                }
            }
        });
        match &s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                found |= block_has_query(then_branch) || block_has_query(else_branch);
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                found |= block_has_query(body);
            }
            _ => {}
        }
    }
    found
}

fn visit_stmt_exprs(s: &imp::ast::Stmt, f: &mut impl FnMut(&Expr)) {
    match &s.kind {
        StmtKind::Assign { value, .. } => value.walk(f),
        StmtKind::Expr(e) => e.walk(f),
        StmtKind::If { cond, .. } => cond.walk(f),
        StmtKind::ForEach { iterable, .. } => iterable.walk(f),
        StmtKind::While { cond, .. } => cond.walk(f),
        StmtKind::Return(Some(v)) => v.walk(f),
        StmtKind::Print(args) => {
            for a in args {
                a.walk(f);
            }
        }
        _ => {}
    }
}

/// True when prefetching \[19\] applies: the function executes at least one
/// query (its submission can then be moved to the earliest point where its
/// parameters are available).
pub fn prefetch_applicable(program: &Program, fname: &str) -> bool {
    let Some(f) = program.function(fname) else {
        return false;
    };
    block_has_query(&f.body)
        || f.body.stmts.iter().any(|s| {
            let mut found = false;
            visit_stmt_exprs(s, &mut |e| {
                if let Expr::Call { name, .. } = e {
                    if imp::ast::builtins::DB_FUNCTIONS.contains(&name.as_str()) {
                        found = true;
                    }
                }
            });
            found
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_with_inner_query_is_batchable() {
        let src = r#"
            fn f() {
                rows = executeQuery("SELECT * FROM a");
                for (r in rows) {
                    d = executeScalar("SELECT x FROM b WHERE k = ?", r.id);
                }
                return 0;
            }
        "#;
        let p = imp::parse_and_normalize(src).unwrap();
        assert!(batching_applicable(&p, "f"));
        assert!(prefetch_applicable(&p, "f"));
    }

    #[test]
    fn aggregation_only_loop_is_not_batchable() {
        // No query inside the loop: batching has nothing to batch; EqSQL
        // still extracts the aggregate (the Experiment 2 gap).
        let src = r#"
            fn f() {
                rows = executeQuery("SELECT * FROM a");
                s = 0;
                for (r in rows) { s = s + r.x; }
                return s;
            }
        "#;
        let p = imp::parse_and_normalize(src).unwrap();
        assert!(!batching_applicable(&p, "f"));
        assert!(prefetch_applicable(&p, "f"));
    }

    #[test]
    fn while_loop_with_query_is_batchable() {
        let src = r#"
            fn f(n) {
                i = 0;
                while (i < n) {
                    executeQuery("SELECT * FROM a WHERE id = ?", i);
                    i = i + 1;
                }
                return i;
            }
        "#;
        let p = imp::parse_and_normalize(src).unwrap();
        assert!(batching_applicable(&p, "f"));
    }

    #[test]
    fn no_queries_nothing_applies() {
        let p = imp::parse_and_normalize("fn f() { return 1 + 2; }").unwrap();
        assert!(!batching_applicable(&p, "f"));
        assert!(!prefetch_applicable(&p, "f"));
    }
}
