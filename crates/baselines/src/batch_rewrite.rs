//! Batching as a *program transformation* (Guravannavar & Sudarshan,
//! "Rewriting Procedures for Batched Bindings", VLDB 2008 — the paper's
//! \[11\]).
//!
//! The classic batchable pattern is a cursor loop whose body issues a
//! parameterized scalar lookup per iteration:
//!
//! ```text
//! for (o in outer) {
//!     x = executeScalar(SQL, o.col);
//!     …body using x…
//! }
//! ```
//!
//! The rewrite collects the parameters, sends them in one set-oriented
//! round trip per lookup template (the `executeBatch` primitive, which
//! models the parameter-table technique), and merges results back by
//! position:
//!
//! ```text
//! __p0 = list();
//! for (o in outer) { __p0.add(o.col); }
//! __b0 = executeBatch(SQL, __p0);
//! __i = 0;
//! for (o in outer) {
//!     x = __b0.get(__i);
//!     …body…
//!     __i = __i + 1;
//! }
//! ```
//!
//! Only *unconditional, single-parameter, cursor-correlated* lookups at the
//! top level of the body are batched — the same restriction the paper
//! observes ("prefetching is unable to chain queries Q1 and Q5" applies to
//! batching's guarded lookups too; they are left in place).

use imp::ast::{builtins, Block, Expr, Function, Literal, Program, Stmt, StmtId, StmtKind};
use imp::token::Span;
use intern::Symbol;

/// Rewrite the first batchable loop of `fname`. Returns the transformed
/// program and the number of lookups batched, or `None` when nothing is
/// batchable.
pub fn rewrite_batching(program: &Program, fname: &str) -> Option<(Program, usize)> {
    let mut out = program.clone();
    let f = out.function_mut(fname)?;
    let n = rewrite_function(f)?;
    out.renumber();
    Some((out, n))
}

fn rewrite_function(f: &mut Function) -> Option<usize> {
    // Find the first top-level cursor loop with batchable lookups.
    for idx in 0..f.body.stmts.len() {
        let StmtKind::ForEach {
            var,
            iterable,
            body,
        } = &f.body.stmts[idx].kind
        else {
            continue;
        };
        let lookups = batchable_lookups(*var, body);
        if lookups.is_empty() {
            continue;
        }
        let var = *var;
        let iterable = iterable.clone();
        let mut new_body = body.clone();

        let mut prelude: Vec<Stmt> = Vec::new();
        // One gathering loop fills every lookup's parameter list.
        let mut gather_body = Vec::new();
        for (k, (_, _, _, key_expr)) in lookups.iter().enumerate() {
            let params_var = format!("__p{k}");
            prelude.push(assign(&params_var, Expr::call("list", vec![])));
            gather_body.push(stmt(StmtKind::Expr(Expr::MethodCall {
                recv: Box::new(Expr::var(&params_var)),
                name: "add".into(),
                args: vec![key_expr.clone()],
            })));
        }
        prelude.push(stmt(StmtKind::ForEach {
            var,
            iterable: iterable.clone(),
            body: Block { stmts: gather_body },
        }));
        for (k, (stmt_id, target, sql, _)) in lookups.iter().enumerate() {
            let params_var = format!("__p{k}");
            let batch_var = format!("__b{k}");
            // __bK = executeBatch(SQL, __pK);
            prelude.push(assign(
                &batch_var,
                Expr::call(
                    builtins::EXECUTE_BATCH,
                    vec![Expr::Lit(Literal::Str(sql.clone())), Expr::var(&params_var)],
                ),
            ));
            // Replace the lookup inside the body: x = __bK.get(__i);
            replace_stmt(
                &mut new_body,
                *stmt_id,
                StmtKind::Assign {
                    target: *target,
                    value: Expr::MethodCall {
                        recv: Box::new(Expr::var(&batch_var)),
                        name: "get".into(),
                        args: vec![Expr::var("__i")],
                    },
                },
            );
        }
        // __i = 0; … loop … __i = __i + 1 at the end of the body.
        prelude.push(assign("__i", Expr::int(0)));
        new_body.stmts.push(assign(
            "__i",
            Expr::Binary(
                imp::ast::BinaryOp::Add,
                Box::new(Expr::var("__i")),
                Box::new(Expr::int(1)),
            ),
        ));

        let n = lookups.len();
        let new_loop = stmt(StmtKind::ForEach {
            var,
            iterable,
            body: new_body,
        });
        f.body
            .stmts
            .splice(idx..=idx, prelude.into_iter().chain([new_loop]));
        return Some(n);
    }
    None
}

/// Batchable lookups: top-level `x = executeScalar(SQL, o.col)` statements
/// whose single parameter is a field of the cursor.
fn batchable_lookups(cursor: Symbol, body: &Block) -> Vec<(StmtId, Symbol, String, Expr)> {
    let mut out = Vec::new();
    for s in &body.stmts {
        let StmtKind::Assign { target, value } = &s.kind else {
            continue;
        };
        let Expr::Call { name, args } = value else {
            continue;
        };
        if name != builtins::EXECUTE_SCALAR || args.len() != 2 {
            continue;
        }
        let Expr::Lit(Literal::Str(sql)) = &args[0] else {
            continue;
        };
        let key = &args[1];
        let correlated = matches!(key, Expr::Field(base, _) if matches!(base.as_ref(), Expr::Var(v) if *v == cursor));
        if correlated {
            out.push((s.id, *target, sql.clone(), key.clone()));
        }
    }
    out
}

fn replace_stmt(b: &mut Block, id: StmtId, kind: StmtKind) {
    for s in &mut b.stmts {
        if s.id == id {
            s.kind = kind;
            return;
        }
    }
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt {
        id: StmtId(u32::MAX),
        kind,
        span: Span::default(),
    }
}

fn assign(target: &str, value: Expr) -> Stmt {
    stmt(StmtKind::Assign {
        target: Symbol::intern(target),
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbms::gen::gen_jobportal;
    use dbms::Connection;
    use interp::value::loose_eq;
    use interp::Interp;

    const SRC: &str = r#"
        fn report() {
            apps = executeQuery("SELECT * FROM applicants");
            out = list();
            for (a in apps) {
                addr = executeScalar("SELECT address FROM personal_details WHERE applicant_id = ?", a.applicant_id);
                s1 = executeScalar("SELECT score FROM committee1_feedback WHERE applicant_id = ?", a.applicant_id);
                out.add(pair(a.name, concat(addr, "/", s1)));
            }
            return out;
        }
    "#;

    #[test]
    fn rewrites_and_stays_equivalent() {
        let program = imp::parse_and_normalize(SRC).unwrap();
        let (batched, n) = rewrite_batching(&program, "report").expect("batchable");
        assert_eq!(n, 2);
        let printed = imp::pretty_print(&batched);
        assert!(printed.contains("executeBatch"), "{printed}");
        assert!(printed.contains("__b0.get(__i)"), "{printed}");

        let db = gen_jobportal(60, 3);
        let mut orig = Interp::new(&program, Connection::new(db.clone()));
        let v1 = orig.call("report", vec![]).unwrap();
        let mut new = Interp::new(&batched, Connection::new(db));
        let v2 = new
            .call("report", vec![])
            .unwrap_or_else(|e| panic!("batched program failed: {e}\n{printed}"));
        assert!(loose_eq(&v1, &v2), "{v1} vs {v2}");

        // Round trips: original 1 + 2·60; batched 1 (outer for params is a
        // re-fetch: +1) + 2 batches + 1 merge-loop outer fetch.
        assert!(orig.conn.stats.queries > 100);
        assert!(
            new.conn.stats.queries < 10,
            "batched round trips must be constant, got {}",
            new.conn.stats.queries
        );
    }

    #[test]
    fn guarded_lookup_not_batched() {
        let src = r#"
            fn f() {
                apps = executeQuery("SELECT * FROM applicants");
                out = list();
                for (a in apps) {
                    q = a.appln_mode == "online"
                        ? executeScalar("SELECT degree FROM edu_qualifs WHERE applicant_id = ?", a.applicant_id)
                        : "n/a";
                    out.add(q);
                }
                return out;
            }
        "#;
        let program = imp::parse_and_normalize(src).unwrap();
        assert!(rewrite_batching(&program, "f").is_none());
    }

    #[test]
    fn no_lookups_nothing_to_batch() {
        let src = r#"
            fn f() {
                rows = executeQuery("SELECT * FROM applicants");
                n = 0;
                for (r in rows) { n = n + 1; }
                return n;
            }
        "#;
        let program = imp::parse_and_normalize(src).unwrap();
        assert!(rewrite_batching(&program, "f").is_none());
    }
}
