//! Execution strategies on star-schema workloads (paper Fig. 12 / Fig. 11).
//!
//! The workload: an outer query (`Q1`) whose rows each trigger several
//! parameterized scalar lookups (`Q2…Q5`), one of them guarded by a
//! condition on the outer row. The strategies:
//!
//! * **original** — sequential execution, `1 + Σ(lookups)` round trips;
//! * **batching** — per lookup template, upload a parameter table (one
//!   round trip plus transfer) and run one set-oriented query: `1 + 2·k`
//!   round trips, independent of the outer cardinality ("benefit due to
//!   batching is limited because of the overhead of creating four parameter
//!   tables", Appendix B);
//! * **prefetching** — unconditional lookups for all rows are submitted
//!   concurrently right after `Q1` returns (latency overlapped); guarded
//!   lookups cannot be chained ("prefetching is unable to chain queries Q1
//!   and Q5, since parameters from Q1 feed into Q5 through the condition")
//!   and stay sequential.
//!
//! EqSQL's single-query strategy is produced by `eqsql-core` and run by the
//! bench harness; this module provides the three baselines.

use algebra::ra::RaExpr;
use algebra::scalar::Lit;
use dbms::{Connection, EvalError, Value};

/// One parameterized scalar lookup inside the loop.
#[derive(Debug, Clone)]
pub struct InnerLookup {
    /// The lookup query; `Param(0)` is the correlation value.
    pub query: RaExpr,
    /// The outer-row column bound to `Param(0)`.
    pub outer_col: String,
    /// Execute only when `outer[col] == value` (the Fig. 12 `applnMode ==
    /// "online"` guard).
    pub condition: Option<(String, Value)>,
}

/// A star-schema workload.
#[derive(Debug, Clone)]
pub struct StarWorkload {
    /// The outer query.
    pub outer: RaExpr,
    /// Scalar lookups per outer row.
    pub inners: Vec<InnerLookup>,
}

impl StarWorkload {
    /// Sequential execution, as written (the "Original" series).
    /// Returns the number of outer rows processed.
    pub fn run_original(&self, conn: &mut Connection) -> Result<usize, EvalError> {
        let outer = conn.execute(&self.outer, &[])?;
        for row in &outer.rows {
            for inner in &self.inners {
                if !self.guard_passes(&outer, row, inner)? {
                    continue;
                }
                let key = self.outer_value(&outer, row, &inner.outer_col)?;
                conn.execute(&inner.query, &[key])?;
            }
        }
        Ok(outer.rows.len())
    }

    /// Batched execution \[11\]: one parameter-table upload plus one
    /// set-oriented query per lookup template.
    pub fn run_batched(&self, conn: &mut Connection) -> Result<usize, EvalError> {
        let outer = conn.execute(&self.outer, &[])?;
        for inner in &self.inners {
            // Gather qualifying parameters.
            let mut keys: Vec<Vec<Lit>> = Vec::new();
            for row in &outer.rows {
                if self.guard_passes(&outer, row, inner)? {
                    let v = self.outer_value(&outer, row, &inner.outer_col)?;
                    keys.push(vec![v.to_lit()]);
                }
            }
            // Upload the parameter table: one round trip + transfer cost
            // (this is batching's fixed overhead).
            let upload_bytes: usize = keys.iter().flatten().map(lit_size).sum();
            conn.stats.queries += 1;
            conn.stats.sim_us += conn.cost.latency_us + upload_bytes as f64 * conn.cost.per_byte_us;
            // One set-oriented query: params ⟗ lookup (lateral preserves
            // per-parameter semantics including misses).
            let params = RaExpr::Values {
                columns: vec!["pkey".into()],
                rows: keys,
            };
            let corr = inner
                .query
                .substitute_params(&[algebra::scalar::Scalar::col("pkey")])
                .limit(1)
                .aliased("b0");
            let batched = params.outer_apply(corr);
            conn.execute(&batched, &[])?;
        }
        Ok(outer.rows.len())
    }

    /// Prefetching \[19\]: unconditional lookups are overlapped; guarded ones
    /// execute sequentially.
    pub fn run_prefetch(&self, conn: &mut Connection) -> Result<usize, EvalError> {
        let outer = conn.execute(&self.outer, &[])?;
        // Wave of unconditional lookups, submitted concurrently.
        let mut wave: Vec<(&RaExpr, Vec<Value>)> = Vec::new();
        for row in &outer.rows {
            for inner in &self.inners {
                if inner.condition.is_some() {
                    continue;
                }
                let key = self.outer_value(&outer, row, &inner.outer_col)?;
                wave.push((&inner.query, vec![key]));
            }
        }
        if !wave.is_empty() {
            conn.execute_overlapped(&wave)?;
        }
        // Guarded lookups: parameters flow through a condition — not
        // prefetchable, executed one round trip at a time.
        for row in &outer.rows {
            for inner in &self.inners {
                if inner.condition.is_none() {
                    continue;
                }
                if self.guard_passes(&outer, row, inner)? {
                    let key = self.outer_value(&outer, row, &inner.outer_col)?;
                    conn.execute(&inner.query, &[key])?;
                }
            }
        }
        Ok(outer.rows.len())
    }

    fn guard_passes(
        &self,
        outer: &dbms::Relation,
        row: &[Value],
        inner: &InnerLookup,
    ) -> Result<bool, EvalError> {
        match &inner.condition {
            None => Ok(true),
            Some((col, expected)) => {
                let idx = outer.resolve(None, col).map_err(EvalError::UnknownColumn)?;
                Ok(row[idx].group_eq(expected))
            }
        }
    }

    fn outer_value(
        &self,
        outer: &dbms::Relation,
        row: &[Value],
        col: &str,
    ) -> Result<Value, EvalError> {
        let idx = outer.resolve(None, col).map_err(EvalError::UnknownColumn)?;
        Ok(row[idx].clone())
    }
}

fn lit_size(l: &Lit) -> usize {
    match l {
        Lit::Str(s) => 4 + s.len(),
        _ => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::parse::parse_sql;
    use dbms::gen::gen_jobportal;

    fn workload() -> StarWorkload {
        StarWorkload {
            outer: parse_sql("SELECT * FROM applicants").unwrap(),
            inners: vec![
                InnerLookup {
                    query: parse_sql("SELECT address FROM personal_details WHERE applicant_id = ?")
                        .unwrap(),
                    outer_col: "applicant_id".into(),
                    condition: None,
                },
                InnerLookup {
                    query: parse_sql(
                        "SELECT score FROM committee1_feedback WHERE applicant_id = ?",
                    )
                    .unwrap(),
                    outer_col: "applicant_id".into(),
                    condition: None,
                },
                InnerLookup {
                    query: parse_sql("SELECT degree FROM edu_qualifs WHERE applicant_id = ?")
                        .unwrap(),
                    outer_col: "applicant_id".into(),
                    condition: Some(("appln_mode".into(), "online".into())),
                },
            ],
        }
    }

    #[test]
    fn original_pays_per_row_round_trips() {
        let db = gen_jobportal(50, 1);
        let mut conn = Connection::new(db);
        let n = workload().run_original(&mut conn).unwrap();
        assert_eq!(n, 50);
        // 1 outer + 2 unconditional × 50 + conditional subset.
        assert!(conn.stats.queries > 100, "{}", conn.stats.queries);
    }

    #[test]
    fn batching_is_constant_round_trips() {
        let db = gen_jobportal(50, 1);
        let mut conn = Connection::new(db);
        workload().run_batched(&mut conn).unwrap();
        // 1 outer + 3 × (upload + batch query).
        assert_eq!(conn.stats.queries, 1 + 3 * 2);
    }

    #[test]
    fn prefetch_beats_original_loses_to_batching() {
        let db = gen_jobportal(100, 2);
        let mut orig = Connection::new(db.clone());
        workload().run_original(&mut orig).unwrap();
        let mut pre = Connection::new(db.clone());
        workload().run_prefetch(&mut pre).unwrap();
        let mut bat = Connection::new(db);
        workload().run_batched(&mut bat).unwrap();
        assert!(
            pre.stats.sim_us < orig.stats.sim_us,
            "prefetch {} must beat original {}",
            pre.stats.sim_us,
            orig.stats.sim_us
        );
        assert!(
            bat.stats.sim_us < orig.stats.sim_us,
            "batching {} must beat original {}",
            bat.stats.sim_us,
            orig.stats.sim_us
        );
    }

    #[test]
    fn strategies_fetch_equivalent_data() {
        // All strategies answer the same information need: same number of
        // detail rows retrieved (batched uploads excluded from row counts).
        let db = gen_jobportal(20, 3);
        let mut orig = Connection::new(db.clone());
        workload().run_original(&mut orig).unwrap();
        let mut pre = Connection::new(db);
        workload().run_prefetch(&mut pre).unwrap();
        assert_eq!(orig.stats.rows, pre.stats.rows);
    }
}
