//! # eqsql — Extracting Equivalent SQL from Imperative Code
//!
//! A from-scratch Rust reproduction of Emani, Ramachandra, Bhattacharya and
//! Sudarshan, *"Extracting Equivalent SQL from Imperative Code in Database
//! Applications"*, SIGMOD 2016.
//!
//! Database applications mix imperative code with SQL. This library
//! statically analyses the imperative side — cursor loops iterating over
//! query results, building aggregates and collections — and rewrites it into
//! equivalent SQL, cutting network round trips and data transfer.
//!
//! ## Quick start
//!
//! ```
//! use eqsql::prelude::*;
//!
//! // 1. A database application written in `imp` (a small Java-like
//! //    language standing in for the paper's Java frontend).
//! let src = r#"
//!     fn totalBudget(minId) {
//!         rows = executeQuery("SELECT * FROM project");
//!         total = 0;
//!         for (p in rows) {
//!             if (p.id >= minId) { total = total + p.budget; }
//!         }
//!         return total;
//!     }
//! "#;
//! let program = imp::parse_and_normalize(src).unwrap();
//!
//! // 2. The extractor needs the table schemas.
//! let catalog = Catalog::new().with(
//!     TableSchema::new(
//!         "project",
//!         &[("id", SqlType::Int), ("budget", SqlType::Int)],
//!     )
//!     .with_key(&["id"]),
//! );
//!
//! // 3. Extract: the loop becomes one aggregate query.
//! let report = Extractor::new(catalog).extract_function(&program, "totalBudget");
//! assert_eq!(report.loops_rewritten, 1);
//! let sql = &report.vars[0].sql[0];
//! assert!(sql.contains("SUM(budget)"), "{sql}");
//! assert!(sql.contains("(id >= ?)"), "{sql}");
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`imp`] | the imperative source language (lexer, parser, AST, printer) |
//! | [`analysis`] | CFG, regions, dependence graphs, slicing, liveness, DCE |
//! | [`algebra`] | extended relational algebra, SQL parser and renderer |
//! | [`dbms`] | in-memory engine + metered connection (round trips, bytes) |
//! | [`interp`] | `imp` interpreter over the engine |
//! | [`eqsql_core`] | D-IR, F-IR, transformation rules, extraction, rewrite |

pub use algebra;
pub use analysis;
pub use dbms;
pub use eqsql_core;
pub use imp;
pub use interp;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use algebra::schema::{Catalog, SqlType, TableSchema};
    pub use algebra::Dialect;
    pub use analysis::diag::{render_json, Code, Diagnostic, Severity};
    pub use dbms::{Connection, CostModel, Database, Value};
    pub use eqsql_core::{
        lint_program, CertReport, CertSummary, Certifier, ExtractionOutcome, ExtractionReport,
        Extractor, ExtractorOptions, Obligation, Verdict,
    };
    pub use imp;
    pub use interp::{Interp, RtValue};
}
