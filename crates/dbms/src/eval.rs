//! Evaluator for the extended relational algebra.
//!
//! Semantics notes:
//!
//! * π is order preserving and keeps duplicates (paper Sec. 3.2.1);
//! * δ keeps the first occurrence of each row;
//! * γ follows standard SQL `NULL` semantics (aggregates ignore `NULL`s;
//!   `SUM` of an empty group is `NULL`, `COUNT` is `0`);
//! * `GREATEST`/`LEAST` ignore `NULL` arguments (PostgreSQL behaviour, which
//!   the paper's Figure 3(d) targets);
//! * correlation (`OUTER APPLY`, `EXISTS`) resolves columns against the
//!   current row first, then outer scopes;
//! * `ORDER BY` places `NULL`s first under `ASC` and last under `DESC`
//!   ([`Value::sort_cmp`] is the single comparator both sides share);
//! * integer arithmetic errors — division/modulo by zero and `i64`
//!   overflow — evaluate to `NULL` (NULL-on-error), never panic or wrap.
//!
//! This comment is the cross-crate semantics spec: the `interp` crate's
//! `imp` operators must agree with it observably (see `tests/fuzz_repros.rs`
//! and `crates/fuzz` for the differential harness that enforces this).

use std::collections::HashMap;
use std::fmt;

use algebra::ra::{AggCall, AggFunc, JoinKind, RaExpr, SortOrder};
use algebra::scalar::{BinOp, Scalar, ScalarFunc, UnOp};

use crate::table::{Database, Field, Relation, Row};
use crate::value::Value;

/// An evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Referenced base table does not exist.
    UnknownTable(String),
    /// Column resolution failed.
    UnknownColumn(String),
    /// Type mismatch in a scalar operation.
    Type(String),
    /// Parameter index out of range.
    MissingParam(usize),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownTable(t) => write!(f, "unknown table {t}"),
            EvalError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::MissingParam(i) => write!(f, "missing query parameter ?{i}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A lexical scope for column resolution during correlated evaluation.
#[derive(Clone, Copy)]
pub struct Scope<'a> {
    pub(crate) fields: &'a [Field],
    pub(crate) row: &'a [Value],
    pub(crate) parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    fn lookup(&self, qualifier: Option<&str>, name: &str) -> Option<Value> {
        if let Ok(i) = crate::table::resolve_fields(self.fields, qualifier, name) {
            return Some(self.row[i].clone());
        }
        self.parent.and_then(|p| p.lookup(qualifier, name))
    }
}

/// Evaluate a query against a database with positional parameters.
///
/// Single-table pipelines over a *paged* table are dispatched to the
/// streaming volcano executor ([`crate::volcano`]), which produces
/// byte-identical results while holding memory proportional to the
/// operator state (one buffer-pool frame per scan, per-group accumulators)
/// instead of the whole table. Everything else — joins, `OUTER APPLY`,
/// in-memory tables — takes the materializing path.
pub fn eval_query(ra: &RaExpr, db: &Database, params: &[Value]) -> Result<Relation, EvalError> {
    if crate::volcano::plans_paged(ra, db) {
        return crate::volcano::execute(ra, db, params);
    }
    eval_ra(ra, db, params, None)
}

/// Evaluate through the materializing evaluator unconditionally (the
/// volcano differential sweep uses this as the reference side).
pub fn eval_query_materialized(
    ra: &RaExpr,
    db: &Database,
    params: &[Value],
) -> Result<Relation, EvalError> {
    eval_ra(ra, db, params, None)
}

/// Output fields of an algebra expression, without evaluating it.
pub fn fields_of(ra: &RaExpr, db: &Database) -> Result<Vec<Field>, EvalError> {
    match ra {
        RaExpr::Table { name, alias } => {
            let t = db
                .table(name)
                .ok_or_else(|| EvalError::UnknownTable(name.clone()))?;
            let q = alias.clone().unwrap_or_else(|| name.clone());
            Ok(t.schema
                .columns
                .iter()
                .map(|c| Field::qualified(q.clone(), c.name.clone()))
                .collect())
        }
        RaExpr::Values { columns, .. } => Ok(columns.iter().map(Field::new).collect()),
        RaExpr::Select { input, .. }
        | RaExpr::Sort { input, .. }
        | RaExpr::Dedup { input }
        | RaExpr::Limit { input, .. } => fields_of(input, db),
        RaExpr::Aliased { input, alias } => Ok(fields_of(input, db)?
            .into_iter()
            .map(|f| Field::qualified(alias.clone(), f.name))
            .collect()),
        RaExpr::Project { items, .. } => {
            Ok(items.iter().map(|i| Field::new(i.alias.clone())).collect())
        }
        RaExpr::Join { left, right, .. } | RaExpr::OuterApply { left, right } => {
            let mut f = fields_of(left, db)?;
            f.extend(fields_of(right, db)?);
            Ok(f)
        }
        RaExpr::Aggregate { group_by, aggs, .. } => {
            let mut f: Vec<Field> = group_by
                .iter()
                .map(|g| Field::new(g.alias.clone()))
                .collect();
            f.extend(aggs.iter().map(|a| Field::new(a.alias.clone())));
            Ok(f)
        }
    }
}

pub(crate) fn eval_ra(
    ra: &RaExpr,
    db: &Database,
    params: &[Value],
    outer: Option<&Scope<'_>>,
) -> Result<Relation, EvalError> {
    match ra {
        RaExpr::Table { name, .. } => {
            let t = db
                .table(name)
                .ok_or_else(|| EvalError::UnknownTable(name.clone()))?;
            Ok(Relation {
                fields: fields_of(ra, db)?,
                rows: t.rows_vec(),
            })
        }
        RaExpr::Values { columns, rows } => Ok(Relation {
            fields: columns.iter().map(Field::new).collect(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(Value::from_lit).collect())
                .collect(),
        }),
        RaExpr::Select { input, pred } => {
            let rel = eval_ra(input, db, params, outer)?;
            let mut rows = Vec::new();
            for row in &rel.rows {
                let scope = Scope {
                    fields: &rel.fields,
                    row,
                    parent: outer,
                };
                if eval_scalar(pred, db, params, Some(&scope))?.is_true() {
                    rows.push(row.clone());
                }
            }
            Ok(Relation {
                fields: rel.fields,
                rows,
            })
        }
        RaExpr::Project { input, items } => {
            let rel = eval_ra(input, db, params, outer)?;
            let fields = items.iter().map(|i| Field::new(i.alias.clone())).collect();
            let mut rows = Vec::with_capacity(rel.rows.len());
            for row in &rel.rows {
                let scope = Scope {
                    fields: &rel.fields,
                    row,
                    parent: outer,
                };
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(eval_scalar(&i.expr, db, params, Some(&scope))?);
                }
                rows.push(out);
            }
            Ok(Relation { fields, rows })
        }
        RaExpr::Join {
            left,
            right,
            pred,
            kind,
        } => {
            let l = eval_ra(left, db, params, outer)?;
            let r = eval_ra(right, db, params, outer)?;
            let mut fields = l.fields.clone();
            fields.extend(r.fields.clone());
            let mut rows = Vec::new();
            for lrow in &l.rows {
                let mut matched = false;
                for rrow in &r.rows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    let scope = Scope {
                        fields: &fields,
                        row: &combined,
                        parent: outer,
                    };
                    if eval_scalar(pred, db, params, Some(&scope))?.is_true() {
                        matched = true;
                        rows.push(combined);
                    }
                }
                if !matched && *kind == JoinKind::LeftOuter {
                    let mut combined = lrow.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, r.fields.len()));
                    rows.push(combined);
                }
            }
            Ok(Relation { fields, rows })
        }
        RaExpr::OuterApply { left, right } => {
            let l = eval_ra(left, db, params, outer)?;
            let right_fields = fields_of(right, db)?;
            let mut fields = l.fields.clone();
            fields.extend(right_fields.clone());
            let mut rows = Vec::new();
            for lrow in &l.rows {
                let scope = Scope {
                    fields: &l.fields,
                    row: lrow,
                    parent: outer,
                };
                let inner = eval_ra(right, db, params, Some(&scope))?;
                if inner.rows.is_empty() {
                    let mut combined = lrow.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_fields.len()));
                    rows.push(combined);
                } else {
                    for irow in &inner.rows {
                        let mut combined = lrow.clone();
                        combined.extend(irow.iter().cloned());
                        rows.push(combined);
                    }
                }
            }
            Ok(Relation { fields, rows })
        }
        RaExpr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rel = eval_ra(input, db, params, outer)?;
            eval_aggregate(&rel, group_by, aggs, db, params, outer)
        }
        RaExpr::Sort { input, keys } => {
            let rel = eval_ra(input, db, params, outer)?;
            // Decorate-sort-undecorate for stability and single evaluation.
            let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rel.rows.len());
            for row in &rel.rows {
                let scope = Scope {
                    fields: &rel.fields,
                    row,
                    parent: outer,
                };
                let mut ks = Vec::with_capacity(keys.len());
                for k in keys {
                    ks.push(eval_scalar(&k.expr, db, params, Some(&scope))?);
                }
                decorated.push((ks, row.clone()));
            }
            decorated.sort_by(|(a, _), (b, _)| {
                for (i, k) in keys.iter().enumerate() {
                    let ord = a[i].sort_cmp(&b[i]);
                    let ord = match k.order {
                        SortOrder::Asc => ord,
                        SortOrder::Desc => ord.reverse(),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(Relation {
                fields: rel.fields,
                rows: decorated.into_iter().map(|(_, r)| r).collect(),
            })
        }
        RaExpr::Dedup { input } => {
            let rel = eval_ra(input, db, params, outer)?;
            let mut seen: HashMap<String, ()> = HashMap::new();
            let mut rows = Vec::new();
            for row in &rel.rows {
                let key: String = row
                    .iter()
                    .map(|v| v.group_key())
                    .collect::<Vec<_>>()
                    .join("\u{1}");
                if seen.insert(key, ()).is_none() {
                    rows.push(row.clone());
                }
            }
            Ok(Relation {
                fields: rel.fields,
                rows,
            })
        }
        RaExpr::Limit { input, count } => {
            let mut rel = eval_ra(input, db, params, outer)?;
            rel.rows.truncate(*count as usize);
            Ok(rel)
        }
        RaExpr::Aliased { input, alias } => {
            let rel = eval_ra(input, db, params, outer)?;
            Ok(Relation {
                fields: rel
                    .fields
                    .into_iter()
                    .map(|f| Field::qualified(alias.clone(), f.name))
                    .collect(),
                rows: rel.rows,
            })
        }
    }
}

fn eval_aggregate(
    rel: &Relation,
    group_by: &[algebra::ra::ProjItem],
    aggs: &[AggCall],
    db: &Database,
    params: &[Value],
    outer: Option<&Scope<'_>>,
) -> Result<Relation, EvalError> {
    let mut fields: Vec<Field> = group_by
        .iter()
        .map(|g| Field::new(g.alias.clone()))
        .collect();
    fields.extend(aggs.iter().map(|a| Field::new(a.alias.clone())));

    // Group rows preserving first-occurrence order of groups.
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, (Vec<Value>, Vec<usize>)> = HashMap::new();
    for (idx, row) in rel.rows.iter().enumerate() {
        let scope = Scope {
            fields: &rel.fields,
            row,
            parent: outer,
        };
        let mut keys = Vec::with_capacity(group_by.len());
        for g in group_by {
            keys.push(eval_scalar(&g.expr, db, params, Some(&scope))?);
        }
        let key: String = keys
            .iter()
            .map(|v| v.group_key())
            .collect::<Vec<_>>()
            .join("\u{1}");
        match groups.get_mut(&key) {
            Some((_, idxs)) => idxs.push(idx),
            None => {
                order.push(key.clone());
                groups.insert(key, (keys, vec![idx]));
            }
        }
    }

    // Empty input with no GROUP BY still yields one (all-NULL/zero) row.
    if rel.rows.is_empty() && group_by.is_empty() {
        let mut out = Vec::new();
        for a in aggs {
            out.push(empty_agg(a.func));
        }
        return Ok(Relation {
            fields,
            rows: vec![out],
        });
    }

    let mut rows = Vec::with_capacity(order.len());
    for key in &order {
        let (keys, idxs) = &groups[key];
        let mut out = keys.clone();
        for a in aggs {
            let mut acc = Accumulator::new(a.func);
            for &i in idxs {
                let row = &rel.rows[i];
                let scope = Scope {
                    fields: &rel.fields,
                    row,
                    parent: outer,
                };
                let v = eval_scalar(&a.arg, db, params, Some(&scope))?;
                acc.feed(&v)?;
            }
            out.push(acc.finish());
        }
        rows.push(out);
    }
    Ok(Relation { fields, rows })
}

pub(crate) fn empty_agg(f: AggFunc) -> Value {
    match f {
        AggFunc::Count => Value::Int(0),
        _ => Value::Null,
    }
}

/// Streaming aggregate accumulator with SQL NULL semantics.
pub(crate) struct Accumulator {
    func: AggFunc,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    all_int: bool,
    overflowed: bool,
    best: Option<Value>,
}

impl Accumulator {
    pub(crate) fn new(func: AggFunc) -> Accumulator {
        Accumulator {
            func,
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            all_int: true,
            overflowed: false,
            best: None,
        }
    }

    pub(crate) fn feed(&mut self, v: &Value) -> Result<(), EvalError> {
        if v.is_null() {
            return Ok(()); // aggregates ignore NULLs
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    // NULL-on-error: an overflowing integer SUM poisons the
                    // whole aggregate rather than panicking or wrapping.
                    match self.sum_i.checked_add(*i) {
                        Some(s) => self.sum_i = s,
                        None => self.overflowed = true,
                    }
                    self.sum_f += *i as f64;
                }
                Value::Float(x) => {
                    self.all_int = false;
                    self.sum_f += x;
                }
                other => {
                    return Err(EvalError::Type(format!("cannot SUM/AVG over {other}")));
                }
            },
            AggFunc::Min | AggFunc::Max => {
                let better = match &self.best {
                    None => true,
                    Some(b) => match v.sql_cmp(b) {
                        Some(std::cmp::Ordering::Greater) => self.func == AggFunc::Max,
                        Some(std::cmp::Ordering::Less) => self.func == AggFunc::Min,
                        _ => false,
                    },
                };
                if better {
                    self.best = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 || (self.all_int && self.overflowed) {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.sum_i)
                } else {
                    Value::Float(self.sum_f)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.best.unwrap_or(Value::Null),
        }
    }
}

/// Evaluate a scalar expression in a scope.
pub fn eval_scalar(
    e: &Scalar,
    db: &Database,
    params: &[Value],
    scope: Option<&Scope<'_>>,
) -> Result<Value, EvalError> {
    match e {
        Scalar::Lit(l) => Ok(Value::from_lit(l)),
        Scalar::Col(c) => {
            let found = scope.and_then(|s| s.lookup(c.qualifier.as_deref(), &c.column));
            found.ok_or_else(|| EvalError::UnknownColumn(c.to_string()))
        }
        Scalar::Param(i) => params.get(*i).cloned().ok_or(EvalError::MissingParam(*i)),
        Scalar::Bin(op, l, r) => {
            let lv = eval_scalar(l, db, params, scope)?;
            // Short-circuit three-valued AND/OR.
            match op {
                BinOp::And => {
                    if lv == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let rv = eval_scalar(r, db, params, scope)?;
                    return Ok(match (lv, rv) {
                        (_, Value::Bool(false)) => Value::Bool(false),
                        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                        _ => Value::Null,
                    });
                }
                BinOp::Or => {
                    if lv == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let rv = eval_scalar(r, db, params, scope)?;
                    return Ok(match (lv, rv) {
                        (_, Value::Bool(true)) => Value::Bool(true),
                        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let rv = eval_scalar(r, db, params, scope)?;
            eval_binop(*op, lv, rv)
        }
        Scalar::Un(op, x) => {
            let v = eval_scalar(x, db, params, scope)?;
            Ok(match op {
                UnOp::Neg => match v {
                    Value::Null => Value::Null,
                    // checked_neg: -i64::MIN overflows → NULL-on-error.
                    Value::Int(i) => i.checked_neg().map_or(Value::Null, Value::Int),
                    Value::Float(f) => Value::Float(-f),
                    other => return Err(EvalError::Type(format!("cannot negate {other}"))),
                },
                UnOp::Not => match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => return Err(EvalError::Type(format!("cannot NOT {other}"))),
                },
                UnOp::IsNull => Value::Bool(v.is_null()),
                UnOp::IsNotNull => Value::Bool(!v.is_null()),
            })
        }
        Scalar::Func(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_scalar(a, db, params, scope)?);
            }
            eval_func(*f, vals)
        }
        Scalar::Case { arms, otherwise } => {
            for (c, v) in arms {
                if eval_scalar(c, db, params, scope)?.is_true() {
                    return eval_scalar(v, db, params, scope);
                }
            }
            eval_scalar(otherwise, db, params, scope)
        }
        Scalar::Exists(q) => {
            let rel = eval_ra(q, db, params, scope)?;
            Ok(Value::Bool(!rel.rows.is_empty()))
        }
        Scalar::Subquery(q) => {
            let rel = eval_ra(q, db, params, scope)?;
            Ok(rel
                .rows
                .first()
                .and_then(|r| r.first().cloned())
                .unwrap_or(Value::Null))
        }
    }
}

/// Evaluate a binary operation on two values with SQL semantics (NULL
/// propagation, mixed numeric widening, integer division-by-zero → NULL).
/// Exposed for the `interp` crate, whose `imp` arithmetic matches.
pub fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.sql_cmp(&r);
        return Ok(match ord {
            None => {
                // Comparable-but-mixed types: only (in)equality is defined.
                match op {
                    BinOp::Eq => Value::Bool(false),
                    BinOp::Ne => Value::Bool(true),
                    _ => return Err(EvalError::Type(format!("cannot compare {l} with {r}"))),
                }
            }
            Some(o) => Value::Bool(match op {
                BinOp::Eq => o == std::cmp::Ordering::Equal,
                BinOp::Ne => o != std::cmp::Ordering::Equal,
                BinOp::Lt => o == std::cmp::Ordering::Less,
                BinOp::Le => o != std::cmp::Ordering::Greater,
                BinOp::Gt => o == std::cmp::Ordering::Greater,
                BinOp::Ge => o != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }),
        });
    }
    // Arithmetic. Integer errors (overflow, division by zero) yield NULL —
    // one defined behaviour shared with the interpreter instead of the
    // panic-in-debug / wrap-in-release split of native `i64` arithmetic.
    match (op, &l, &r) {
        (BinOp::Add, Value::Int(a), Value::Int(b)) => {
            Ok(a.checked_add(*b).map_or(Value::Null, Value::Int))
        }
        (BinOp::Sub, Value::Int(a), Value::Int(b)) => {
            Ok(a.checked_sub(*b).map_or(Value::Null, Value::Int))
        }
        (BinOp::Mul, Value::Int(a), Value::Int(b)) => {
            Ok(a.checked_mul(*b).map_or(Value::Null, Value::Int))
        }
        (BinOp::Div, Value::Int(a), Value::Int(b)) => {
            // Covers b == 0 and i64::MIN / -1.
            Ok(a.checked_div(*b).map_or(Value::Null, Value::Int))
        }
        (BinOp::Mod, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Ok(Value::Null)
            } else {
                // wrapping_rem defines i64::MIN % -1 as 0.
                Ok(Value::Int(a.wrapping_rem(*b)))
            }
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EvalError::Type(format!(
                        "arithmetic on non-numeric values {l}, {r}"
                    )))
                }
            };
            Ok(Value::Float(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Mod => a % b,
                _ => unreachable!(),
            }))
        }
    }
}

fn eval_func(f: ScalarFunc, vals: Vec<Value>) -> Result<Value, EvalError> {
    match f {
        ScalarFunc::Greatest | ScalarFunc::Least => {
            // PostgreSQL behaviour: NULLs ignored; NULL only if all NULL.
            let mut best: Option<Value> = None;
            for v in vals {
                if v.is_null() {
                    continue;
                }
                let take = match &best {
                    None => true,
                    Some(b) => match v.sql_cmp(b) {
                        Some(std::cmp::Ordering::Greater) => f == ScalarFunc::Greatest,
                        Some(std::cmp::Ordering::Less) => f == ScalarFunc::Least,
                        _ => false,
                    },
                };
                if take {
                    best = Some(v);
                }
            }
            Ok(best.unwrap_or(Value::Null))
        }
        ScalarFunc::Abs => match vals.first() {
            // checked_abs: ABS(i64::MIN) overflows → NULL-on-error.
            Some(Value::Int(i)) => Ok(i.checked_abs().map_or(Value::Null, Value::Int)),
            Some(Value::Float(x)) => Ok(Value::Float(x.abs())),
            Some(Value::Null) | None => Ok(Value::Null),
            Some(other) => Err(EvalError::Type(format!("ABS of {other}"))),
        },
        ScalarFunc::Concat => {
            let mut s = String::new();
            for v in vals {
                if !v.is_null() {
                    s.push_str(&v.to_string());
                }
            }
            Ok(Value::Str(s))
        }
        ScalarFunc::Lower => str_func(vals, |s| s.to_lowercase()),
        ScalarFunc::Upper => str_func(vals, |s| s.to_uppercase()),
        ScalarFunc::Length => match vals.into_iter().next() {
            Some(Value::Str(s)) => Ok(Value::Int(s.len() as i64)),
            Some(Value::Null) | None => Ok(Value::Null),
            Some(other) => Err(EvalError::Type(format!("LENGTH of {other}"))),
        },
        ScalarFunc::Coalesce => Ok(vals
            .into_iter()
            .find(|v| !v.is_null())
            .unwrap_or(Value::Null)),
    }
}

fn str_func(vals: Vec<Value>, f: impl Fn(&str) -> String) -> Result<Value, EvalError> {
    match vals.into_iter().next() {
        Some(Value::Str(s)) => Ok(Value::Str(f(&s))),
        Some(Value::Null) | None => Ok(Value::Null),
        Some(other) => Err(EvalError::Type(format!("string function on {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::parse::parse_sql;
    use algebra::schema::{SqlType, TableSchema};

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::new(
                "board",
                &[
                    ("id", SqlType::Int),
                    ("rnd_id", SqlType::Int),
                    ("p1", SqlType::Int),
                    ("p2", SqlType::Int),
                ],
            )
            .with_key(&["id"]),
        );
        for (id, rnd, p1, p2) in [(1, 1, 10, 20), (2, 1, 30, 5), (3, 2, 99, 1)] {
            d.insert(
                "board",
                vec![
                    Value::Int(id),
                    Value::Int(rnd),
                    Value::Int(p1),
                    Value::Int(p2),
                ],
            );
        }
        d
    }

    fn run(sql: &str, d: &Database, params: &[Value]) -> Relation {
        eval_query(&parse_sql(sql).unwrap(), d, params).unwrap()
    }

    #[test]
    fn select_filters_rows() {
        let r = run("SELECT * FROM board WHERE rnd_id = 1", &db(), &[]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn parameterized_query() {
        let r = run(
            "SELECT * FROM board WHERE rnd_id = ?",
            &db(),
            &[Value::Int(2)],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn projection_preserves_order() {
        let r = run("SELECT p1 FROM board", &db(), &[]);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(10)],
                vec![Value::Int(30)],
                vec![Value::Int(99)]
            ]
        );
    }

    #[test]
    fn greatest_in_projection() {
        let r = run(
            "SELECT GREATEST(p1, p2) AS m FROM board WHERE rnd_id = 1",
            &db(),
            &[],
        );
        assert_eq!(r.rows, vec![vec![Value::Int(20)], vec![Value::Int(30)]]);
    }

    #[test]
    fn aggregate_max() {
        let r = run("SELECT MAX(p1) AS m FROM board", &db(), &[]);
        assert_eq!(r.rows, vec![vec![Value::Int(99)]]);
    }

    #[test]
    fn aggregate_over_empty_is_null_count_zero() {
        let r = run(
            "SELECT MAX(p1) AS m, COUNT(*) AS c FROM board WHERE rnd_id = 9",
            &db(),
            &[],
        );
        assert_eq!(r.rows, vec![vec![Value::Null, Value::Int(0)]]);
    }

    #[test]
    fn group_by_preserves_first_occurrence_order() {
        let r = run(
            "SELECT rnd_id, SUM(p1) AS s FROM board GROUP BY rnd_id",
            &db(),
            &[],
        );
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(40)],
                vec![Value::Int(2), Value::Int(99)]
            ]
        );
    }

    #[test]
    fn join_combines_rows() {
        let mut d = db();
        d.create_table(TableSchema::new(
            "round",
            &[("rid", SqlType::Int), ("name", SqlType::Text)],
        ));
        d.insert("round", vec![Value::Int(1), "first".into()]);
        d.insert("round", vec![Value::Int(2), "second".into()]);
        let r = run(
            "SELECT * FROM board b JOIN round r ON b.rnd_id = r.rid WHERE r.name = 'second'",
            &d,
            &[],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut d = db();
        d.create_table(TableSchema::new("round", &[("rid", SqlType::Int)]));
        d.insert("round", vec![Value::Int(1)]);
        let e = parse_sql("SELECT * FROM board b LEFT JOIN round r ON b.rnd_id = r.rid").unwrap();
        let r = eval_query(&e, &d, &[]).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows[2][4], Value::Null, "unmatched row padded");
    }

    #[test]
    fn order_by_desc_sorts() {
        let r = run("SELECT id FROM board ORDER BY p1 DESC", &db(), &[]);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(3)],
                vec![Value::Int(2)],
                vec![Value::Int(1)]
            ]
        );
    }

    #[test]
    fn distinct_keeps_first() {
        let r = run("SELECT DISTINCT rnd_id FROM board", &db(), &[]);
        assert_eq!(r.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn outer_apply_correlates_and_pads() {
        let mut d = db();
        d.create_table(TableSchema::new(
            "detail",
            &[("board_id", SqlType::Int), ("note", SqlType::Text)],
        ));
        d.insert("detail", vec![Value::Int(1), "a".into()]);
        let inner = RaExpr::table("detail").select(Scalar::cmp(
            BinOp::Eq,
            Scalar::qcol("detail", "board_id"),
            Scalar::qcol("board", "id"),
        ));
        let q = RaExpr::table("board").outer_apply(inner);
        let r = eval_query(&q, &d, &[]).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows[0][5], Value::Str("a".into()));
        assert_eq!(r.rows[1][5], Value::Null);
    }

    #[test]
    fn exists_subquery_correlated() {
        let mut d = db();
        d.create_table(TableSchema::new("flag", &[("bid", SqlType::Int)]));
        d.insert("flag", vec![Value::Int(2)]);
        let sub = RaExpr::table("flag").select(Scalar::cmp(
            BinOp::Eq,
            Scalar::qcol("flag", "bid"),
            Scalar::qcol("board", "id"),
        ));
        let q = RaExpr::table("board").select(Scalar::Exists(Box::new(sub)));
        let r = eval_query(&q, &d, &[]).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn three_valued_logic() {
        // NULL OR TRUE = TRUE; NULL AND TRUE = NULL (filtered out).
        let d = Database::new();
        let t = eval_scalar(
            &Scalar::Lit(algebra::scalar::Lit::Null).or(Scalar::bool(true)),
            &d,
            &[],
            None,
        )
        .unwrap();
        assert_eq!(t, Value::Bool(true));
        let u = eval_scalar(
            &Scalar::Bin(
                BinOp::And,
                Box::new(Scalar::Lit(algebra::scalar::Lit::Null)),
                Box::new(Scalar::bool(true)),
            ),
            &d,
            &[],
            None,
        )
        .unwrap();
        assert_eq!(u, Value::Null);
    }

    #[test]
    fn division_by_zero_is_null() {
        let d = Database::new();
        let v = eval_scalar(
            &Scalar::Bin(
                BinOp::Div,
                Box::new(Scalar::int(1)),
                Box::new(Scalar::int(0)),
            ),
            &d,
            &[],
            None,
        )
        .unwrap();
        assert_eq!(v, Value::Null);
    }

    #[test]
    fn missing_param_is_error() {
        let e = parse_sql("SELECT * FROM board WHERE id = ?").unwrap();
        assert_eq!(eval_query(&e, &db(), &[]), Err(EvalError::MissingParam(0)));
    }

    #[test]
    fn unknown_table_is_error() {
        let e = parse_sql("SELECT * FROM nope").unwrap();
        assert!(matches!(
            eval_query(&e, &db(), &[]),
            Err(EvalError::UnknownTable(_))
        ));
    }

    #[test]
    fn unknown_column_is_error() {
        let e = parse_sql("SELECT * FROM board WHERE zzz = 1").unwrap();
        assert!(matches!(
            eval_query(&e, &db(), &[]),
            Err(EvalError::UnknownColumn(_))
        ));
    }

    #[test]
    fn values_node_evaluates() {
        use algebra::scalar::Lit;
        let q = RaExpr::Values {
            columns: vec!["x".into()],
            rows: vec![vec![Lit::Int(1)], vec![Lit::Int(2)]],
        };
        let r = eval_query(&q, &Database::new(), &[]).unwrap();
        assert_eq!(r.len(), 2);
    }
}
