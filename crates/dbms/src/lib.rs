//! `dbms` — an in-memory multiset relational database engine.
//!
//! This is the substrate the paper's evaluation ran against (MySQL 5.5 over
//! JDBC/Hibernate). We implement an engine that executes the extended
//! relational algebra of the `algebra` crate with the exact semantics the
//! paper assumes:
//!
//! * multiset relations; π preserves input order and keeps duplicates
//!   (Sec. 3.2.1);
//! * standard SQL `NULL` semantics for aggregates (Rule T5.2's note);
//! * `OUTER APPLY` / lateral padding with NULLs (Appendix B).
//!
//! [`connection::Connection`] wraps the engine behind a simulated
//! client/server boundary: each query costs one round-trip latency plus a
//! per-byte transfer cost, and all traffic is metered. Experiments 5–8
//! measure exactly these quantities (time and data transferred), so the
//! *shape* of the paper's results is reproducible without a networked MySQL.

pub mod connection;
pub mod eval;
pub mod gen;
pub mod paged;
pub mod prng;
pub mod table;
pub mod value;
pub mod volcano;

pub use connection::{Connection, CostModel, Stats};
pub use eval::{eval_query, EvalError};
pub use paged::PagedTable;
pub use table::{Database, Relation, Row, Table};
pub use value::Value;
