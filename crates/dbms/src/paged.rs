//! Paged table backing: the `Value` ⇄ bytes codec and the [`PagedTable`]
//! handle that stores rows in a `storage::Store` B-tree.
//!
//! The storage crate is value-agnostic; this module owns the row codec
//! (one tag byte per value, little-endian payloads) and the per-column
//! value hashes fed to the store's statistics sketches. Rowids are
//! assigned monotonically by the store, so a B-tree scan returns rows in
//! insertion order — the same observable order as the in-memory
//! `Vec<Row>` backing, which keeps the two backends byte-identical under
//! the evaluator.

use storage::{fnv64, Store, TableStatistics};

use crate::table::Row;
use crate::value::Value;

/// Encode one row. Layout per value: tag byte, then payload —
/// `0` NULL (empty), `1` Bool (1 byte), `2` Int (8 bytes LE),
/// `3` Float (8 bytes LE bits), `4` Str (u32 LE length + UTF-8 bytes).
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 9);
    for v in row {
        match v {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Decode a record produced by [`encode_row`]. Panics on malformed bytes —
/// records only ever come back from a checksummed page, so corruption is
/// caught at the pager layer first.
pub fn decode_row(mut bytes: &[u8]) -> Row {
    fn split(bytes: &mut &[u8], n: usize) -> Vec<u8> {
        let (head, tail) = bytes.split_at(n);
        *bytes = tail;
        head.to_vec()
    }
    let mut row = Vec::new();
    while !bytes.is_empty() {
        let tag = bytes[0];
        bytes = &bytes[1..];
        row.push(match tag {
            0 => Value::Null,
            1 => Value::Bool(split(&mut bytes, 1)[0] != 0),
            2 => Value::Int(i64::from_le_bytes(
                split(&mut bytes, 8).try_into().expect("8 bytes"),
            )),
            3 => Value::Float(f64::from_le_bytes(
                split(&mut bytes, 8).try_into().expect("8 bytes"),
            )),
            4 => {
                let len =
                    u32::from_le_bytes(split(&mut bytes, 4).try_into().expect("4 bytes")) as usize;
                Value::Str(String::from_utf8(split(&mut bytes, len)).expect("UTF-8 string"))
            }
            other => panic!("corrupt record: unknown value tag {other}"),
        });
    }
    row
}

/// Hash a value for the NDV sketch; `None` for SQL NULL. Hashes go through
/// [`Value::group_key`] so values that group together (`3` and `3.0`) count
/// as one distinct value, matching GROUP BY semantics.
pub fn value_hash(v: &Value) -> Option<u64> {
    if v.is_null() {
        None
    } else {
        Some(fnv64(v.group_key().as_bytes()))
    }
}

/// A table whose rows live in a [`Store`] B-tree.
///
/// Cloning shares the underlying store (an `Arc` handle): the fuzzer and
/// the benchmarks clone whole `Database` values and run both the original
/// and the extracted program against them read-only.
#[derive(Debug, Clone)]
pub struct PagedTable {
    store: Store,
    name: String,
}

impl PagedTable {
    /// Create (or reset) the table `name` in `store` with `ncols` columns.
    pub fn create(store: Store, name: &str, ncols: usize) -> PagedTable {
        store
            .create_table(name, ncols)
            .expect("create table in store");
        PagedTable {
            store,
            name: name.to_string(),
        }
    }

    /// Attach to a table that already exists in `store` — the rebind half
    /// of [`Store::fork`]: a forked store carries the directory entry and
    /// pages, so no create is needed (or wanted).
    pub fn attach(store: Store, name: &str) -> PagedTable {
        PagedTable {
            store,
            name: name.to_string(),
        }
    }

    /// The table's name in the store directory.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replace the table's contents with `rows` (truncate + re-append, in
    /// order). Statistics sketches are rebuilt from the new rows. This is
    /// the materialize-and-rewrite path behind UPDATE/DELETE on a paged
    /// table; the old tree's pages are leaked in the backing image.
    pub fn rewrite(&mut self, rows: &[Row]) {
        self.store
            .truncate_table(&self.name)
            .expect("truncate stored table");
        for row in rows {
            self.insert(row);
        }
    }

    /// Append a row, feeding the statistics sketches. Panics on storage
    /// errors (oversized record, I/O failure) — the engine's `insert` API
    /// is infallible and generated rows are far below the page size.
    pub fn insert(&mut self, row: &[Value]) {
        let record = encode_row(row);
        let hashes: Vec<Option<u64>> = row.iter().map(value_hash).collect();
        self.store
            .append(&self.name, &record, &hashes)
            .expect("append row to store");
    }

    /// Rows in the table.
    pub fn len(&self) -> usize {
        self.store.row_count(&self.name).unwrap_or(0) as usize
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An ordered scan (insertion order) decoding each record.
    pub fn scan(&self) -> PagedScan {
        PagedScan {
            cursor: self.store.scan(&self.name).expect("scan stored table"),
        }
    }

    /// Statistics snapshot from the store's sketches.
    pub fn statistics(&self) -> TableStatistics {
        self.store
            .statistics(&self.name)
            .expect("statistics for stored table")
    }

    /// The backing store handle.
    pub fn store(&self) -> &Store {
        &self.store
    }
}

/// Iterator over a paged table's rows in insertion order.
pub struct PagedScan {
    cursor: storage::ScanCursor,
}

impl Iterator for PagedScan {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        let (_rowid, record) = self.cursor.next()?.expect("scan stored table");
        Some(decode_row(&record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_tag() {
        let row = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(1.5),
            Value::Str("héllo".into()),
            Value::Str(String::new()),
        ];
        assert_eq!(decode_row(&encode_row(&row)), row);
        assert_eq!(decode_row(&[]), Vec::<Value>::new());
    }

    #[test]
    fn value_hash_groups_numerics() {
        assert_eq!(value_hash(&Value::Int(3)), value_hash(&Value::Float(3.0)));
        assert_ne!(value_hash(&Value::Int(3)), value_hash(&Value::Int(4)));
        assert_eq!(value_hash(&Value::Null), None);
    }

    #[test]
    fn paged_table_round_trip() {
        let store = Store::in_memory(8);
        let mut t = PagedTable::create(store, "t", 2);
        for i in 0..300i64 {
            t.insert(&[Value::Int(i), Value::Str(format!("s{}", i % 3))]);
        }
        assert_eq!(t.len(), 300);
        let rows: Vec<Row> = t.scan().collect();
        assert_eq!(rows.len(), 300);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[299][1], Value::Str("s2".into()));
        let stats = t.statistics();
        assert_eq!(stats.rows, 300);
        assert_eq!(stats.columns[1].ndv, 3.0);
    }
}
