//! Deterministic data generators for the paper's experiment workloads.
//!
//! Each generator takes a seed so experiments are reproducible. Schemas
//! mirror the applications of Sec. 7: Matoso's `board`, Wilos's
//! `project`/`wilos_user`/`role`, and JobPortal's star schema (Fig. 12).

use algebra::schema::{Catalog, ColumnDef, SqlType, TableSchema};

use crate::prng::StdRng;

use crate::table::{Database, Row};
use crate::value::Value;

/// Sampling profile for [`RowGen`].
#[derive(Debug, Clone, Copy)]
pub struct GenProfile {
    /// When set, non-key nullable cells become NULL with this percent
    /// probability (one extra RNG draw per such cell).
    pub null_pct: Option<u32>,
    /// Signed domains (`-9..=9` ints) instead of the tiny unsigned ones.
    pub signed: bool,
    /// Offset added to the row index for key values, so rows generated in
    /// several batches (the fuzzer's store-mode amplification) keep key
    /// columns unique.
    pub key_base: usize,
}

impl GenProfile {
    /// The [`gen_catalog`] profile: no NULLs, tiny unsigned domains.
    pub fn plain() -> GenProfile {
        GenProfile {
            null_pct: None,
            signed: false,
            key_base: 0,
        }
    }

    /// The [`gen_catalog_nulls`] profile: NULLs at `pct`%, signed domains.
    pub fn nulls(pct: u32) -> GenProfile {
        GenProfile {
            null_pct: Some(pct),
            signed: true,
            key_base: 0,
        }
    }

    /// Start key values at `base` instead of 0.
    pub fn with_key_base(mut self, base: usize) -> GenProfile {
        self.key_base = base;
        self
    }
}

/// A streaming row generator: yields one [`Row`] at a time, so callers
/// pipe rows straight into whichever backing the table uses — paged rows
/// go to the store without a whole-table `Vec<Row>` ever existing.
///
/// Key columns receive *unique* values (`key_base..key_base+rows` /
/// `"k0".."kN"`) so rewrites whose soundness rests on a unique key (T4.1,
/// T5.2) are tested under their actual precondition. Non-key columns draw
/// from deliberately tiny domains so joins and equality predicates hit on
/// small databases. The per-cell RNG draw order is part of this
/// generator's contract: certification and the fuzzer replay data by
/// seed, so the sequence below must not be reordered.
pub struct RowGen<'a> {
    schema: &'a TableSchema,
    rng: &'a mut StdRng,
    profile: GenProfile,
    next: usize,
    rows: usize,
}

impl<'a> RowGen<'a> {
    /// Generate `rows` rows of `schema`, drawing from `rng`.
    pub fn new(
        schema: &'a TableSchema,
        rows: usize,
        rng: &'a mut StdRng,
        profile: GenProfile,
    ) -> RowGen<'a> {
        RowGen {
            schema,
            rng,
            profile,
            next: 0,
            rows,
        }
    }
}

fn gen_cell(c: &ColumnDef, is_key: bool, r: usize, rng: &mut StdRng, p: GenProfile) -> Value {
    if let Some(pct) = p.null_pct {
        if !is_key && c.nullable && rng.gen_range(0..100u32) < pct {
            return Value::Null;
        }
    }
    match c.ty {
        SqlType::Int => Value::Int(if is_key {
            r as i64
        } else if p.signed {
            rng.gen_range(-9..10i64)
        } else {
            rng.gen_range(0..4i64)
        }),
        SqlType::Double => Value::Float(if is_key {
            r as f64
        } else if p.signed {
            rng.gen_range(-8..8i64) as f64 / 2.0
        } else {
            rng.gen_range(0..8i64) as f64 / 2.0
        }),
        SqlType::Bool => Value::Bool(rng.gen_bool(0.5)),
        SqlType::Text => Value::Str(if is_key {
            format!("k{r}")
        } else {
            format!("s{}", rng.gen_range(0..3u32))
        }),
    }
}

impl Iterator for RowGen<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.next >= self.rows {
            return None;
        }
        let r = self.profile.key_base + self.next;
        self.next += 1;
        Some(
            self.schema
                .columns
                .iter()
                .map(|c| {
                    let is_key = self.schema.key.iter().any(|k| k == &c.name);
                    gen_cell(c, is_key, r, self.rng, self.profile)
                })
                .collect(),
        )
    }
}

/// Stream `rows` generated rows per catalog table into `db` (which may be
/// in-memory or paged — the one generation path serves both backends).
pub fn fill_catalog(
    db: &mut Database,
    catalog: &Catalog,
    rows: usize,
    rng: &mut StdRng,
    profile: GenProfile,
) {
    for schema in catalog.tables() {
        db.create_table(schema.clone());
        for row in RowGen::new(schema, rows, rng, profile) {
            db.insert(&schema.name, row);
        }
    }
}

/// Append `rows` more generated rows to every existing catalog table in
/// `db`, with keys starting at `key_base` (the fuzzer's store-mode
/// amplification: DDL-loaded rows keep their small keys, generated bulk
/// rows live far above them, and key columns stay unique).
pub fn extend_catalog(
    db: &mut Database,
    catalog: &Catalog,
    rows: usize,
    rng: &mut StdRng,
    profile: GenProfile,
) {
    for schema in catalog.tables() {
        for row in RowGen::new(schema, rows, rng, profile) {
            db.insert(&schema.name, row);
        }
    }
}

/// Populate a database for an arbitrary catalog: `rows` rows per table,
/// deterministic under `seed`. See [`RowGen`] for the value domains.
pub fn gen_catalog(catalog: &Catalog, rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    fill_catalog(&mut db, catalog, rows, &mut rng, GenProfile::plain());
    db
}

/// Populate a database for a catalog with NULL-bearing data: like
/// [`gen_catalog`], but non-key columns declared nullable in the catalog
/// receive SQL `NULL` with probability `null_pct`% per cell.
///
/// Non-key integers additionally draw from a signed domain (`-9..=9`) so
/// sign-sensitive rewrites (ABS, comparisons against zero, division) are
/// exercised. Used by the differential fuzzer (`crates/fuzz`), whose
/// divergence classes — NULL-poisoned sums, NULL flags under 3-valued
/// logic, division by zero — need both NULLs and zeros in the data.
pub fn gen_catalog_nulls(catalog: &Catalog, rows: usize, seed: u64, null_pct: u32) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    fill_catalog(
        &mut db,
        catalog,
        rows,
        &mut rng,
        GenProfile::nulls(null_pct),
    );
    db
}

/// [`gen_catalog`] into a paged database: generated rows stream straight
/// into B-tree pages (identical data to the in-memory variant under the
/// same seed — the two share [`RowGen`]).
pub fn gen_catalog_paged(
    catalog: &Catalog,
    rows: usize,
    seed: u64,
    store: storage::Store,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new_paged(store);
    fill_catalog(&mut db, catalog, rows, &mut rng, GenProfile::plain());
    db
}

/// Matoso `board` table: `n` boards spread over `rounds` rounds, four player
/// scores each (paper Fig. 2 / Experiment 7).
pub fn gen_board(n: usize, rounds: i64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "board",
            &[
                ("id", SqlType::Int),
                ("rnd_id", SqlType::Int),
                ("p1", SqlType::Int),
                ("p2", SqlType::Int),
                ("p3", SqlType::Int),
                ("p4", SqlType::Int),
            ],
        )
        .with_key(&["id"]),
    );
    for i in 0..n {
        let rnd = 1 + (i as i64 % rounds.max(1));
        db.insert(
            "board",
            vec![
                Value::Int(i as i64),
                Value::Int(rnd),
                Value::Int(rng.gen_range(0..10_000)),
                Value::Int(rng.gen_range(0..10_000)),
                Value::Int(rng.gen_range(0..10_000)),
                Value::Int(rng.gen_range(0..10_000)),
            ],
        );
    }
    db
}

/// Wilos-style schema: `project` (with ~`finished_pct`% finished rows, for
/// Experiment 5's 20% selectivity), `wilos_user` and `role` with a 40:1 size
/// ratio option (Experiment 6), plus `activity` and `participant` tables
/// used by other samples.
pub fn gen_wilos(n_projects: usize, n_users: usize, finished_pct: u32, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "project",
            &[
                ("id", SqlType::Int),
                ("name", SqlType::Text),
                ("isfinished", SqlType::Bool),
                ("budget", SqlType::Int),
            ],
        )
        .with_key(&["id"]),
    );
    for i in 0..n_projects {
        db.insert(
            "project",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("project-{i}")),
                Value::Bool(rng.gen_range(0u32..100) < finished_pct),
                Value::Int(rng.gen_range(1_000..100_000)),
            ],
        );
    }
    let n_roles = (n_users / 40).max(1);
    db.create_table(
        TableSchema::new("role", &[("id", SqlType::Int), ("name", SqlType::Text)])
            .with_key(&["id"]),
    );
    for r in 0..n_roles {
        db.insert(
            "role",
            vec![Value::Int(r as i64), Value::Str(format!("role-{r}"))],
        );
    }
    db.create_table(
        TableSchema::new(
            "wilos_user",
            &[
                ("id", SqlType::Int),
                ("name", SqlType::Text),
                ("role_id", SqlType::Int),
                ("login", SqlType::Text),
            ],
        )
        .with_key(&["id"]),
    );
    for u in 0..n_users {
        let role = rng.gen_range(0..n_roles) as i64;
        db.insert(
            "wilos_user",
            vec![
                Value::Int(u as i64),
                Value::Str(format!("user-{u}")),
                Value::Int(role),
                Value::Str(format!("login{u}")),
            ],
        );
    }
    db.create_table(
        TableSchema::new(
            "activity",
            &[
                ("id", SqlType::Int),
                ("project_id", SqlType::Int),
                ("state", SqlType::Text),
                ("effort", SqlType::Int),
            ],
        )
        .with_key(&["id"]),
    );
    let states = ["created", "started", "finished", "suspended"];
    for a in 0..(n_projects * 3) {
        db.insert(
            "activity",
            vec![
                Value::Int(a as i64),
                Value::Int(rng.gen_range(0..n_projects.max(1)) as i64),
                Value::Str(states[rng.gen_range(0..states.len())].to_string()),
                Value::Int(rng.gen_range(1..100)),
            ],
        );
    }
    db.create_table(
        TableSchema::new(
            "participant",
            &[
                ("id", SqlType::Int),
                ("user_id", SqlType::Int),
                ("project_id", SqlType::Int),
            ],
        )
        .with_key(&["id"]),
    );
    for p in 0..n_users {
        db.insert(
            "participant",
            vec![
                Value::Int(p as i64),
                Value::Int(p as i64),
                Value::Int(rng.gen_range(0..n_projects.max(1)) as i64),
            ],
        );
    }
    db
}

/// JobPortal star schema of Fig. 12: an `applicants` fact table plus four
/// per-applicant detail tables, each holding exactly one row per applicant
/// (scalar lookups in the loop).
pub fn gen_jobportal(n_applicants: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "applicants",
            &[
                ("applicant_id", SqlType::Int),
                ("appln_mode", SqlType::Text),
                ("job_id", SqlType::Int),
                ("name", SqlType::Text),
            ],
        )
        .with_key(&["applicant_id"]),
    );
    db.create_table(
        TableSchema::new(
            "personal_details",
            &[
                ("applicant_id", SqlType::Int),
                ("address", SqlType::Text),
                ("phone", SqlType::Text),
            ],
        )
        .with_key(&["applicant_id"]),
    );
    db.create_table(
        TableSchema::new(
            "committee1_feedback",
            &[
                ("applicant_id", SqlType::Int),
                ("score", SqlType::Int),
                ("remark", SqlType::Text),
            ],
        )
        .with_key(&["applicant_id"]),
    );
    db.create_table(
        TableSchema::new(
            "committee2_feedback",
            &[
                ("applicant_id", SqlType::Int),
                ("score", SqlType::Int),
                ("remark", SqlType::Text),
            ],
        )
        .with_key(&["applicant_id"]),
    );
    db.create_table(
        TableSchema::new(
            "edu_qualifs",
            &[
                ("applicant_id", SqlType::Int),
                ("degree", SqlType::Text),
                ("year", SqlType::Int),
            ],
        )
        .with_key(&["applicant_id"]),
    );
    for i in 0..n_applicants {
        let online = rng.gen_bool(0.6);
        db.insert(
            "applicants",
            vec![
                Value::Int(i as i64),
                Value::Str(if online { "online" } else { "paper" }.to_string()),
                Value::Int(rng.gen_range(1..5)),
                Value::Str(format!("applicant-{i}")),
            ],
        );
        db.insert(
            "personal_details",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("{i} Main St")),
                Value::Str(format!("555-{i:04}")),
            ],
        );
        db.insert(
            "committee1_feedback",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..100)),
                Value::Str("ok".into()),
            ],
        );
        db.insert(
            "committee2_feedback",
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..100)),
                Value::Str("ok".into()),
            ],
        );
        if online {
            db.insert(
                "edu_qualifs",
                vec![
                    Value::Int(i as i64),
                    Value::Str("BSc".into()),
                    Value::Int(rng.gen_range(1990..2016)),
                ],
            );
        }
    }
    db
}

/// A generic employees table for tests and small examples.
pub fn gen_emp(n: usize, seed: u64) -> Database {
    let mut db = Database::new();
    gen_emp_into(&mut db, n, seed);
    db
}

/// [`gen_emp`] into a paged database: the scale experiment's table, with
/// rows streamed straight into B-tree pages (identical data to [`gen_emp`]
/// under the same seed — they share [`gen_emp_into`]).
pub fn gen_emp_paged(n: usize, seed: u64, store: storage::Store) -> Database {
    let mut db = Database::new_paged(store);
    gen_emp_into(&mut db, n, seed);
    db
}

/// The one streaming generation path behind [`gen_emp`] / [`gen_emp_paged`]:
/// rows go to `db.insert` one at a time, so a paged backing writes pages
/// directly and no whole-table `Vec<Row>` is ever materialized.
fn gen_emp_into(db: &mut Database, n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    db.create_table(
        TableSchema::new(
            "emp",
            &[
                ("id", SqlType::Int),
                ("name", SqlType::Text),
                ("dept", SqlType::Text),
                ("salary", SqlType::Int),
            ],
        )
        .with_key(&["id"]),
    );
    let depts = ["eng", "sales", "hr"];
    for i in 0..n {
        db.insert(
            "emp",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("emp-{i}")),
                Value::Str(depts[rng.gen_range(0..depts.len())].to_string()),
                Value::Int(rng.gen_range(30_000..200_000)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::parse::parse_sql;

    #[test]
    fn board_generation_is_deterministic() {
        let a = gen_board(100, 4, 7);
        let b = gen_board(100, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.table("board").unwrap().len(), 100);
    }

    #[test]
    fn wilos_user_role_ratio() {
        let db = gen_wilos(10, 400, 20, 1);
        assert_eq!(db.table("wilos_user").unwrap().len(), 400);
        assert_eq!(db.table("role").unwrap().len(), 10);
    }

    #[test]
    fn selectivity_is_roughly_respected() {
        let db = gen_wilos(10_000, 10, 20, 42);
        let q = parse_sql("SELECT COUNT(*) AS c FROM project WHERE isfinished = false").unwrap();
        let r = crate::eval::eval_query(&q, &db, &[]).unwrap();
        let unfinished = match r.rows[0][0] {
            Value::Int(c) => c,
            _ => panic!(),
        };
        // ~80% unfinished when finished_pct = 20.
        assert!((7_500..8_500).contains(&unfinished), "{unfinished}");
    }

    #[test]
    fn jobportal_online_applicants_have_qualifs() {
        let db = gen_jobportal(200, 3);
        let online =
            parse_sql("SELECT COUNT(*) AS c FROM applicants WHERE appln_mode = 'online'").unwrap();
        let quals = parse_sql("SELECT COUNT(*) AS c FROM edu_qualifs").unwrap();
        let a = crate::eval::eval_query(&online, &db, &[]).unwrap().rows[0][0].clone();
        let b = crate::eval::eval_query(&quals, &db, &[]).unwrap().rows[0][0].clone();
        assert_eq!(a, b);
    }

    #[test]
    fn catalog_generation_gives_unique_keys() {
        use algebra::schema::Catalog;
        let cat = Catalog::new()
            .with(
                TableSchema::new(
                    "t",
                    &[
                        ("id", SqlType::Int),
                        ("grp", SqlType::Int),
                        ("s", SqlType::Text),
                    ],
                )
                .with_key(&["id"]),
            )
            .with(TableSchema::new("u", &[("x", SqlType::Double)]));
        let db = gen_catalog(&cat, 5, 11);
        let t = db.table("t").unwrap();
        assert_eq!(t.len(), 5);
        let mut ids: Vec<i64> = t
            .scan()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "key column must be unique");
        assert_eq!(db.table("u").unwrap().len(), 5);
        assert_eq!(gen_catalog(&cat, 5, 11), db, "must be deterministic");
    }

    #[test]
    fn nulls_only_in_nullable_columns() {
        use algebra::schema::Catalog;
        let cat = Catalog::new().with(
            TableSchema::new(
                "t",
                &[
                    ("id", SqlType::Int),
                    ("a", SqlType::Int),
                    ("b", SqlType::Int),
                ],
            )
            .with_key(&["id"])
            .with_nullable(&["b"]),
        );
        let db = gen_catalog_nulls(&cat, 40, 5, 50);
        let t = db.table("t").unwrap();
        assert!(
            t.scan().all(|r| r[0] != Value::Null && r[1] != Value::Null),
            "key and NOT NULL columns must never be NULL"
        );
        assert!(
            t.scan().any(|r| r[2] == Value::Null),
            "nullable column should receive NULLs at 50%"
        );
        assert_eq!(gen_catalog_nulls(&cat, 40, 5, 50), db, "deterministic");
    }

    #[test]
    fn emp_has_requested_rows() {
        let db = gen_emp(50, 9);
        assert_eq!(db.table("emp").unwrap().len(), 50);
    }
}
