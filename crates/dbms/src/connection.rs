//! The simulated client/server connection.
//!
//! The paper's Experiments 5–8 measure end-to-end time and network data
//! transfer between a Java client and MySQL. Here the client/server boundary
//! is simulated: every `execute` pays one round-trip latency and a per-byte
//! transfer cost, and totals are metered in [`Stats`]. Reducing round trips
//! and bytes — exactly what EqSQL, batching and prefetching differ on — maps
//! directly onto the simulated elapsed time.

use algebra::ra::RaExpr;

use crate::eval::{eval_query, EvalError};
use crate::table::{Database, Relation};
use crate::value::Value;

/// Network/transfer cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost per query round trip, in microseconds. The paper's client
    /// and server share a machine; ~500µs models the JDBC+loopback stack.
    pub latency_us: f64,
    /// Per-byte transfer cost in microseconds (≈ 10µs/KiB ⇒ ~0.01).
    pub per_byte_us: f64,
    /// Per-row server-side processing cost in microseconds.
    pub per_row_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            latency_us: 500.0,
            per_byte_us: 0.01,
            per_row_us: 1.0,
        }
    }
}

/// Accumulated connection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    /// Queries executed (round trips).
    pub queries: u64,
    /// Rows transferred to the client.
    pub rows: u64,
    /// Bytes transferred to the client.
    pub bytes: u64,
    /// Simulated elapsed time, microseconds.
    pub sim_us: f64,
}

impl Stats {
    /// Simulated elapsed time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.sim_us / 1000.0
    }
}

/// A database connection with cost accounting.
#[derive(Debug, Clone)]
pub struct Connection {
    /// The underlying database.
    pub db: Database,
    /// Cost model in effect.
    pub cost: CostModel,
    /// Running statistics.
    pub stats: Stats,
}

impl Connection {
    /// Open a connection over `db` with the default cost model.
    pub fn new(db: Database) -> Connection {
        Connection {
            db,
            cost: CostModel::default(),
            stats: Stats::default(),
        }
    }

    /// Open with an explicit cost model.
    pub fn with_cost(db: Database, cost: CostModel) -> Connection {
        Connection {
            db,
            cost,
            stats: Stats::default(),
        }
    }

    /// Execute a query, paying one round trip plus transfer costs.
    pub fn execute(&mut self, q: &RaExpr, params: &[Value]) -> Result<Relation, EvalError> {
        let rel = eval_query(q, &self.db, params)?;
        self.charge(&rel);
        Ok(rel)
    }

    /// Execute a batch of queries in a *single* round trip (used by the
    /// prefetching baseline, which overlaps submissions): one latency charge
    /// covers all of them, transfer is still paid per result.
    pub fn execute_overlapped(
        &mut self,
        queries: &[(&RaExpr, Vec<Value>)],
    ) -> Result<Vec<Relation>, EvalError> {
        let mut out = Vec::with_capacity(queries.len());
        for (i, (q, params)) in queries.iter().enumerate() {
            let rel = eval_query(q, &self.db, params)?;
            let bytes = rel.wire_size() as u64;
            self.stats.queries += 1;
            self.stats.rows += rel.len() as u64;
            self.stats.bytes += bytes;
            // Only the first query in the wave pays latency.
            let lat = if i == 0 { self.cost.latency_us } else { 0.0 };
            self.stats.sim_us += lat
                + bytes as f64 * self.cost.per_byte_us
                + rel.len() as f64 * self.cost.per_row_us;
            out.push(rel);
        }
        Ok(out)
    }

    /// Reset statistics (keeps the database).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
    }

    fn charge(&mut self, rel: &Relation) {
        let bytes = rel.wire_size() as u64;
        self.stats.queries += 1;
        self.stats.rows += rel.len() as u64;
        self.stats.bytes += bytes;
        self.stats.sim_us += self.cost.latency_us
            + bytes as f64 * self.cost.per_byte_us
            + rel.len() as f64 * self.cost.per_row_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::parse::parse_sql;
    use algebra::schema::{SqlType, TableSchema};

    fn conn() -> Connection {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", &[("x", SqlType::Int)]));
        for i in 0..10 {
            db.insert("t", vec![Value::Int(i)]);
        }
        Connection::new(db)
    }

    #[test]
    fn execute_meters_round_trips_and_bytes() {
        let mut c = conn();
        let q = parse_sql("SELECT * FROM t").unwrap();
        let r = c.execute(&q, &[]).unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(c.stats.queries, 1);
        assert_eq!(c.stats.rows, 10);
        assert_eq!(c.stats.bytes, 10 * (8 + 8));
        assert!(c.stats.sim_us >= c.cost.latency_us);
    }

    #[test]
    fn aggregation_transfers_constant_data() {
        let mut c = conn();
        let q_all = parse_sql("SELECT * FROM t").unwrap();
        let q_agg = parse_sql("SELECT MAX(x) AS m FROM t").unwrap();
        c.execute(&q_all, &[]).unwrap();
        let full = c.stats.bytes;
        c.reset_stats();
        c.execute(&q_agg, &[]).unwrap();
        assert!(c.stats.bytes < full, "aggregate moves less data");
        assert_eq!(c.stats.rows, 1);
    }

    #[test]
    fn overlapped_execution_pays_latency_once() {
        let mut c = conn();
        let q = parse_sql("SELECT * FROM t WHERE x = ?").unwrap();
        let batch: Vec<(&RaExpr, Vec<Value>)> = (0..5).map(|i| (&q, vec![Value::Int(i)])).collect();
        c.execute_overlapped(&batch).unwrap();
        let overlapped = c.stats.sim_us;
        assert_eq!(c.stats.queries, 5);
        c.reset_stats();
        for i in 0..5 {
            c.execute(&q, &[Value::Int(i)]).unwrap();
        }
        let sequential = c.stats.sim_us;
        assert!(
            overlapped < sequential,
            "overlap {overlapped} must beat sequential {sequential}"
        );
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut c = conn();
        let q = parse_sql("SELECT * FROM t").unwrap();
        c.execute(&q, &[]).unwrap();
        c.reset_stats();
        assert_eq!(c.stats, Stats::default());
    }
}
