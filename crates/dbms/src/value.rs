//! Runtime values with SQL semantics.

use std::cmp::Ordering;
use std::fmt;

use algebra::scalar::Lit;

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// String.
    Str(String),
}

impl Value {
    /// Construct from an algebra literal.
    pub fn from_lit(l: &Lit) -> Value {
        match l {
            Lit::Null => Value::Null,
            Lit::Bool(b) => Value::Bool(*b),
            Lit::Int(i) => Value::Int(*i),
            Lit::F64(v) => Value::Float(v.get()),
            Lit::Str(s) => Value::Str(s.clone()),
        }
    }

    /// Convert back into a literal (used by the batching baseline to build
    /// parameter tables).
    pub fn to_lit(&self) -> Lit {
        match self {
            Value::Null => Lit::Null,
            Value::Bool(b) => Lit::Bool(*b),
            Value::Int(i) => Lit::Int(*i),
            Value::Float(v) => Lit::float(*v),
            Value::Str(s) => Lit::Str(s.clone()),
        }
    }

    /// True when this value is SQL `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL truthiness: `NULL` is not true.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view (`Int`/`Float`/`Bool` as 0/1), `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// SQL three-valued comparison. `NULL` compared with anything is `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order for sorting: `NULL` first, then by type class, then by
    /// value (mirrors common `NULLS FIRST` behaviour deterministically).
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match class(self).cmp(&class(other)) {
                Ordering::Equal => self.sql_cmp(other).unwrap_or(Ordering::Equal),
                c => c,
            },
        }
    }

    /// Value equality for grouping/`DISTINCT`: `NULL` groups with `NULL`
    /// (per SQL `GROUP BY` semantics).
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            (a, b) => a.sql_cmp(b) == Some(Ordering::Equal),
        }
    }

    /// A stable key string for hashing groups.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "N".to_string(),
            Value::Bool(b) => format!("B{b}"),
            Value::Int(i) => format!("F{:?}", *i as f64),
            Value::Float(v) => format!("F{v:?}"),
            Value::Str(s) => format!("S{s}"),
        }
    }

    /// Approximate wire size in bytes, for data-transfer accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn group_eq_nulls_group_together() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
        assert!(Value::Int(3).group_eq(&Value::Float(3.0)));
    }

    #[test]
    fn group_key_consistent_with_group_eq() {
        assert_eq!(Value::Int(3).group_key(), Value::Float(3.0).group_key());
        assert_ne!(Value::Null.group_key(), Value::Int(0).group_key());
    }

    #[test]
    fn sort_puts_nulls_first() {
        let mut v = vec![Value::Int(2), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(v, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn wire_size_accounts_strings() {
        assert_eq!(Value::Str("abc".into()).wire_size(), 7);
        assert_eq!(Value::Int(5).wire_size(), 8);
    }

    #[test]
    fn lit_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(7),
            Value::Float(1.5),
            "x".into(),
        ] {
            assert_eq!(Value::from_lit(&v.to_lit()), v);
        }
    }
}
