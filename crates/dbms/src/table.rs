//! Tables, rows, relations, and the database.

use std::collections::BTreeMap;

use algebra::schema::{Catalog, TableSchema};

use crate::value::Value;

/// A row: values in schema column order.
pub type Row = Vec<Value>;

/// A base table: schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    /// Stored rows, in insertion order.
    pub rows: Vec<Row>,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Append a row; panics in debug builds when the arity mismatches.
    pub fn insert(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.schema.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A column of a query result: its output name and optional qualifier.
///
/// Qualifiers let predicates above a join refer to `u.role_id` vs `r.id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Relation alias the column is visible under, when any.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl Field {
    /// An unqualified field.
    pub fn new(name: impl Into<String>) -> Field {
        Field {
            qualifier: None,
            name: name.into(),
        }
    }

    /// A qualified field.
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> Field {
        Field {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }

    /// Does this field answer to `qualifier`/`column`?
    pub fn matches(&self, qualifier: Option<&str>, column: &str) -> bool {
        if self.name != column {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self.qualifier.as_deref() == Some(q),
        }
    }
}

/// An intermediate or final query result: fields plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Output columns.
    pub fields: Vec<Field>,
    /// Result rows, ordered.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Output column names (unqualified).
    pub fn column_names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }

    /// Index of the column matching `qualifier`/`name`, preferring an exact
    /// qualified match. `Err` messages name the ambiguity/missing column.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, String> {
        resolve_fields(&self.fields, qualifier, name)
    }

    /// Total wire size of all rows, for transfer accounting.
    pub fn wire_size(&self) -> usize {
        const PER_ROW_OVERHEAD: usize = 8;
        self.rows
            .iter()
            .map(|r| PER_ROW_OVERHEAD + r.iter().map(Value::wire_size).sum::<usize>())
            .sum()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Resolve a column against a field list without constructing a relation
/// (the evaluator's hot path). Ambiguous unqualified names bind leftmost.
pub fn resolve_fields(
    fields: &[Field],
    qualifier: Option<&str>,
    name: &str,
) -> Result<usize, String> {
    let mut found = None;
    for (i, f) in fields.iter().enumerate() {
        if f.matches(qualifier, name) {
            found = Some(i);
            break;
        }
    }
    found.ok_or_else(|| match qualifier {
        Some(q) => format!("unknown column {q}.{name}"),
        None => format!("unknown column {name}"),
    })
}

/// The database: a set of named tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create (or replace) a table.
    pub fn create_table(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.clone(), Table::new(schema));
    }

    /// Builder-style `create_table`.
    pub fn with_table(mut self, schema: TableSchema) -> Database {
        self.create_table(schema);
        self
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Insert a row into a named table. Returns `false` when the table does
    /// not exist.
    pub fn insert(&mut self, table: &str, row: Row) -> bool {
        match self.tables.get_mut(table) {
            Some(t) => {
                t.insert(row);
                true
            }
            None => false,
        }
    }

    /// The catalog of all table schemas.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for t in self.tables.values() {
            c.add(t.schema.clone());
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::schema::SqlType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(TableSchema::new(
            "t",
            &[("a", SqlType::Int), ("b", SqlType::Text)],
        ));
        d.insert("t", vec![Value::Int(1), "x".into()]);
        d
    }

    #[test]
    fn insert_and_len() {
        let d = db();
        assert_eq!(d.table("t").unwrap().len(), 1);
        assert!(d.table("missing").is_none());
    }

    #[test]
    fn insert_into_missing_table_fails() {
        let mut d = db();
        assert!(!d.insert("nope", vec![]));
    }

    #[test]
    fn resolve_prefers_qualified() {
        let r = Relation {
            fields: vec![Field::qualified("u", "id"), Field::qualified("r", "id")],
            rows: vec![],
        };
        assert_eq!(r.resolve(Some("r"), "id").unwrap(), 1);
        assert_eq!(r.resolve(Some("u"), "id").unwrap(), 0);
        // Unqualified ambiguous: leftmost wins.
        assert_eq!(r.resolve(None, "id").unwrap(), 0);
        assert!(r.resolve(None, "zzz").is_err());
    }

    #[test]
    fn wire_size_counts_rows() {
        let r = Relation {
            fields: vec![Field::new("a")],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        assert_eq!(r.wire_size(), 2 * (8 + 8));
    }

    #[test]
    fn catalog_reflects_tables() {
        let c = db().catalog();
        assert!(c.get("t").is_some());
        assert_eq!(c.get("t").unwrap().columns.len(), 2);
    }
}
