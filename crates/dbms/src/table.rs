//! Tables, rows, relations, and the database.
//!
//! A [`Table`] is backed either by an in-memory `Vec<Row>` (the default)
//! or by a page file through `crates/storage` ([`crate::paged`]). Both
//! backings present the same observable contract — insertion-order scans,
//! identical rows — so the evaluator treats them interchangeably; the
//! paged backing additionally keeps memory bounded by the buffer pool's
//! frame budget and collects per-column statistics.

use std::collections::BTreeMap;

use algebra::schema::{Catalog, TableSchema};
use storage::{Store, TableStatistics};

use crate::paged::PagedTable;
use crate::value::Value;

/// A row: values in schema column order.
pub type Row = Vec<Value>;

/// How a table's rows are stored.
#[derive(Debug, Clone)]
enum Backing {
    /// Rows held directly in memory, in insertion order.
    Mem(Vec<Row>),
    /// Rows encoded into B-tree pages in a shared [`Store`].
    Paged(PagedTable),
}

/// A base table: schema plus rows (in-memory or paged).
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    backing: Backing,
}

impl PartialEq for Table {
    /// Content equality: same schema, same rows in the same order,
    /// regardless of backing.
    fn eq(&self, other: &Table) -> bool {
        self.schema == other.schema && self.len() == other.len() && self.scan().eq(other.scan())
    }
}

impl Table {
    /// Create an empty in-memory table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            backing: Backing::Mem(Vec::new()),
        }
    }

    /// Create an empty paged table in `store`.
    pub fn new_paged(schema: TableSchema, store: Store) -> Table {
        let paged = PagedTable::create(store, &schema.name, schema.columns.len());
        Table {
            schema,
            backing: Backing::Paged(paged),
        }
    }

    /// Append a row; panics in debug builds when the arity mismatches.
    pub fn insert(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.schema.columns.len(), "row arity mismatch");
        match &mut self.backing {
            Backing::Mem(rows) => rows.push(row),
            Backing::Paged(t) => t.insert(&row),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Mem(rows) => rows.len(),
            Backing::Paged(t) => t.len(),
        }
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when rows live in the paged store.
    pub fn is_paged(&self) -> bool {
        matches!(self.backing, Backing::Paged(_))
    }

    /// Iterate rows in insertion order (owned; in-memory rows are cloned,
    /// paged rows are decoded one leaf page at a time).
    pub fn scan(&self) -> TableScan<'_> {
        match &self.backing {
            Backing::Mem(rows) => TableScan::Mem(rows.iter()),
            Backing::Paged(t) => TableScan::Paged(t.scan()),
        }
    }

    /// All rows, materialized.
    pub fn rows_vec(&self) -> Vec<Row> {
        match &self.backing {
            Backing::Mem(rows) => rows.clone(),
            Backing::Paged(t) => t.scan().collect(),
        }
    }

    /// The in-memory row vector, when this table is memory-backed.
    pub fn mem_rows_mut(&mut self) -> Option<&mut Vec<Row>> {
        match &mut self.backing {
            Backing::Mem(rows) => Some(rows),
            Backing::Paged(_) => None,
        }
    }

    /// Mutate the table's rows through a closure over a `Vec<Row>`.
    ///
    /// In-memory tables mutate in place. Paged tables materialize their
    /// rows, run the closure, then rewrite the table (truncate +
    /// re-append), so survivor order — and therefore scan order — matches
    /// the in-memory backing exactly. This is the uniform mutation path
    /// for UPDATE/DELETE in `interp::dml`.
    pub fn mutate_rows<R>(&mut self, f: impl FnOnce(&mut Vec<Row>) -> R) -> R {
        match &mut self.backing {
            Backing::Mem(rows) => f(rows),
            Backing::Paged(t) => {
                let mut rows: Vec<Row> = t.scan().collect();
                let out = f(&mut rows);
                t.rewrite(&rows);
                out
            }
        }
    }

    /// Rebind a paged table onto `store` (which must already hold the
    /// table); in-memory tables are cloned as-is. Used by
    /// [`Database::fork`].
    fn rebind_store(&self, store: &Store) -> Table {
        match &self.backing {
            Backing::Mem(_) => self.clone(),
            Backing::Paged(t) => Table {
                schema: self.schema.clone(),
                backing: Backing::Paged(PagedTable::attach(store.clone(), t.name())),
            },
        }
    }

    /// Statistics collected by the paged backing; `None` for in-memory
    /// tables (whose stats, if needed, are computed by scanning).
    pub fn statistics(&self) -> Option<TableStatistics> {
        match &self.backing {
            Backing::Mem(_) => None,
            Backing::Paged(t) => Some(t.statistics()),
        }
    }
}

/// Iterator over a table's rows in insertion order.
pub enum TableScan<'a> {
    /// Cloning iterator over in-memory rows.
    Mem(std::slice::Iter<'a, Row>),
    /// Decoding scan over B-tree leaves.
    Paged(crate::paged::PagedScan),
}

impl Iterator for TableScan<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        match self {
            TableScan::Mem(it) => it.next().cloned(),
            TableScan::Paged(it) => it.next(),
        }
    }
}

/// A column of a query result: its output name and optional qualifier.
///
/// Qualifiers let predicates above a join refer to `u.role_id` vs `r.id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Relation alias the column is visible under, when any.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl Field {
    /// An unqualified field.
    pub fn new(name: impl Into<String>) -> Field {
        Field {
            qualifier: None,
            name: name.into(),
        }
    }

    /// A qualified field.
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> Field {
        Field {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }

    /// Does this field answer to `qualifier`/`column`?
    pub fn matches(&self, qualifier: Option<&str>, column: &str) -> bool {
        if self.name != column {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self.qualifier.as_deref() == Some(q),
        }
    }
}

/// An intermediate or final query result: fields plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Output columns.
    pub fields: Vec<Field>,
    /// Result rows, ordered.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Output column names (unqualified).
    pub fn column_names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }

    /// Index of the column matching `qualifier`/`name`, preferring an exact
    /// qualified match. `Err` messages name the ambiguity/missing column.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, String> {
        resolve_fields(&self.fields, qualifier, name)
    }

    /// Total wire size of all rows, for transfer accounting.
    pub fn wire_size(&self) -> usize {
        const PER_ROW_OVERHEAD: usize = 8;
        self.rows
            .iter()
            .map(|r| PER_ROW_OVERHEAD + r.iter().map(Value::wire_size).sum::<usize>())
            .sum()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Resolve a column against a field list without constructing a relation
/// (the evaluator's hot path). Ambiguous unqualified names bind leftmost.
pub fn resolve_fields(
    fields: &[Field],
    qualifier: Option<&str>,
    name: &str,
) -> Result<usize, String> {
    let mut found = None;
    for (i, f) in fields.iter().enumerate() {
        if f.matches(qualifier, name) {
            found = Some(i);
            break;
        }
    }
    found.ok_or_else(|| match qualifier {
        Some(q) => format!("unknown column {q}.{name}"),
        None => format!("unknown column {name}"),
    })
}

/// The database: a set of named tables, optionally backed by a paged
/// [`Store`].
///
/// When a store is attached ([`Database::new_paged`]), `create_table`
/// places tables in it; otherwise tables are in-memory vectors. Cloning a
/// paged database clones cheap store *handles* — the clones share one
/// underlying page file, fine for read-only use. Copies that will be
/// *mutated* independently (the differential harness runs DML against
/// both sides) use [`Database::fork`], which deep-snapshots the page
/// image.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    store: Option<Store>,
}

impl PartialEq for Database {
    /// Content equality over tables; the store handle is an
    /// implementation detail.
    fn eq(&self, other: &Database) -> bool {
        self.tables == other.tables
    }
}

impl Database {
    /// An empty in-memory database.
    pub fn new() -> Database {
        Database::default()
    }

    /// An empty database whose tables will live in `store`.
    pub fn new_paged(store: Store) -> Database {
        Database {
            tables: BTreeMap::new(),
            store: Some(store),
        }
    }

    /// A paged database over a fresh memory-backed store with the given
    /// buffer-pool frame budget (pages and B-trees without a file; used by
    /// the fuzzer's `--store` mode and tests).
    pub fn paged_in_memory(frames: usize) -> Database {
        Database::new_paged(Store::in_memory(frames))
    }

    /// The attached store, when this database is paged.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Flush the attached store (dirty pages + meta) to its backing file.
    pub fn flush(&self) -> Result<(), storage::StorageError> {
        match &self.store {
            Some(s) => s.flush(),
            None => Ok(()),
        }
    }

    /// Create (or replace) a table — paged when a store is attached.
    pub fn create_table(&mut self, schema: TableSchema) {
        let table = match &self.store {
            Some(store) => Table::new_paged(schema.clone(), store.clone()),
            None => Table::new(schema.clone()),
        };
        self.tables.insert(schema.name.clone(), table);
    }

    /// Builder-style `create_table`.
    pub fn with_table(mut self, schema: TableSchema) -> Database {
        self.create_table(schema);
        self
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Insert a row into a named table. Returns `false` when the table does
    /// not exist.
    pub fn insert(&mut self, table: &str, row: Row) -> bool {
        match self.tables.get_mut(table) {
            Some(t) => {
                t.insert(row);
                true
            }
            None => false,
        }
    }

    /// A deep, independent copy of this database.
    ///
    /// In-memory tables are copied by value (what `Clone` already does).
    /// A paged database forks its store — a full page-image deep snapshot
    /// — and rebinds every paged table to the fork, so mutations against
    /// the copy never alias the original's pager. `Clone` on a paged
    /// database still shares store handles (cheap, read-only use);
    /// differential runs that mutate state go through `fork`.
    pub fn fork(&self) -> Database {
        let Some(store) = &self.store else {
            return self.clone();
        };
        let forked = store.fork().expect("fork paged store");
        let tables = self
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), t.rebind_store(&forked)))
            .collect();
        Database {
            tables,
            store: Some(forked),
        }
    }

    /// The catalog of all table schemas.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for t in self.tables.values() {
            c.add(t.schema.clone());
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::schema::SqlType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(TableSchema::new(
            "t",
            &[("a", SqlType::Int), ("b", SqlType::Text)],
        ));
        d.insert("t", vec![Value::Int(1), "x".into()]);
        d
    }

    #[test]
    fn insert_and_len() {
        let d = db();
        assert_eq!(d.table("t").unwrap().len(), 1);
        assert!(d.table("missing").is_none());
    }

    #[test]
    fn insert_into_missing_table_fails() {
        let mut d = db();
        assert!(!d.insert("nope", vec![]));
    }

    #[test]
    fn resolve_prefers_qualified() {
        let r = Relation {
            fields: vec![Field::qualified("u", "id"), Field::qualified("r", "id")],
            rows: vec![],
        };
        assert_eq!(r.resolve(Some("r"), "id").unwrap(), 1);
        assert_eq!(r.resolve(Some("u"), "id").unwrap(), 0);
        // Unqualified ambiguous: leftmost wins.
        assert_eq!(r.resolve(None, "id").unwrap(), 0);
        assert!(r.resolve(None, "zzz").is_err());
    }

    #[test]
    fn wire_size_counts_rows() {
        let r = Relation {
            fields: vec![Field::new("a")],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        assert_eq!(r.wire_size(), 2 * (8 + 8));
    }

    #[test]
    fn paged_fork_is_independent() {
        let mut d = Database::paged_in_memory(4);
        d.create_table(TableSchema::new(
            "t",
            &[("a", SqlType::Int), ("b", SqlType::Text)],
        ));
        for i in 0..50 {
            d.insert("t", vec![Value::Int(i), "x".into()]);
        }
        let f = d.fork();
        assert!(!d.store().unwrap().same_store(f.store().unwrap()));
        assert_eq!(f.table("t").unwrap().len(), 50);
        // A shared-handle clone aliases; the fork does not.
        let mut f = f;
        f.insert("t", vec![Value::Int(99), "fork".into()]);
        assert_eq!(f.table("t").unwrap().len(), 51);
        assert_eq!(d.table("t").unwrap().len(), 50);
        // Mutating the fork's rows leaves the original untouched.
        f.table_mut("t").unwrap().mutate_rows(|rows| rows.clear());
        assert_eq!(f.table("t").unwrap().len(), 0);
        assert_eq!(d.table("t").unwrap().len(), 50);
    }

    #[test]
    fn mutate_rows_matches_across_backings() {
        let schema = TableSchema::new("t", &[("a", SqlType::Int)]);
        let mut mem = Database::new().with_table(schema.clone());
        let mut paged = Database::paged_in_memory(4).with_table(schema);
        for i in 0..20 {
            mem.insert("t", vec![Value::Int(i)]);
            paged.insert("t", vec![Value::Int(i)]);
        }
        // Same closure on both backings: delete odds, bump evens.
        let edit = |rows: &mut Vec<Row>| {
            rows.retain(|r| matches!(r[0], Value::Int(i) if i % 2 == 0));
            for r in rows.iter_mut() {
                if let Value::Int(i) = r[0] {
                    r[0] = Value::Int(i + 100);
                }
            }
            rows.len()
        };
        let n_mem = mem.table_mut("t").unwrap().mutate_rows(edit);
        let n_paged = paged.table_mut("t").unwrap().mutate_rows(edit);
        assert_eq!(n_mem, 10);
        assert_eq!(n_paged, 10);
        assert_eq!(mem.table("t").unwrap(), paged.table("t").unwrap());
        // The paged rewrite rebuilt statistics from the surviving rows.
        let stats = paged.table("t").unwrap().statistics().unwrap();
        assert_eq!(stats.rows, 10);
    }

    #[test]
    fn catalog_reflects_tables() {
        let c = db().catalog();
        assert!(c.get("t").is_some());
        assert_eq!(c.get("t").unwrap().columns.len(), 2);
    }
}
