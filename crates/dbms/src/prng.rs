//! Small deterministic PRNG used by the data generators and test-input
//! samplers, replacing the external `rand` crate so the workspace builds
//! without network access.
//!
//! The generator is xorshift64* over a splitmix64-expanded seed. It is not
//! cryptographic and does not need to be: all call sites want reproducible,
//! roughly uniform synthetic data keyed by a `u64` seed.

use std::ops::{Range, RangeInclusive};

/// Deterministic random number generator (drop-in for the subset of
/// `rand::rngs::StdRng` the workspace used: `seed_from_u64`, `gen_range`
/// over integer ranges, and `gen_bool`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seed the generator. Splitmix64 whitens the seed so nearby seeds
    /// (0, 1, 2, …) produce unrelated streams.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng {
            state: splitmix64(seed).max(1),
        }
    }

    /// Next raw 64-bit output (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics when the range is empty, matching `rand`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits → [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform value in `[0, bound)`, via Lemire's multiply-shift reduction.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Splitmix64 — used only to expand the user seed into the xorshift state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 only for the full u64 domain, which no caller uses.
                lo + rng.bounded(span.max(1)) as $t
            }
        }
    )*};
}

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(rng.bounded(span) as i64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64 + 1;
                (lo.wrapping_add(rng.bounded(span.max(1)) as i64)) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);
impl_signed_range!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..50);
            assert!((-5..50).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let w: u64 = rng.gen_range(1..=10);
            assert!((1..=10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {c}");
        }
    }
}
