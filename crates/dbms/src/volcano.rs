//! A volcano (iterator-model) executor for single-table pipelines.
//!
//! Each operator pulls one row at a time from its child:
//! `SeqScan → Filter → Project → Sort → Dedup → Limit → Aggregate`.
//! Over a paged table this keeps memory bounded by operator state — the
//! scan holds one B-tree leaf, filters and projections are stateless,
//! aggregation holds one accumulator set per group — instead of
//! materializing the whole table as the tree-walking evaluator
//! ([`crate::eval`]) does. Sort is the exception: τ is a blocking
//! operator and buffers its input, exactly as the paper treats it.
//!
//! The executor is semantically *identical* to the materializing
//! evaluator — same order preservation, duplicate handling,
//! first-occurrence grouping, NULL-first sorting, and NULL-on-error
//! arithmetic — because it reuses the same scalar evaluator, comparator,
//! and aggregate accumulators. `tests/volcano_diff.rs` holds the two
//! engines byte-identical across the query corpus on identical data.
//!
//! [`plans_paged`] decides dispatch: a query takes this path when its
//! operator spine is a supported single-table pipeline *and* the base
//! table is paged. Joins, `OUTER APPLY`, and `VALUES` fall back to the
//! materializing evaluator (whose base-table scans still stream out of
//! the store — they just materialize the scan result first).

use std::collections::HashMap;

use algebra::ra::{AggCall, RaExpr, SortOrder};
use algebra::scalar::Scalar;

use crate::eval::{empty_agg, eval_scalar, fields_of, Accumulator, EvalError, Scope};
use crate::table::{Database, Field, Relation, Row, TableScan};
use crate::value::Value;

/// Is `ra` a single-table pipeline this executor supports? (Predicates
/// and projections may still contain arbitrary subqueries — the scalar
/// evaluator handles those.)
pub fn plannable(ra: &RaExpr) -> bool {
    match ra {
        RaExpr::Table { .. } => true,
        RaExpr::Select { input, .. }
        | RaExpr::Project { input, .. }
        | RaExpr::Sort { input, .. }
        | RaExpr::Dedup { input }
        | RaExpr::Limit { input, .. }
        | RaExpr::Aliased { input, .. }
        | RaExpr::Aggregate { input, .. } => plannable(input),
        RaExpr::Values { .. } | RaExpr::Join { .. } | RaExpr::OuterApply { .. } => false,
    }
}

/// The single base table under a plannable spine.
fn base_table(ra: &RaExpr) -> Option<&str> {
    match ra {
        RaExpr::Table { name, .. } => Some(name),
        RaExpr::Select { input, .. }
        | RaExpr::Project { input, .. }
        | RaExpr::Sort { input, .. }
        | RaExpr::Dedup { input }
        | RaExpr::Limit { input, .. }
        | RaExpr::Aliased { input, .. }
        | RaExpr::Aggregate { input, .. } => base_table(input),
        RaExpr::Values { .. } | RaExpr::Join { .. } | RaExpr::OuterApply { .. } => None,
    }
}

/// Should [`crate::eval::eval_query`] dispatch `ra` here? True when the
/// spine is plannable and its base table is stored in pages.
pub fn plans_paged(ra: &RaExpr, db: &Database) -> bool {
    plannable(ra)
        && base_table(ra)
            .and_then(|name| db.table(name))
            .is_some_and(|t| t.is_paged())
}

/// Execute a plannable pipeline, draining the operator tree into a
/// [`Relation`].
pub fn execute(ra: &RaExpr, db: &Database, params: &[Value]) -> Result<Relation, EvalError> {
    let mut op = build(ra, db, params)?;
    let fields = op.fields().to_vec();
    let mut rows = Vec::new();
    while let Some(row) = op.next()? {
        rows.push(row);
    }
    Ok(Relation { fields, rows })
}

/// One operator in the pipeline: exposes its output schema and yields
/// rows one at a time.
trait Op {
    fn fields(&self) -> &[Field];
    fn next(&mut self) -> Result<Option<Row>, EvalError>;
}

fn build<'a>(
    ra: &'a RaExpr,
    db: &'a Database,
    params: &'a [Value],
) -> Result<Box<dyn Op + 'a>, EvalError> {
    match ra {
        RaExpr::Table { name, .. } => {
            let t = db
                .table(name)
                .ok_or_else(|| EvalError::UnknownTable(name.clone()))?;
            Ok(Box::new(SeqScan {
                fields: fields_of(ra, db)?,
                scan: t.scan(),
            }))
        }
        RaExpr::Select { input, pred } => Ok(Box::new(Filter {
            input: build(input, db, params)?,
            pred,
            db,
            params,
        })),
        RaExpr::Project { input, items } => Ok(Box::new(Project {
            input: build(input, db, params)?,
            items,
            fields: items.iter().map(|i| Field::new(i.alias.clone())).collect(),
            db,
            params,
        })),
        RaExpr::Sort { input, keys } => Ok(Box::new(Sort {
            input: build(input, db, params)?,
            keys,
            buf: None,
            db,
            params,
        })),
        RaExpr::Dedup { input } => Ok(Box::new(Dedup {
            input: build(input, db, params)?,
            seen: HashMap::new(),
        })),
        RaExpr::Limit { input, count } => Ok(Box::new(Limit {
            input: build(input, db, params)?,
            remaining: *count as usize,
        })),
        RaExpr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut fields: Vec<Field> = group_by
                .iter()
                .map(|g| Field::new(g.alias.clone()))
                .collect();
            fields.extend(aggs.iter().map(|a| Field::new(a.alias.clone())));
            Ok(Box::new(Aggregate {
                input: build(input, db, params)?,
                group_by,
                aggs,
                fields,
                out: None,
                db,
                params,
            }))
        }
        RaExpr::Aliased { input, alias } => {
            let input = build(input, db, params)?;
            let fields = input
                .fields()
                .iter()
                .map(|f| Field::qualified(alias.clone(), f.name.clone()))
                .collect();
            Ok(Box::new(Alias { input, fields }))
        }
        RaExpr::Values { .. } | RaExpr::Join { .. } | RaExpr::OuterApply { .. } => Err(
            EvalError::Type("volcano executor: unsupported operator in pipeline".into()),
        ),
    }
}

/// Base-table scan in insertion order (one leaf page resident at a time
/// for paged tables).
struct SeqScan<'a> {
    fields: Vec<Field>,
    scan: TableScan<'a>,
}

impl Op for SeqScan<'_> {
    fn fields(&self) -> &[Field] {
        &self.fields
    }

    fn next(&mut self) -> Result<Option<Row>, EvalError> {
        Ok(self.scan.next())
    }
}

/// σ — keep rows whose predicate is TRUE (not FALSE, not NULL).
struct Filter<'a> {
    input: Box<dyn Op + 'a>,
    pred: &'a Scalar,
    db: &'a Database,
    params: &'a [Value],
}

impl Op for Filter<'_> {
    fn fields(&self) -> &[Field] {
        self.input.fields()
    }

    fn next(&mut self) -> Result<Option<Row>, EvalError> {
        while let Some(row) = self.input.next()? {
            let scope = Scope {
                fields: self.input.fields(),
                row: &row,
                parent: None,
            };
            if eval_scalar(self.pred, self.db, self.params, Some(&scope))?.is_true() {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// π — order-preserving, duplicate-keeping projection.
struct Project<'a> {
    input: Box<dyn Op + 'a>,
    items: &'a [algebra::ra::ProjItem],
    fields: Vec<Field>,
    db: &'a Database,
    params: &'a [Value],
}

impl Op for Project<'_> {
    fn fields(&self) -> &[Field] {
        &self.fields
    }

    fn next(&mut self) -> Result<Option<Row>, EvalError> {
        let Some(row) = self.input.next()? else {
            return Ok(None);
        };
        let scope = Scope {
            fields: self.input.fields(),
            row: &row,
            parent: None,
        };
        let mut out = Vec::with_capacity(self.items.len());
        for i in self.items {
            out.push(eval_scalar(&i.expr, self.db, self.params, Some(&scope))?);
        }
        Ok(Some(out))
    }
}

/// τ — blocking sort; decorate-sort-undecorate with the shared
/// NULLs-first comparator, stable like the materializing evaluator.
struct Sort<'a> {
    input: Box<dyn Op + 'a>,
    keys: &'a [algebra::ra::SortKey],
    buf: Option<std::vec::IntoIter<Row>>,
    db: &'a Database,
    params: &'a [Value],
}

impl Op for Sort<'_> {
    fn fields(&self) -> &[Field] {
        self.input.fields()
    }

    fn next(&mut self) -> Result<Option<Row>, EvalError> {
        if self.buf.is_none() {
            let mut decorated: Vec<(Vec<Value>, Row)> = Vec::new();
            while let Some(row) = self.input.next()? {
                let scope = Scope {
                    fields: self.input.fields(),
                    row: &row,
                    parent: None,
                };
                let mut ks = Vec::with_capacity(self.keys.len());
                for k in self.keys {
                    ks.push(eval_scalar(&k.expr, self.db, self.params, Some(&scope))?);
                }
                decorated.push((ks, row));
            }
            let keys = self.keys;
            decorated.sort_by(|(a, _), (b, _)| {
                for (i, k) in keys.iter().enumerate() {
                    let ord = a[i].sort_cmp(&b[i]);
                    let ord = match k.order {
                        SortOrder::Asc => ord,
                        SortOrder::Desc => ord.reverse(),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.buf = Some(
                decorated
                    .into_iter()
                    .map(|(_, r)| r)
                    .collect::<Vec<_>>()
                    .into_iter(),
            );
        }
        Ok(self.buf.as_mut().expect("sorted buffer").next())
    }
}

/// δ — streaming dedup keeping first occurrences; state is one group key
/// per distinct row seen.
struct Dedup<'a> {
    input: Box<dyn Op + 'a>,
    seen: HashMap<String, ()>,
}

impl Op for Dedup<'_> {
    fn fields(&self) -> &[Field] {
        self.input.fields()
    }

    fn next(&mut self) -> Result<Option<Row>, EvalError> {
        while let Some(row) = self.input.next()? {
            let key: String = row
                .iter()
                .map(|v| v.group_key())
                .collect::<Vec<_>>()
                .join("\u{1}");
            if self.seen.insert(key, ()).is_none() {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// LIMIT — stops *pulling* from its child once satisfied, so a limited
/// scan over a large stored table touches only the leaves it needs.
struct Limit<'a> {
    input: Box<dyn Op + 'a>,
    remaining: usize,
}

impl Op for Limit<'_> {
    fn fields(&self) -> &[Field] {
        self.input.fields()
    }

    fn next(&mut self) -> Result<Option<Row>, EvalError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
}

/// γ — streaming aggregation: one pass over the input feeding per-group
/// accumulators; groups emit in first-occurrence order. Memory is
/// O(groups), not O(rows).
struct Aggregate<'a> {
    input: Box<dyn Op + 'a>,
    group_by: &'a [algebra::ra::ProjItem],
    aggs: &'a [AggCall],
    fields: Vec<Field>,
    out: Option<std::vec::IntoIter<Row>>,
    db: &'a Database,
    params: &'a [Value],
}

impl Op for Aggregate<'_> {
    fn fields(&self) -> &[Field] {
        &self.fields
    }

    fn next(&mut self) -> Result<Option<Row>, EvalError> {
        if self.out.is_none() {
            let mut order: Vec<String> = Vec::new();
            let mut groups: HashMap<String, (Vec<Value>, Vec<Accumulator>)> = HashMap::new();
            let mut saw_rows = false;
            while let Some(row) = self.input.next()? {
                saw_rows = true;
                let scope = Scope {
                    fields: self.input.fields(),
                    row: &row,
                    parent: None,
                };
                let mut keys = Vec::with_capacity(self.group_by.len());
                for g in self.group_by {
                    keys.push(eval_scalar(&g.expr, self.db, self.params, Some(&scope))?);
                }
                let key: String = keys
                    .iter()
                    .map(|v| v.group_key())
                    .collect::<Vec<_>>()
                    .join("\u{1}");
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                    let accs = self.aggs.iter().map(|a| Accumulator::new(a.func)).collect();
                    groups.insert(key.clone(), (keys, accs));
                }
                let entry = groups.get_mut(&key).expect("group just ensured");
                for (acc, a) in entry.1.iter_mut().zip(self.aggs) {
                    let v = eval_scalar(&a.arg, self.db, self.params, Some(&scope))?;
                    acc.feed(&v)?;
                }
            }
            let mut rows = Vec::with_capacity(order.len().max(1));
            if !saw_rows && self.group_by.is_empty() {
                // Empty input, no GROUP BY: one all-NULL/zero row.
                rows.push(self.aggs.iter().map(|a| empty_agg(a.func)).collect());
            } else {
                for key in &order {
                    let (keys, accs) = groups.remove(key).expect("group present");
                    let mut out = keys;
                    for acc in accs {
                        out.push(acc.finish());
                    }
                    rows.push(out);
                }
            }
            self.out = Some(rows.into_iter());
        }
        Ok(self.out.as_mut().expect("aggregate output").next())
    }
}

/// ρ — rename: requalify fields, pass rows through.
struct Alias<'a> {
    input: Box<dyn Op + 'a>,
    fields: Vec<Field>,
}

impl Op for Alias<'_> {
    fn fields(&self) -> &[Field] {
        &self.fields
    }

    fn next(&mut self) -> Result<Option<Row>, EvalError> {
        self.input.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::parse::parse_sql;
    use algebra::schema::{SqlType, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            &[
                ("id", SqlType::Int),
                ("g", SqlType::Int),
                ("x", SqlType::Int),
            ],
        )
        .with_key(&["id"])
    }

    fn twin_dbs(n: i64) -> (Database, Database) {
        let mut mem = Database::new();
        let mut paged = Database::paged_in_memory(4);
        for db in [&mut mem, &mut paged] {
            db.create_table(schema());
            for i in 0..n {
                db.insert(
                    "t",
                    vec![Value::Int(i), Value::Int(i % 5), Value::Int((i * 7) % 13)],
                );
            }
        }
        (mem, paged)
    }

    #[test]
    fn dispatch_goes_through_volcano_for_paged_only() {
        let (mem, paged) = twin_dbs(10);
        let q = parse_sql("SELECT * FROM t WHERE g = 2").unwrap();
        assert!(!plans_paged(&q, &mem));
        assert!(plans_paged(&q, &paged));
        let j = parse_sql("SELECT * FROM t a JOIN t b ON a.id = b.id").unwrap();
        assert!(!plans_paged(&j, &paged), "joins are not plannable");
    }

    #[test]
    fn volcano_matches_materialized_on_pipelines() {
        let (mem, paged) = twin_dbs(200);
        for sql in [
            "SELECT * FROM t",
            "SELECT x FROM t WHERE g = 3",
            "SELECT g, COUNT(*) AS c, SUM(x) AS s FROM t GROUP BY g",
            "SELECT MAX(x) AS m FROM t WHERE id > 150",
            "SELECT DISTINCT g FROM t ORDER BY g DESC",
            "SELECT id FROM t ORDER BY x, id LIMIT 7",
            "SELECT COUNT(*) AS c FROM t WHERE id > 9999",
        ] {
            let q = parse_sql(sql).unwrap();
            let reference = crate::eval::eval_query_materialized(&q, &mem, &[]).unwrap();
            let via_volcano = execute(&q, &paged, &[]).unwrap();
            assert_eq!(reference, via_volcano, "{sql}");
            // And the public entry point dispatches identically.
            assert_eq!(
                reference,
                crate::eval::eval_query(&q, &paged, &[]).unwrap(),
                "{sql}"
            );
        }
    }

    #[test]
    fn limit_stops_pulling_early() {
        let (_, paged) = twin_dbs(2000);
        let before = paged.store().unwrap().pool_stats();
        let q = parse_sql("SELECT id FROM t LIMIT 3").unwrap();
        let r = execute(&q, &paged, &[]).unwrap();
        assert_eq!(r.len(), 3);
        let after = paged.store().unwrap().pool_stats();
        // Three rows live on the first leaf: at most a couple of page
        // fetches beyond the descent, not a full-table scan.
        assert!(
            after.hits + after.misses - (before.hits + before.misses) < 6,
            "LIMIT must not scan the whole table"
        );
    }
}
