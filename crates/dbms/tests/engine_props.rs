//! Property-based invariants of the relational engine — the semantics the
//! extraction correctness proof (paper Appendix A) leans on.

use algebra::ra::{ProjItem, RaExpr, SortKey};
use algebra::scalar::{BinOp, Scalar};
use dbms::eval_query;
use dbms::gen::gen_emp;
use proptest::prelude::*;

fn pred(cut: i64) -> Scalar {
    Scalar::cmp(BinOp::Gt, Scalar::col("salary"), Scalar::int(cut))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// σ commutes with π when the predicate's columns survive projection.
    #[test]
    fn select_project_commute(n in 0usize..40, seed in any::<u64>(), cut in 0i64..250_000) {
        let db = gen_emp(n, seed);
        let items = vec![ProjItem::col("name"), ProjItem::col("salary")];
        let a = RaExpr::table("emp").select(pred(cut)).project(items.clone());
        let b = RaExpr::table("emp").project(items).select(pred(cut));
        let ra = eval_query(&a, &db, &[]).unwrap();
        let rb = eval_query(&b, &db, &[]).unwrap();
        prop_assert_eq!(ra.rows, rb.rows);
    }

    /// π preserves row order and count (paper Sec. 3.2.1: "projection
    /// without duplicate elimination, the input ordering is preserved").
    #[test]
    fn projection_preserves_order_and_count(n in 0usize..40, seed in any::<u64>()) {
        let db = gen_emp(n, seed);
        let base = eval_query(&RaExpr::table("emp"), &db, &[]).unwrap();
        let proj = eval_query(
            &RaExpr::table("emp").project(vec![ProjItem::col("id")]),
            &db,
            &[],
        )
        .unwrap();
        prop_assert_eq!(base.rows.len(), proj.rows.len());
        for (b, p) in base.rows.iter().zip(&proj.rows) {
            prop_assert_eq!(&b[0], &p[0]);
        }
    }

    /// δ is idempotent.
    #[test]
    fn dedup_idempotent(n in 0usize..40, seed in any::<u64>()) {
        let db = gen_emp(n, seed);
        let once = RaExpr::table("emp").project(vec![ProjItem::col("dept")]).dedup();
        let twice = once.clone().dedup();
        prop_assert_eq!(
            eval_query(&once, &db, &[]).unwrap().rows,
            eval_query(&twice, &db, &[]).unwrap().rows
        );
    }

    /// τ is stable: rows with equal keys keep their input order.
    #[test]
    fn sort_is_stable(n in 0usize..40, seed in any::<u64>()) {
        let db = gen_emp(n, seed);
        let sorted = RaExpr::table("emp").sort(vec![SortKey::asc(Scalar::col("dept"))]);
        let rel = eval_query(&sorted, &db, &[]).unwrap();
        // Within each dept group, ids must appear in insertion (= id) order.
        let mut last: std::collections::HashMap<String, i64> = Default::default();
        for row in &rel.rows {
            let dept = row[2].to_string();
            let id = match row[0] { dbms::Value::Int(i) => i, _ => unreachable!() };
            if let Some(prev) = last.get(&dept) {
                prop_assert!(id > *prev, "instability in group {dept}");
            }
            last.insert(dept, id);
        }
    }

    /// Inner join row count is bounded by the cross product and the
    /// equi-join on a key is bounded by the non-key side.
    #[test]
    fn join_cardinality_bounds(n in 1usize..30, seed in any::<u64>()) {
        let db = gen_emp(n, seed);
        let j = RaExpr::table_as("emp", "a").join(
            RaExpr::table_as("emp", "b"),
            Scalar::cmp(BinOp::Eq, Scalar::qcol("a", "id"), Scalar::qcol("b", "id")),
        );
        let rel = eval_query(&j, &db, &[]).unwrap();
        // id is unique: self equi-join on the key is exactly n rows.
        prop_assert_eq!(rel.rows.len(), n);
    }

    /// LEFT JOIN never loses left rows.
    #[test]
    fn left_join_preserves_left(n in 0usize..30, seed in any::<u64>(), cut in 0i64..250_000) {
        let db = gen_emp(n, seed);
        let j = RaExpr::table_as("emp", "a").left_join(
            RaExpr::table_as("emp", "b").select(Scalar::cmp(
                BinOp::Gt,
                Scalar::qcol("b", "salary"),
                Scalar::int(cut),
            )),
            Scalar::cmp(BinOp::Eq, Scalar::qcol("a", "id"), Scalar::qcol("b", "id")),
        );
        let rel = eval_query(&j, &db, &[]).unwrap();
        prop_assert!(rel.rows.len() >= n);
    }

    /// γ without grouping returns exactly one row; SUM agrees with a manual
    /// fold over the table.
    #[test]
    fn aggregate_matches_manual_fold(n in 0usize..40, seed in any::<u64>()) {
        let db = gen_emp(n, seed);
        let q = RaExpr::table("emp").aggregate(vec![algebra::ra::AggCall::new(
            algebra::ra::AggFunc::Sum,
            Scalar::col("salary"),
            "s",
        )]);
        let rel = eval_query(&q, &db, &[]).unwrap();
        prop_assert_eq!(rel.rows.len(), 1);
        let manual: i64 = db
            .table("emp")
            .unwrap()
            .scan()
            .map(|r| match r[3] { dbms::Value::Int(s) => s, _ => 0 })
            .sum();
        match (&rel.rows[0][0], n) {
            (dbms::Value::Null, 0) => {}
            (dbms::Value::Int(s), _) => prop_assert_eq!(*s, manual),
            (other, _) => prop_assert!(false, "unexpected {other}"),
        }
    }

    /// LIMIT k yields a prefix of the unlimited result.
    #[test]
    fn limit_is_prefix(n in 0usize..40, seed in any::<u64>(), k in 0u64..10) {
        let db = gen_emp(n, seed);
        let full = eval_query(&RaExpr::table("emp"), &db, &[]).unwrap();
        let limited = eval_query(&RaExpr::table("emp").limit(k), &db, &[]).unwrap();
        prop_assert_eq!(limited.rows.len(), full.rows.len().min(k as usize));
        for (a, b) in limited.rows.iter().zip(&full.rows) {
            prop_assert_eq!(a, b);
        }
    }

    /// GROUP BY partitions: group sums add up to the whole-table sum and
    /// group counts add up to the row count.
    #[test]
    fn group_by_partitions(n in 0usize..40, seed in any::<u64>()) {
        let db = gen_emp(n, seed);
        let grouped = RaExpr::table("emp").group_by(
            vec![ProjItem::col("dept")],
            vec![
                algebra::ra::AggCall::new(algebra::ra::AggFunc::Sum, Scalar::col("salary"), "s"),
                algebra::ra::AggCall::new(algebra::ra::AggFunc::Count, Scalar::int(1), "c"),
            ],
        );
        let rel = eval_query(&grouped, &db, &[]).unwrap();
        let mut sum = 0i64;
        let mut count = 0i64;
        for row in &rel.rows {
            if let dbms::Value::Int(s) = row[1] {
                sum += s;
            }
            if let dbms::Value::Int(c) = row[2] {
                count += c;
            }
        }
        let manual: i64 = db
            .table("emp")
            .unwrap()
            .scan()
            .map(|r| match r[3] { dbms::Value::Int(s) => s, _ => 0 })
            .sum();
        prop_assert_eq!(sum, manual);
        prop_assert_eq!(count, n as i64);
    }
}
