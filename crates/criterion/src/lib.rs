//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the API surface the `bench` crate uses — `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time` builders,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — with plain
//! wall-clock timing and stdout reporting instead of statistics, so the
//! workspace needs no registry dependency to build its benches.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Soft cap on the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time `f` and report the mean per-iteration cost.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            f(&mut b);
            if Instant::now() >= deadline {
                break;
            }
        }
        b.report(&self.name, &id.to_string());
        self
    }

    /// Like [`Self::bench_function`] with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            f(&mut b, input);
            if Instant::now() >= deadline {
                break;
            }
        }
        b.report(&self.name, &id.0);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark identifier with a parameter, e.g. `dir_build/32`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` once under the timer. (Real criterion chooses iteration
    /// counts adaptively; one call per sample keeps heavy extraction
    /// benches affordable while still producing a stable mean.)
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no samples");
        } else {
            let mean = self.elapsed / self.iters as u32;
            println!("{group}/{id}: {mean:?} mean over {} samples", self.iters);
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a bench binary
            // invoked with `--test` must not run the full measurement.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_builders_chain_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
