//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build and test without network access, so this crate
//! re-implements the slice of proptest's API the test suite uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_recursive`,
//! integer-range and tuple strategies, [`Just`], [`any`],
//! [`collection::vec`], and the `proptest!`/`prop_oneof!`/`prop_assert!`
//! macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! files: each test case is sampled from a deterministic RNG seeded by the
//! test's module path and case index, so failures are reproducible run to
//! run without any state on disk.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner;

pub use test_runner::TestRng;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Per-`proptest!` block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` sampled inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of test values.
///
/// Mirrors proptest's `Strategy`, minus shrinking: a strategy only knows how
/// to sample a value from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each sampled value and sample from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` wraps an inner
    /// strategy into one layer of structure. Values nest at most `depth`
    /// layers. `desired_size` and `expected_branch_size` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let next = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), next]).boxed();
        }
        cur
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `strategy.prop_flat_map(f)`.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between alternatives (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms`. Panics when empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy yielding any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    (unsigned: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
    (signed: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                lo.wrapping_add(rng.below(hi.wrapping_sub(lo) as u64 + 1) as i64) as $t
            }
        }
    )*};
}

impl_range_strategy!(unsigned: u8, u16, u32, u64, usize);
impl_range_strategy!(signed: i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `size` elements sampled from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Uniform choice among strategies with a common value type.
///
/// Each arm is boxed, so arms of different concrete strategy types mix
/// freely as long as their `Value`s agree.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property test (maps to `assert!`; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests.
///
/// Supports the same surface as real proptest for the forms used in this
/// repository: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn boxed_strategies_are_clonable_and_deterministic() {
        let s = (0i64..100).prop_map(|v| v * 2).boxed();
        let t = s.clone();
        let mut r1 = crate::TestRng::deterministic("x", 0);
        let mut r2 = crate::TestRng::deterministic("x", 0);
        assert_eq!(s.sample(&mut r1), t.sample(&mut r2));
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mut seen = [false; 4];
        let mut rng = crate::TestRng::deterministic("arms", 0);
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_respects_size_range() {
        let s = crate::collection::vec(0u8..4, 1..4);
        let mut rng = crate::TestRng::deterministic("vec", 0);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(2, 6, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::deterministic("tree", 0);
        for _ in 0..50 {
            assert!(depth(&s.sample(&mut rng)) <= 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro surface itself: patterns, multiple params, trailing comma.
        #[test]
        fn macro_roundtrip((a, b) in (0i64..10, 0i64..10), flip in any::<bool>(),) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a, "flip = {}", flip);
        }
    }
}
