//! Deterministic RNG for property sampling.

/// Xorshift64* generator seeded from a test name and case index, so every
/// run of the suite samples identical inputs without any on-disk state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (typically `module_path!()::name`) and a
    /// case counter.
    pub fn deterministic(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            state: splitmix64(h).max(1),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_by_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::deterministic("t", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
