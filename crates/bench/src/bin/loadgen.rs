//! `loadgen` — the tracked keep-alive service load experiment.
//!
//! Drives N concurrent HTTP/1.1 clients against the extraction service and
//! reports throughput plus an HDR-style latency histogram (p50/p99/p999).
//! Each client holds one persistent connection and issues a deterministic
//! request mix — `/extract` over a small program pool (so replays hit the
//! sharded result cache), fresh `/extract` misses, and `/lint` — seeded
//! per client so two runs issue the same requests in the same order.
//! Writes `BENCH_service.json` at the repo root.
//!
//! Modes:
//!
//! * default — starts an in-process keep-alive server and measures it with
//!   `--clients` (64) × `--requests` (50); JSON written to `--out`
//!   (default `BENCH_service.json`).
//! * `--addr HOST:PORT` — measure an already-running server instead. The
//!   client reconnects whenever the server closes the connection, so the
//!   same binary can A/B a `Connection: close` thread-per-connection
//!   baseline against the event-loop server.
//! * `--check` — a short fixed-seed run (8 clients × 16 requests) against
//!   an in-process server; the emitted JSON is validated, compared
//!   structurally against the tracked `BENCH_service.json` (identity and
//!   field inventory — never absolute timings), and printed. Used by
//!   `ci.sh`; exit 0 on success.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use analysis::json::Json;

const SCHEMA: &str = "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, dept TEXT, salary INT);";

/// Distinct extract programs: replays within the pool are cache hits.
const EXTRACT_POOL: usize = 8;
/// Distinct lint programs.
const LINT_POOL: usize = 4;

fn extract_source(k: usize) -> String {
    format!(
        "fn total{k}() {{ rows = executeQuery(\"SELECT * FROM emp\"); \
         s = 0; for (e in rows) {{ s = s + e.salary; }} return s; }}"
    )
}

fn lint_source(k: usize) -> String {
    format!(
        "fn first{k}(t) {{ rows = executeQuery(\"SELECT * FROM emp\"); \
         f = 0; for (e in rows) {{ if (e.salary > t) {{ f = e.id; break; }} }} return f; }}"
    )
}

fn body_for(source: &str) -> String {
    Json::Obj(vec![
        ("source".into(), Json::str(source)),
        ("schema".into(), Json::str(SCHEMA)),
    ])
    .render()
}

// ---------------------------------------------------------------------------
// HDR-style histogram: power-of-two octaves with 64 linear sub-buckets each,
// so every recorded latency lands within ~1.6% of its bucket's nominal
// value regardless of magnitude. Values are microseconds.
// ---------------------------------------------------------------------------

const SUB_BITS: u32 = 6;
const SUB_MASK: u64 = (1 << SUB_BITS) - 1;
const BUCKETS: usize = 64 << SUB_BITS;

struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    fn record(&mut self, us: u64) {
        let v = us.max(1);
        let msb = 63 - v.leading_zeros();
        let idx = if msb < SUB_BITS {
            v as usize
        } else {
            let shift = msb - SUB_BITS;
            ((((msb - SUB_BITS + 1) as u64) << SUB_BITS) + ((v >> shift) & SUB_MASK)) as usize
        };
        self.counts[idx.min(BUCKETS - 1)] += 1;
        self.total += 1;
        self.max = self.max.max(us);
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Lower bound of the value range bucket `idx` covers.
    fn bucket_value(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < (1 << SUB_BITS) {
            idx
        } else {
            let octave = idx >> SUB_BITS;
            let sub = idx & SUB_MASK;
            ((1 << SUB_BITS) + sub) << (octave - 1)
        }
    }

    /// Value at quantile `q` in [0, 1].
    fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx).min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Reconnecting keep-alive client.
// ---------------------------------------------------------------------------

struct Client {
    addr: String,
    stream: Option<TcpStream>,
    carry: Vec<u8>,
    /// Connections established beyond the first — nonzero when the server
    /// closes after responses (the thread-per-connection baseline) or drops
    /// the connection mid-exchange.
    reconnects: u64,
    connected_once: bool,
}

impl Client {
    fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            stream: None,
            carry: Vec::new(),
            reconnects: 0,
            connected_once: false,
        }
    }

    fn ensure_connected(&mut self) -> Result<(), String> {
        if self.stream.is_some() {
            return Ok(());
        }
        if self.connected_once {
            self.reconnects += 1;
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let stream = loop {
            match TcpStream::connect(&self.addr) {
                Ok(s) => break s,
                Err(e) if Instant::now() >= deadline => {
                    return Err(format!("connect {}: {e}", self.addr));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        self.carry.clear();
        self.stream = Some(stream);
        self.connected_once = true;
        Ok(())
    }

    /// One request/response exchange. Returns `(status, cache_hit)`.
    /// Transparently reconnects (and retries once) when the server closed
    /// the connection — the thread-per-connection baseline closes after
    /// every response.
    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, bool), String> {
        for attempt in 0..2 {
            self.ensure_connected()?;
            match self.try_request(method, path, body) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    self.stream = None;
                    if attempt == 1 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!()
    }

    fn try_request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, bool), String> {
        let stream = self.stream.as_mut().expect("connected");
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        stream
            .write_all(req.as_bytes())
            .map_err(|e| format!("{path}: write: {e}"))?;

        let header_end = loop {
            if let Some(i) = find(&self.carry, b"\r\n\r\n") {
                break i;
            }
            let mut chunk = [0u8; 8192];
            let n = stream
                .read(&mut chunk)
                .map_err(|e| format!("{path}: read: {e}"))?;
            if n == 0 {
                return Err(format!("{path}: connection closed mid-response"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.carry[..header_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("{path}: bad response head: {head:?}"))?;
        let mut content_length = 0usize;
        let mut close = false;
        let mut cache_hit = false;
        for line in head.lines().skip(1) {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("x-eqsql-cache") {
                cache_hit = value == "hit";
            }
        }
        let body_start = header_end + 4;
        while self.carry.len() < body_start + content_length {
            let mut chunk = [0u8; 8192];
            let n = stream
                .read(&mut chunk)
                .map_err(|e| format!("{path}: read body: {e}"))?;
            if n == 0 {
                return Err(format!("{path}: connection closed mid-body"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
        self.carry.drain(..body_start + content_length);
        if close {
            self.stream = None;
            self.carry.clear();
        }
        Ok((status, cache_hit))
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

// ---------------------------------------------------------------------------
// Workers.
// ---------------------------------------------------------------------------

struct WorkerResult {
    hist: Histogram,
    ok: u64,
    shed: u64,
    errors: u64,
    cache_hits: u64,
    lints: u64,
    extracts: u64,
    reconnects: u64,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn run_worker(addr: &str, id: usize, requests: usize, seed: u64) -> WorkerResult {
    let mut client = Client::new(addr);
    let mut hist = Histogram::new();
    let mut r = WorkerResult {
        hist: Histogram::new(),
        ok: 0,
        shed: 0,
        errors: 0,
        cache_hits: 0,
        lints: 0,
        extracts: 0,
        reconnects: 0,
    };
    let mut rng = seed ^ ((id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for _ in 0..requests {
        let roll = xorshift(&mut rng);
        let (path, body) = if roll.is_multiple_of(4) {
            r.lints += 1;
            (
                "/lint",
                body_for(&lint_source((roll / 4) as usize % LINT_POOL)),
            )
        } else {
            r.extracts += 1;
            (
                "/extract",
                body_for(&extract_source((roll / 4) as usize % EXTRACT_POOL)),
            )
        };
        let started = Instant::now();
        match client.request("POST", path, &body) {
            Ok((200, hit)) => {
                r.ok += 1;
                if hit {
                    r.cache_hits += 1;
                }
            }
            Ok((429, _)) => r.shed += 1,
            Ok(_) | Err(_) => r.errors += 1,
        }
        hist.record(started.elapsed().as_micros().max(1) as u64);
    }
    r.hist = hist;
    r.reconnects = client.reconnects;
    r
}

// ---------------------------------------------------------------------------
// Entry point.
// ---------------------------------------------------------------------------

struct Opts {
    clients: usize,
    requests: usize,
    seed: u64,
    addr: Option<String>,
    out: String,
    check: bool,
}

fn main() {
    let mut opts = Opts {
        clients: 64,
        requests: 50,
        seed: 42,
        addr: None,
        out: "BENCH_service.json".to_string(),
        check: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => opts.check = true,
            "--clients" => {
                i += 1;
                opts.clients = args[i].parse().expect("--clients N");
            }
            "--requests" => {
                i += 1;
                opts.requests = args[i].parse().expect("--requests N");
            }
            "--seed" => {
                i += 1;
                opts.seed = args[i].parse().expect("--seed N");
            }
            "--addr" => {
                i += 1;
                opts.addr = Some(args[i].clone());
            }
            "--out" => {
                i += 1;
                opts.out = args[i].clone();
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    if opts.check {
        opts.clients = 8;
        opts.requests = 16;
    }

    // Either measure an external server (`--addr`) or boot the in-process
    // keep-alive event-loop server.
    let (addr, server) = match &opts.addr {
        Some(a) => (a.clone(), None),
        None => {
            let config = service::ServiceConfig {
                workers: std::thread::available_parallelism()
                    .map(|n| n.get().min(8))
                    .unwrap_or(4),
                queue_capacity: 1024,
                cache_entries: 4096,
                cache_shards: 8,
                job_timeout: Some(Duration::from_secs(30)),
                ..service::ServiceConfig::default()
            };
            let server = service::Server::start("127.0.0.1:0", config).expect("start server");
            (server.addr().to_string(), Some(server))
        }
    };

    let started = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|id| {
            let addr = addr.clone();
            let requests = opts.requests;
            let seed = opts.seed;
            std::thread::spawn(move || run_worker(&addr, id, requests, seed))
        })
        .collect();
    let mut hist = Histogram::new();
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut cache_hits = 0u64;
    let mut lints = 0u64;
    let mut extracts = 0u64;
    let mut reconnects = 0u64;
    for h in handles {
        let r = h.join().expect("worker thread");
        hist.merge(&r.hist);
        ok += r.ok;
        shed += r.shed;
        errors += r.errors;
        cache_hits += r.cache_hits;
        lints += r.lints;
        extracts += r.extracts;
        reconnects += r.reconnects;
    }
    let elapsed = started.elapsed();
    if let Some(server) = server {
        server.shutdown();
    }

    let total = (opts.clients * opts.requests) as u64;
    assert_eq!(hist.total, total, "every request must be recorded");
    assert_eq!(errors, 0, "load run saw {errors} request errors");
    let throughput = total as f64 / elapsed.as_secs_f64();
    let doc = Json::Obj(vec![
        ("schema_version".into(), Json::int(1)),
        ("bench".into(), Json::str("service_loadgen")),
        ("clients".into(), Json::int(opts.clients as i64)),
        (
            "requests_per_client".into(),
            Json::int(opts.requests as i64),
        ),
        ("requests_total".into(), Json::int(total as i64)),
        ("seed".into(), Json::int(opts.seed as i64)),
        (
            "mix".into(),
            Json::Obj(vec![
                ("extract".into(), Json::int(extracts as i64)),
                ("lint".into(), Json::int(lints as i64)),
            ]),
        ),
        (
            "status".into(),
            Json::Obj(vec![
                ("ok".into(), Json::int(ok as i64)),
                ("shed".into(), Json::int(shed as i64)),
                ("errors".into(), Json::int(errors as i64)),
            ]),
        ),
        ("cache_hits_observed".into(), Json::int(cache_hits as i64)),
        ("reconnects".into(), Json::int(reconnects as i64)),
        ("elapsed_ms".into(), Json::Num(elapsed.as_secs_f64() * 1e3)),
        ("throughput_rps".into(), Json::Num(throughput)),
        (
            "latency_us".into(),
            Json::Obj(vec![
                ("p50".into(), Json::int(hist.percentile(0.50) as i64)),
                ("p90".into(), Json::int(hist.percentile(0.90) as i64)),
                ("p99".into(), Json::int(hist.percentile(0.99) as i64)),
                ("p999".into(), Json::int(hist.percentile(0.999) as i64)),
                ("max".into(), Json::int(hist.max as i64)),
            ]),
        ),
    ]);
    let rendered = doc.render();
    analysis::json::parse(&rendered).expect("loadgen emits valid JSON");
    eprintln!(
        "loadgen: {} clients x {} requests in {:.1}ms — {:.0} req/s, \
         p50 {}us p99 {}us p999 {}us, {} cache hits, {} shed, {} reconnects",
        opts.clients,
        opts.requests,
        elapsed.as_secs_f64() * 1e3,
        throughput,
        hist.percentile(0.50),
        hist.percentile(0.99),
        hist.percentile(0.999),
        cache_hits,
        shed,
        reconnects
    );

    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if opts.check {
        check_against_tracked(&doc, &root.join("BENCH_service.json"));
        println!("{rendered}");
        eprintln!("loadgen --check: ok");
    } else {
        std::fs::write(root.join(&opts.out), format!("{rendered}\n"))
            .or_else(|_| std::fs::write(&opts.out, format!("{rendered}\n")))
            .expect("write bench output");
        eprintln!("wrote {}", opts.out);
    }
}

/// Structural comparison against the tracked document: identity fields
/// must match and both documents must carry the full field inventory.
/// Timings and throughput are never compared — only their presence.
fn check_against_tracked(doc: &Json, tracked_path: &std::path::Path) {
    let text = std::fs::read_to_string(tracked_path)
        .unwrap_or_else(|e| panic!("tracked {} unreadable: {e}", tracked_path.display()));
    let tracked = analysis::json::parse(&text).expect("tracked BENCH_service.json is valid JSON");
    for key in ["schema_version", "bench"] {
        let a = doc.get(key).map(Json::render);
        let b = tracked.get(key).map(Json::render);
        assert_eq!(a, b, "tracked file diverges on `{key}`");
    }
    for d in [doc, &tracked] {
        for key in [
            "clients",
            "requests_total",
            "mix",
            "status",
            "cache_hits_observed",
            "throughput_rps",
            "latency_us",
        ] {
            assert!(d.get(key).is_some(), "document missing `{key}`");
        }
        let lat = d.get("latency_us").expect("latency_us");
        for key in ["p50", "p99", "p999", "max"] {
            assert!(lat.get(key).is_some(), "latency_us missing `{key}`");
        }
        let status = d.get("status").expect("status");
        assert_eq!(
            status.get("errors").and_then(Json::as_i64),
            Some(0),
            "load run must be error-free: {}",
            d.render()
        );
    }
    let tracked_clients = tracked.get("clients").and_then(Json::as_i64).unwrap_or(0);
    assert!(
        tracked_clients >= 64,
        "tracked run must cover >= 64 concurrent clients, has {tracked_clients}"
    );
}
