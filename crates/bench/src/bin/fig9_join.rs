//! Figure 9 — Join (Experiment 6, Wilos sample #30 simplified): the
//! original code fetches all rows of `wilos_user` and `role` (size ratio
//! 40:1) and combines them with nested loops in the application; the
//! rewrite runs one join query.
//!
//! Note the paper's wrinkle: "the amount of data transferred is marginally
//! more in the transformed code, because attributes of Role get replicated
//! for each row of WilosUser" — reproduced below.
//!
//! ```text
//! cargo run -p bench --release --bin fig9_join
//! ```

use bench::row;
use dbms::{Connection, CostModel};
use eqsql_core::{Extractor, ExtractorOptions};
use interp::Interp;

// The paper's Experiment 6 shape: "The original code fetches all rows of
// both tables, and combines them using nested loops in the application,
// based on a condition."
const SRC: &str = r#"
    fn userRoles() {
        users = executeQuery("SELECT * FROM wilos_user");
        roles = executeQuery("SELECT * FROM role");
        out = list();
        for (u in users) {
            for (r in roles) {
                if (u.role_id == r.id) {
                    out.add(pair(u.name, r.name));
                }
            }
        }
        return out;
    }
"#;

fn main() {
    println!("Figure 9 — Join (wilos_user : role = 40 : 1)");
    let widths = [9, 12, 12, 12, 12, 8];
    row(
        &[
            "users".into(),
            "orig ms".into(),
            "eqsql ms".into(),
            "orig bytes".into(),
            "eqsql bytes".into(),
            "speedup".into(),
        ],
        &widths,
    );
    for n in [2_000usize, 4_000, 8_000, 16_000] {
        let db = dbms::gen::gen_wilos(10, n, 20, 13);
        let program = imp::parse_and_normalize(SRC).unwrap();
        let report = Extractor::with_options(db.catalog(), ExtractorOptions::default())
            .extract_function(&program, "userRoles");
        assert!(report.changed(), "{:#?}", report.vars);
        let cost = CostModel::default();
        let mut orig = Interp::new(&program, Connection::with_cost(db.clone(), cost));
        orig.call("userRoles", vec![]).unwrap();
        let mut new = Interp::new(&report.program, Connection::with_cost(db, cost));
        new.call("userRoles", vec![]).unwrap();
        row(
            &[
                n.to_string(),
                format!("{:.2}", orig.conn.stats.sim_ms()),
                format!("{:.2}", new.conn.stats.sim_ms()),
                orig.conn.stats.bytes.to_string(),
                new.conn.stats.bytes.to_string(),
                format!("{:.1}x", orig.conn.stats.sim_us / new.conn.stats.sim_us),
            ],
            &widths,
        );
    }
    println!();
    println!("Shape: the join query is much faster (no per-row round trips; the engine");
    println!("picks the join strategy), while transferred bytes for the projected pair");
    println!("result track the original closely (paper Fig. 9).");
}
