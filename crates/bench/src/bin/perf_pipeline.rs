//! `perf_pipeline` — the tracked end-to-end performance baseline.
//!
//! Sweeps `examples/corpus/*.imp` plus the whole `workloads` crate (wilos,
//! RuBiS, RuBBoS, AcadPortal, matoso, jobportal) through the full pipeline
//! (parse → regions → D-IR → F-IR → rules → SQL → rewrite) and reports
//! per-stage wall time, allocation counts, and peak ee-DAG size. Writes
//! `BENCH_extract.json` at the repo root (see DESIGN.md "Benchmark
//! baseline" for the format and its stability promise).
//!
//! Modes:
//!
//! * default — N runs (`--runs`, default 3) over the full sweep, fastest
//!   run reported, JSON written to `--out` (default `BENCH_extract.json`).
//! * `--check` — one run over the small corpus only, JSON printed to
//!   stdout and re-parsed to prove well-formedness; exit 0 on success.
//!   Used by `ci.sh`; never gates on absolute timings.
//! * `--baseline FILE` — embed a previously recorded run (e.g. the
//!   pre-optimization numbers) under `"baseline"` and report the
//!   end-to-end speedup against it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use analysis::json::Json;
use eqsql_core::{Extractor, ExtractorOptions, StageTimes};

/// A `System` wrapper counting every allocation the sweep performs.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One program to push through the pipeline.
struct Unit {
    name: String,
    source: String,
    catalog: algebra::schema::Catalog,
}

/// Counters for one full sweep.
#[derive(Default, Clone, Copy)]
struct Sweep {
    parse_ns: u64,
    stage: StageTimes,
    total_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
    functions: u64,
    loops_rewritten: u64,
}

fn corpus_units(root: &Path) -> Vec<Unit> {
    let dir = root.join("examples/corpus");
    let schema = std::fs::read_to_string(dir.join("schema.sql")).unwrap_or_default();
    let catalog = algebra::ddl::parse_ddl(&schema).expect("corpus schema parses");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "imp"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| Unit {
            name: format!("corpus/{}", p.file_name().unwrap().to_string_lossy()),
            source: std::fs::read_to_string(&p).expect("corpus file readable"),
            catalog: catalog.clone(),
        })
        .collect()
}

fn workload_units() -> Vec<Unit> {
    let mut units = Vec::new();
    let wilos_cat = workloads::wilos::catalog();
    for s in workloads::wilos::samples() {
        units.push(Unit {
            name: format!("wilos/{}", s.label),
            source: s.source.to_string(),
            catalog: wilos_cat.clone(),
        });
    }
    for (app, servlets, cat) in [
        (
            "rubis",
            workloads::servlets::rubis(),
            workloads::servlets::rubis_catalog(),
        ),
        (
            "rubbos",
            workloads::servlets::rubbos(),
            workloads::servlets::rubbos_catalog(),
        ),
        (
            "acadportal",
            workloads::servlets::acadportal(),
            workloads::servlets::acadportal_catalog(),
        ),
    ] {
        for s in servlets {
            units.push(Unit {
                name: format!("{app}/{}", s.name),
                source: s.source,
                catalog: cat.clone(),
            });
        }
    }
    units.push(Unit {
        name: "matoso/find_max_score".into(),
        source: workloads::matoso::FIND_MAX_SCORE.to_string(),
        catalog: workloads::matoso::catalog(),
    });
    units.push(Unit {
        name: "jobportal/applicant_report".into(),
        source: workloads::jobportal::APPLICANT_REPORT.to_string(),
        catalog: workloads::jobportal::catalog(),
    });
    units
}

/// Run every unit once, accumulating per-stage counters.
fn sweep(units: &[Unit]) -> Sweep {
    let mut out = Sweep::default();
    let allocs0 = ALLOC_COUNT.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let started = Instant::now();
    for u in units {
        let parse_started = Instant::now();
        let program = imp::parse_and_normalize(&u.source)
            .unwrap_or_else(|e| panic!("{} fails to parse: {e}", u.name));
        out.parse_ns += parse_started.elapsed().as_nanos() as u64;
        out.functions += program.functions.len() as u64;
        let report = Extractor::with_options(u.catalog.clone(), ExtractorOptions::default())
            .extract_program(&program);
        out.stage.absorb(&report.stage);
        out.loops_rewritten += report.loops_rewritten as u64;
    }
    out.total_ns = started.elapsed().as_nanos() as u64;
    out.allocs = ALLOC_COUNT.load(Ordering::Relaxed) - allocs0;
    out.alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;
    out
}

fn sweep_json(s: &Sweep, n_units: usize, runs: usize) -> Json {
    Json::Obj(vec![
        ("runs".into(), Json::int(runs as i64)),
        (
            "units".into(),
            Json::Obj(vec![
                ("programs".into(), Json::int(n_units as i64)),
                ("functions".into(), Json::int(s.functions as i64)),
                (
                    "loops_rewritten".into(),
                    Json::int(s.loops_rewritten as i64),
                ),
            ]),
        ),
        (
            "stages_ns".into(),
            Json::Obj(vec![
                ("parse".into(), Json::int(s.parse_ns as i64)),
                ("desugar".into(), Json::int(s.stage.desugar_ns as i64)),
                ("dir".into(), Json::int(s.stage.dir_ns as i64)),
                ("depend".into(), Json::int(s.stage.depend_ns as i64)),
                ("rules".into(), Json::int(s.stage.rules_ns as i64)),
                ("sqlgen".into(), Json::int(s.stage.sqlgen_ns as i64)),
                ("rewrite".into(), Json::int(s.stage.rewrite_ns as i64)),
                ("total".into(), Json::int(s.total_ns as i64)),
            ]),
        ),
        (
            "allocs".into(),
            Json::Obj(vec![
                ("count".into(), Json::int(s.allocs as i64)),
                ("bytes".into(), Json::int(s.alloc_bytes as i64)),
            ]),
        ),
        (
            "nodes".into(),
            Json::Obj(vec![(
                "peak_dag".into(),
                Json::int(s.stage.peak_dag_nodes as i64),
            )]),
        ),
        (
            "rule_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::int(s.stage.rule_cache_hits as i64)),
                ("misses".into(), Json::int(s.stage.rule_cache_misses as i64)),
            ]),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut runs = 3usize;
    let mut out_path = "BENCH_extract.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs N");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(args[i].clone());
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    // The binary lives in target/…; the repo root is CARGO_MANIFEST_DIR/../..
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut units = corpus_units(&root);
    if check {
        runs = 1;
    } else {
        units.extend(workload_units());
    }

    let mut best: Option<Sweep> = None;
    for r in 0..runs {
        let s = sweep(&units);
        eprintln!(
            "run {}/{}: total {:.1} ms over {} programs",
            r + 1,
            runs,
            s.total_ns as f64 / 1e6,
            units.len()
        );
        if best.is_none() || s.total_ns < best.unwrap().total_ns {
            best = Some(s);
        }
    }
    let best = best.unwrap();

    let mut fields = vec![
        ("schema_version".into(), Json::int(1)),
        ("bench".into(), Json::str("perf_pipeline")),
    ];
    let Json::Obj(body) = sweep_json(&best, units.len(), runs) else {
        unreachable!()
    };
    fields.extend(body);
    if let Some(p) = &baseline_path {
        let text = std::fs::read_to_string(p).expect("baseline file readable");
        let doc = analysis::json::parse(&text).expect("baseline is valid JSON");
        if let Some(base_total) = doc
            .get("stages_ns")
            .and_then(|s| s.get("total"))
            .and_then(|t| t.as_i64())
        {
            let speedup = base_total as f64 / best.total_ns as f64;
            fields.push(("speedup_vs_baseline".into(), Json::Num(speedup)));
        }
        fields.push(("baseline".into(), Json::Raw(doc.render())));
    }
    let doc = Json::Obj(fields).render();

    if check {
        // Prove the emitted document parses back; print it for inspection.
        analysis::json::parse(&doc).expect("perf_pipeline emits valid JSON");
        println!("{doc}");
        eprintln!("perf_pipeline --check: ok");
    } else {
        std::fs::write(root.join(&out_path), format!("{doc}\n"))
            .or_else(|_| std::fs::write(&out_path, format!("{doc}\n")))
            .expect("write bench output");
        eprintln!("wrote {out_path}");
    }
}
