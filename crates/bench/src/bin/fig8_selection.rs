//! Figure 8 — Selection (Experiment 5, Wilos sample #6): the unfinished-
//! projects loop filters rows in Java; the transformed code pushes the
//! predicate into the query. 20% selectivity, time and data transferred
//! vs table size.
//!
//! ```text
//! cargo run -p bench --release --bin fig8_selection
//! ```

use bench::{compare, row};
use interp::RtValue;

const SRC: &str = r#"
    fn unfinished() {
        ps = executeQuery("SELECT * FROM project");
        out = list();
        for (p in ps) {
            if (p.isfinished == false) { out.add(p.id); }
        }
        return out;
    }
"#;

fn main() {
    println!("Figure 8 — Selection (20% of projects finished, loop keeps the other 80%)");
    let widths = [9, 12, 12, 12, 12, 8];
    row(
        &[
            "rows".into(),
            "orig ms".into(),
            "eqsql ms".into(),
            "orig bytes".into(),
            "eqsql bytes".into(),
            "speedup".into(),
        ],
        &widths,
    );
    for n in [10_000usize, 20_000, 40_000, 80_000, 160_000] {
        // 20% finished ⇒ the transformed query returns ~80% of rows, but
        // projected to one column.
        let db = dbms::gen::gen_wilos(n, 10, 20, 11);
        let (orig, new, report) = compare(SRC, "unfinished", &db, vec![]);
        row(
            &[
                n.to_string(),
                format!("{:.2}", orig.sim_ms()),
                format!("{:.2}", new.sim_ms()),
                orig.bytes.to_string(),
                new.bytes.to_string(),
                format!("{:.1}x", orig.sim_us / new.sim_us),
            ],
            &widths,
        );
        if n == 10_000 {
            eprintln!("  SQL: {}", report.vars[0].sql[0]);
        }
    }
    println!();
    println!("Selectivity sweep at 40k rows (paper: \"The performance gain achieved is");
    println!("larger/smaller as the selectivity of the query is less/more\"):");
    row(
        &[
            "finished%".into(),
            "orig ms".into(),
            "eqsql ms".into(),
            "orig bytes".into(),
            "eqsql bytes".into(),
            "speedup".into(),
        ],
        &widths,
    );
    for finished_pct in [95u32, 80, 50, 20, 5] {
        // `finished_pct`% finished ⇒ the loop keeps (100-finished_pct)%.
        let db = dbms::gen::gen_wilos(40_000, 10, finished_pct, 11);
        let (orig, new, _) = compare(SRC, "unfinished", &db, vec![]);
        row(
            &[
                format!("{finished_pct}%"),
                format!("{:.2}", orig.sim_ms()),
                format!("{:.2}", new.sim_ms()),
                orig.bytes.to_string(),
                new.bytes.to_string(),
                format!("{:.1}x", orig.sim_us / new.sim_us),
            ],
            &widths,
        );
    }
    println!();
    println!("Shape: transformed code runs faster AND transfers less data (paper Fig. 8);");
    println!("the gain grows as fewer rows survive the pushed predicate.");
    let _ = RtValue::int(0);
}
