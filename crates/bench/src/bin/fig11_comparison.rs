//! Figure 11 / Experiment 8 — comparison with batching and prefetching on
//! the JobPortal star schema (Figure 12): time (log scale in the paper)
//! vs number of iterations, for Original / Batch / Prefetch / EqSQL.
//!
//! Paper: "EqSQL enhances performance by upto two orders of magnitude
//! compared to the original program, and upto one order of magnitude
//! compared to other optimizations."
//!
//! ```text
//! cargo run -p bench --release --bin fig11_comparison
//! ```

use bench::{row, star_workload};
use dbms::{Connection, CostModel};
use eqsql_core::Extractor;
use interp::Interp;
use workloads::jobportal;

fn main() {
    println!("Figure 11 — Original vs Batch vs Prefetch vs EqSQL (ms, simulated)");
    let widths = [11, 12, 12, 12, 12];
    row(
        &[
            "iterations".into(),
            "Original".into(),
            "Batch".into(),
            "Prefetch".into(),
            "EqSQL".into(),
        ],
        &widths,
    );
    let program = imp::parse_and_normalize(jobportal::APPLICANT_REPORT).unwrap();
    let workload = star_workload();
    let cost = CostModel::default();
    for n in [10usize, 100, 500, 1000] {
        let db = jobportal::database(n, 23);

        let mut orig = Connection::with_cost(db.clone(), cost);
        workload.run_original(&mut orig).unwrap();

        let mut batch = Connection::with_cost(db.clone(), cost);
        workload.run_batched(&mut batch).unwrap();

        let mut prefetch = Connection::with_cost(db.clone(), cost);
        workload.run_prefetch(&mut prefetch).unwrap();

        let report = Extractor::new(db.catalog()).extract_function(&program, "applicantReport");
        assert!(report.changed(), "{:#?}", report.vars);
        let mut eqsql = Interp::new(&report.program, Connection::with_cost(db, cost));
        eqsql.call("applicantReport", vec![]).unwrap();

        row(
            &[
                n.to_string(),
                format!("{:.2}", orig.stats.sim_ms()),
                format!("{:.2}", batch.stats.sim_ms()),
                format!("{:.2}", prefetch.stats.sim_ms()),
                format!("{:.2}", eqsql.conn.stats.sim_ms()),
            ],
            &widths,
        );
    }
    println!();
    println!("Round trips at n=1000: Original ≈ 1+3n (+guarded); Batch = 1+2·4;");
    println!("Prefetch = 1 wave + guarded lookups; EqSQL = 1.");
    println!("Shape: EqSQL ≥ 10x over Batch/Prefetch and ≈ 100x+ over Original at the");
    println!("high iteration counts — the paper's Figure 11 (log-scale) ordering.");
}
