//! Figure 10 — Aggregation (Experiment 7, the Figure 2 Matoso sample):
//! "The data transferred for the optimized query is constant … In contrast,
//! data transfer for the original query increases linearly with table size."
//!
//! ```text
//! cargo run -p bench --release --bin fig10_aggregation
//! ```

use bench::row;
use dbms::{Connection, CostModel};
use eqsql_core::Extractor;
use interp::{Interp, RtValue};
use workloads::matoso;

fn main() {
    println!("Figure 10 — Aggregation (findMaxScore, Figure 2)");
    let widths = [9, 12, 12, 12, 12, 8];
    row(
        &[
            "boards".into(),
            "orig ms".into(),
            "eqsql ms".into(),
            "orig bytes".into(),
            "eqsql bytes".into(),
            "speedup".into(),
        ],
        &widths,
    );
    let program = imp::parse_and_normalize(matoso::FIND_MAX_SCORE).unwrap();
    for n in [10_000usize, 20_000, 40_000, 80_000, 160_000, 320_000] {
        let db = matoso::database(n, 17);
        let report = Extractor::new(db.catalog()).extract_function(&program, "findMaxScore");
        assert!(report.changed());
        let cost = CostModel::default();
        let args = vec![RtValue::int(1)];
        let mut orig = Interp::new(&program, Connection::with_cost(db.clone(), cost));
        let v1 = orig.call("findMaxScore", args.clone()).unwrap();
        let mut new = Interp::new(&report.program, Connection::with_cost(db, cost));
        let v2 = new.call("findMaxScore", args).unwrap();
        assert_eq!(format!("{v1}"), format!("{v2}"));
        row(
            &[
                n.to_string(),
                format!("{:.2}", orig.conn.stats.sim_ms()),
                format!("{:.2}", new.conn.stats.sim_ms()),
                orig.conn.stats.bytes.to_string(),
                new.conn.stats.bytes.to_string(),
                format!("{:.0}x", orig.conn.stats.sim_us / new.conn.stats.sim_us),
            ],
            &widths,
        );
    }
    println!();
    println!("Shape: EqSQL transfer is constant (one scalar row) while the original");
    println!("grows linearly with table size — the paper's Figure 10.");
}
