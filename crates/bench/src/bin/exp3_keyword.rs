//! Experiment 3 — keyword-search query extraction from servlets.
//!
//! Paper: "The fraction of servlets where all queries were extracted by our
//! tool was 17/17 for RuBiS, 16/16 for RuBBoS and 58/79 for AcadPortal …
//! in about 20% of the cases, the manually extracted query was less precise
//! than that extracted automatically" (it fetched more data than the form
//! prints).
//!
//! ```text
//! cargo run -p bench --release --bin exp3_keyword
//! ```

use algebra::parse::parse_sql;
use dbms::{Connection, Database};
use eqsql_core::{Extractor, ExtractorOptions};
use workloads::servlets::{self, Servlet};

fn servlet_options() -> ExtractorOptions {
    ExtractorOptions {
        rewrite_prints: true,
        ordered: false,
        ..Default::default()
    }
}

fn corpus_fraction(name: &str, list: &[Servlet], catalog: algebra::schema::Catalog) -> usize {
    let mut ok = 0;
    for s in list {
        let program = imp::parse_and_normalize(&s.source).unwrap();
        let report = Extractor::with_options(catalog.clone(), servlet_options())
            .extract_function(&program, "servlet");
        if report.changed() {
            ok += 1;
        }
    }
    println!("{name:<12} {ok}/{}", list.len());
    ok
}

fn main() {
    println!("fraction of servlets with all queries extracted:");
    corpus_fraction("RuBiS", &servlets::rubis(), servlets::rubis_catalog());
    corpus_fraction("RuBBoS", &servlets::rubbos(), servlets::rubbos_catalog());
    corpus_fraction(
        "AcadPortal",
        &servlets::acadportal(),
        servlets::acadportal_catalog(),
    );
    println!("(paper: 17/17, 16/16, 58/79)");
    println!();

    // Precision of manual vs automatic queries on AcadPortal.
    let catalog = servlets::acadportal_catalog();
    let db: Database = servlets::acadportal_database(200, 9);
    let mut with_manual = 0;
    let mut manual_less_precise = 0;
    for s in servlets::acadportal() {
        let Some(manual_sql) = &s.manual_sql else {
            continue;
        };
        let program = imp::parse_and_normalize(&s.source).unwrap();
        let report = Extractor::with_options(catalog.clone(), servlet_options())
            .extract_function(&program, "servlet");
        let Some(auto_sql) = report
            .vars
            .iter()
            .filter(|v| v.outcome.sql_extracted())
            .flat_map(|v| v.sql.iter())
            .next()
        else {
            continue;
        };
        with_manual += 1;
        let mut c1 = Connection::new(db.clone());
        let auto = parse_sql(auto_sql).unwrap();
        // Bind any parameters to a representative value.
        let n_params = auto.max_param().map_or(0, |m| m + 1);
        let args: Vec<dbms::Value> = (0..n_params).map(|_| dbms::Value::Int(1)).collect();
        c1.execute(&auto, &args).unwrap();
        let mut c2 = Connection::new(db.clone());
        let manual = parse_sql(manual_sql).unwrap();
        c2.execute(&manual, &[]).unwrap();
        if c2.stats.bytes > c1.stats.bytes {
            manual_less_precise += 1;
        }
    }
    let extractable = servlets::acadportal()
        .iter()
        .filter(|s| s.expect_extract)
        .count();
    println!(
        "AcadPortal manual-vs-automatic precision: {manual_less_precise}/{with_manual} modeled \
         manual queries fetch more data than the automatic query"
    );
    println!(
        "≈ {:.0}% of the {extractable} extractable servlets (paper: \"about 20% of the cases\")",
        100.0 * manual_less_precise as f64 / extractable as f64
    );
}
