//! Table 1 — "Comparison of time taken by QBS and EqSQL for SQL extraction"
//! over the 33 Wilos code fragments.
//!
//! Columns:
//! * `paper-QBS` — seconds reported in the paper (their 128 GB / 32-core
//!   machine running Sketch); `–` = QBS failed;
//! * `our-QBS` — our enumerative synthesis stand-in, measured (DESIGN.md §2
//!   discusses where it diverges from Sketch-based QBS);
//! * `EqSQL` — our static extraction, measured. `–` = not extractable,
//!   `X` = within technique scope but not implemented (as in the paper).
//!
//! ```text
//! cargo run -p bench --release --bin table1
//! ```

use std::time::Duration;

use eqsql_core::Extractor;
use qbs::QbsOptions;
use workloads::{wilos, Expectation};

fn main() {
    let catalog = wilos::catalog();
    println!(
        "{:<4} {:<42} {:>10} {:>12} {:>10}",
        "Sl.", "File (Line No.)", "paper-QBS", "our-QBS", "EqSQL"
    );
    // More and larger verification databases than the defaults: closer to
    // CEGIS-grade checking, and a fairer account of per-candidate cost.
    let qbs_opts = QbsOptions {
        max_candidates: 150_000,
        test_dbs: 12,
        max_rows: 24,
        timeout: Duration::from_secs(20),
        ..Default::default()
    };
    let mut eqsql_ok = 0;
    let mut qbs_ok = 0;
    let mut eqsql_total_ms = 0.0;
    for s in wilos::samples() {
        let program = imp::parse_and_normalize(s.source).unwrap();

        let report = Extractor::new(catalog.clone()).extract_function(&program, "sample");
        let eqsql_cell = if report.any_sql() {
            eqsql_ok += 1;
            let ms = report.elapsed.as_secs_f64() * 1000.0;
            eqsql_total_ms += ms;
            format!("{ms:.1}ms")
        } else if s.expect == Expectation::CouldButNot {
            "X".to_string()
        } else {
            "–".to_string()
        };

        let q = qbs::synthesize(&program, "sample", &catalog, &qbs_opts);
        let qbs_cell = match &q.sql {
            Some(_) => {
                qbs_ok += 1;
                format!("{:.0}ms", q.elapsed.as_secs_f64() * 1000.0)
            }
            None => "–".to_string(),
        };
        let paper_cell = match s.paper_qbs_seconds {
            Some(t) => format!("{t:.0}s"),
            None => "–".to_string(),
        };
        println!(
            "{:<4} {:<42} {:>10} {:>12} {:>10}",
            s.id, s.label, paper_cell, qbs_cell, eqsql_cell
        );
    }
    println!();
    println!(
        "EqSQL extracted {eqsql_ok}/33 (paper: 17/33); mean time {:.1} ms",
        eqsql_total_ms / eqsql_ok as f64
    );
    println!("our-QBS synthesized {qbs_ok}/33 (paper's Sketch-based QBS: 21/33)");
    println!();
    println!("Shape check: EqSQL extraction is milliseconds per fragment; synthesis is");
    println!("orders of magnitude slower and succeeds/fails on a different subset —");
    println!("matching Table 1's pattern (see EXPERIMENTS.md for the full comparison).");
}
