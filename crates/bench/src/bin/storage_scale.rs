//! `storage_scale` — the tracked larger-than-memory scale experiment.
//!
//! The paper's headline claim is that replacing an imperative cursor loop
//! with one extracted SQL statement wins *more* as data grows: the loop
//! transfers every row over the client/server boundary while the extracted
//! aggregate transfers one. This binary measures exactly that over the
//! paged storage engine: an `emp` table of 10⁴ / 10⁵ / 10⁶ rows is
//! streamed into B-tree pages behind a buffer pool whose frame budget is
//! far below the table size, the imperative sum loop and its extracted
//! SQL both execute through the volcano executor, and the simulated
//! round-trip/transfer costs plus buffer-pool hit rates are reported.
//! Writes `BENCH_storage.json` at the repo root.
//!
//! Modes:
//!
//! * default — all three sizes, asserts the speedup grows monotonically
//!   with the row count, JSON written to `--out`
//!   (default `BENCH_storage.json`).
//! * `--check` — the 10⁴-row size only; the emitted JSON is validated,
//!   compared structurally against the tracked `BENCH_storage.json`
//!   (same bench identity and per-size fields — never absolute timings),
//!   and printed. Used by `ci.sh`; exit 0 on success.

use std::path::PathBuf;
use std::time::Instant;

use analysis::json::Json;
use dbms::Connection;
use eqsql_core::{Extractor, ExtractorOptions};
use interp::Interp;

/// Buffer-pool frame budget: 64 frames × 4 KiB = 256 KiB resident, below
/// the smallest measured table (10⁴ rows ≈ 130 pages) and ~3 orders of
/// magnitude below the largest — every size is a larger-than-memory run.
const FRAMES: usize = 64;

/// Row counts measured in the full sweep.
const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

/// The imperative program under test: the canonical cursor-loop sum the
/// extractor rewrites to `SELECT SUM(...)` via rule T5.
const PROGRAM: &str = r#"
fn total() {
    s = 0;
    for (e in executeQuery("SELECT * FROM emp")) {
        s = s + e.salary;
    }
    return s;
}
"#;

/// One side's measurement: simulated connection costs plus wall clock.
struct Run {
    queries: u64,
    rows: u64,
    bytes: u64,
    sim_us: f64,
    wall_ms: f64,
    result: interp::RtValue,
}

fn run_side(program: &imp::ast::Program, db: &dbms::Database) -> Run {
    let started = Instant::now();
    let mut it = Interp::new(program, Connection::new(db.clone()));
    let result = it.call("total", vec![]).expect("benchmark program runs");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    Run {
        queries: it.conn.stats.queries,
        rows: it.conn.stats.rows,
        bytes: it.conn.stats.bytes,
        sim_us: it.conn.stats.sim_us,
        wall_ms,
        result,
    }
}

fn run_json(r: &Run) -> Json {
    Json::Obj(vec![
        ("queries".into(), Json::int(r.queries as i64)),
        ("rows_transferred".into(), Json::int(r.rows as i64)),
        ("bytes_transferred".into(), Json::int(r.bytes as i64)),
        ("sim_us".into(), Json::Num(r.sim_us)),
        ("wall_ms".into(), Json::Num(r.wall_ms)),
    ])
}

/// Measure one table size end to end. Returns the per-size JSON record and
/// the simulated speedup.
fn measure(rows: usize) -> (Json, f64) {
    let store = storage::Store::temp(FRAMES).expect("create temp store");
    let db = dbms::gen::gen_emp_paged(rows, 42, store);
    let st = db.store().expect("paged database has a store");
    let pages = st.page_count();
    assert!(
        (FRAMES as u32) < pages,
        "frame budget ({FRAMES} frames) must stay below the table \
         ({pages} pages) for a larger-than-memory run"
    );

    let program = imp::parse_and_normalize(PROGRAM).expect("benchmark program parses");
    let report = Extractor::with_options(db.catalog(), ExtractorOptions::default())
        .extract_function(&program, "total");
    assert_eq!(report.loops_rewritten, 1, "sum loop must extract");

    let imperative = run_side(&program, &db);
    let extracted = run_side(&report.program, &db);
    assert!(
        interp::value::loose_eq(&imperative.result, &extracted.result),
        "imperative and extracted results must agree: {} vs {}",
        imperative.result,
        extracted.result
    );

    let pool = st.pool_stats();
    let speedup = imperative.sim_us / extracted.sim_us;
    let record = Json::Obj(vec![
        ("rows".into(), Json::int(rows as i64)),
        ("pages".into(), Json::int(pages as i64)),
        ("frames".into(), Json::int(FRAMES as i64)),
        ("imperative".into(), run_json(&imperative)),
        ("extracted".into(), run_json(&extracted)),
        ("speedup_sim".into(), Json::Num(speedup)),
        (
            "bufpool".into(),
            Json::Obj(vec![
                ("hits".into(), Json::int(pool.hits as i64)),
                ("misses".into(), Json::int(pool.misses as i64)),
                ("evictions".into(), Json::int(pool.evictions as i64)),
                ("hit_rate".into(), Json::Num(pool.hit_rate())),
            ]),
        ),
    ]);
    eprintln!(
        "rows {rows}: {pages} pages, speedup {speedup:.1}x, \
         bufpool hit rate {:.3} ({} evictions)",
        pool.hit_rate(),
        pool.evictions
    );
    (record, speedup)
}

/// Structural comparison of a freshly generated document against the
/// tracked one: identity fields must match and every size record must
/// carry the same field set. Timings are never compared.
fn check_against_tracked(doc: &Json, tracked_path: &std::path::Path) {
    let text = std::fs::read_to_string(tracked_path)
        .unwrap_or_else(|e| panic!("tracked {} unreadable: {e}", tracked_path.display()));
    let tracked = analysis::json::parse(&text).expect("tracked BENCH_storage.json is valid JSON");
    for key in ["schema_version", "bench", "page_size", "frames"] {
        let a = doc.get(key).map(Json::render);
        let b = tracked.get(key).map(Json::render);
        assert_eq!(a, b, "tracked file diverges on `{key}`");
    }
    let sizes = tracked
        .get("sizes")
        .and_then(Json::as_array)
        .expect("tracked file has a sizes array");
    assert!(!sizes.is_empty(), "tracked file has no size records");
    let fresh = doc.get("sizes").and_then(Json::as_array).unwrap();
    for rec in sizes.iter().chain(fresh) {
        for key in [
            "rows",
            "pages",
            "frames",
            "imperative",
            "extracted",
            "speedup_sim",
            "bufpool",
        ] {
            assert!(
                rec.get(key).is_some(),
                "size record missing `{key}`: {}",
                rec.render()
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out_path = "BENCH_storage.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let sizes: &[usize] = if check { &SIZES[..1] } else { &SIZES };
    let mut records = Vec::new();
    let mut speedups = Vec::new();
    for &n in sizes {
        let (rec, speedup) = measure(n);
        records.push(rec);
        speedups.push(speedup);
    }
    if !check {
        for w in speedups.windows(2) {
            assert!(
                w[1] > w[0],
                "extraction speedup must grow with data size: {speedups:?}"
            );
        }
    }

    let doc = Json::Obj(vec![
        ("schema_version".into(), Json::int(1)),
        ("bench".into(), Json::str("storage_scale")),
        (
            "page_size".into(),
            Json::int(storage::page::PAGE_SIZE as i64),
        ),
        ("frames".into(), Json::int(FRAMES as i64)),
        ("sizes".into(), Json::Arr(records)),
    ]);
    let rendered = doc.render();
    analysis::json::parse(&rendered).expect("storage_scale emits valid JSON");

    // The binary lives in target/…; the repo root is CARGO_MANIFEST_DIR/../..
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if check {
        check_against_tracked(&doc, &root.join("BENCH_storage.json"));
        println!("{rendered}");
        eprintln!("storage_scale --check: ok");
    } else {
        std::fs::write(root.join(&out_path), format!("{rendered}\n"))
            .or_else(|_| std::fs::write(&out_path, format!("{rendered}\n")))
            .expect("write bench output");
        eprintln!("wrote {out_path}");
    }
}
