//! Experiment 2 — applicability of batching, prefetching, and EqSQL on the
//! 33 Wilos fragments.
//!
//! Paper: "batching is applicable in 7/33 cases, whereas EqSQL is
//! applicable in 24/33 cases … Prefetching is possible in all cases we
//! examined."
//!
//! ```text
//! cargo run -p bench --release --bin exp2_applicability
//! ```

use baselines::{batching_applicable, prefetch_applicable};
use workloads::{wilos, Expectation};

fn main() {
    let mut batch = 0;
    let mut prefetch = 0;
    let mut eqsql = 0;
    let mut both = 0;
    println!(
        "{:<4} {:<42} {:>8} {:>9} {:>6}",
        "Sl.", "File (Line No.)", "Batch", "Prefetch", "EqSQL"
    );
    for s in wilos::samples() {
        let p = imp::parse_and_normalize(s.source).unwrap();
        let b = batching_applicable(&p, "sample");
        let f = prefetch_applicable(&p, "sample");
        let e = matches!(s.expect, Expectation::Extracts | Expectation::CouldButNot);
        batch += b as usize;
        prefetch += f as usize;
        eqsql += e as usize;
        both += (b && e) as usize;
        let mark = |x: bool| if x { "yes" } else { "-" };
        println!(
            "{:<4} {:<42} {:>8} {:>9} {:>6}",
            s.id,
            s.label,
            mark(b),
            mark(f),
            mark(e)
        );
    }
    println!();
    println!("batching applicable:    {batch}/33   (paper: 7/33)");
    println!("prefetching applicable: {prefetch}/33  (paper: all cases with queries)");
    println!("EqSQL applicable:       {eqsql}/33  (paper: 24/33)");
    println!("both batching & EqSQL:  {both}/33   (paper: 4 — EqSQL performs ≥ batching there)");
}
