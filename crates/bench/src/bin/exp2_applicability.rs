//! Experiment 2 — applicability of batching, prefetching, and EqSQL on the
//! 33 Wilos fragments.
//!
//! Paper: "batching is applicable in 7/33 cases, whereas EqSQL is
//! applicable in 24/33 cases … Prefetching is possible in all cases we
//! examined."
//!
//! ```text
//! cargo run -p bench --release --bin exp2_applicability [-- --jobs N]
//! ```
//!
//! Per-sample analyses run on the service scheduler; `parallel_map` returns
//! results in input order, so the table is byte-identical for any `--jobs`.

use baselines::{batching_applicable, prefetch_applicable};
use workloads::{wilos, Expectation};

fn parse_jobs() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                if n > 0 {
                    return n;
                }
            }
            eprintln!("exp2_applicability: --jobs expects a positive integer");
            std::process::exit(2);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            match v.parse() {
                Ok(n) if n > 0 => return n,
                _ => {
                    eprintln!("exp2_applicability: --jobs expects a positive integer");
                    std::process::exit(2);
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

fn main() {
    let jobs = parse_jobs();
    let rows = service::parallel_map(wilos::samples(), jobs, |s| {
        let p = imp::parse_and_normalize(s.source).unwrap();
        let b = batching_applicable(&p, "sample");
        let f = prefetch_applicable(&p, "sample");
        let e = matches!(s.expect, Expectation::Extracts | Expectation::CouldButNot);
        (s, b, f, e)
    });

    let mut batch = 0;
    let mut prefetch = 0;
    let mut eqsql = 0;
    let mut both = 0;
    println!(
        "{:<4} {:<42} {:>8} {:>9} {:>6}",
        "Sl.", "File (Line No.)", "Batch", "Prefetch", "EqSQL"
    );
    for (s, b, f, e) in rows {
        batch += b as usize;
        prefetch += f as usize;
        eqsql += e as usize;
        both += (b && e) as usize;
        let mark = |x: bool| if x { "yes" } else { "-" };
        println!(
            "{:<4} {:<42} {:>8} {:>9} {:>6}",
            s.id,
            s.label,
            mark(b),
            mark(f),
            mark(e)
        );
    }
    println!();
    println!("batching applicable:    {batch}/33   (paper: 7/33)");
    println!("prefetching applicable: {prefetch}/33  (paper: all cases with queries)");
    println!("EqSQL applicable:       {eqsql}/33  (paper: 24/33)");
    println!("both batching & EqSQL:  {both}/33   (paper: 4 — EqSQL performs ≥ batching there)");
}
