//! `bench` — experiment harnesses regenerating every table and figure of
//! the paper's evaluation (Sec. 7). See DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Binaries (each prints the corresponding table/series):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — per-sample extraction time, QBS vs EqSQL |
//! | `exp2_applicability` | Experiment 2 — applicability counts |
//! | `exp3_keyword` | Experiment 3 — keyword-search extraction fractions |
//! | `fig8_selection` | Figure 8 — selection push-down |
//! | `fig9_join` | Figure 9 — join identification |
//! | `fig10_aggregation` | Figure 10 — aggregation |
//! | `fig11_comparison` | Figure 11 — Original/Batch/Prefetch/EqSQL |

use algebra::parse::parse_sql;
use baselines::{InnerLookup, StarWorkload};
use dbms::{Connection, CostModel, Database, Stats, Value};
use eqsql_core::{ExtractionReport, Extractor, ExtractorOptions};
use interp::{Interp, RtValue};

/// Run a function and return its connection statistics.
pub fn run_stats(
    program: &imp::ast::Program,
    fname: &str,
    db: &Database,
    args: Vec<RtValue>,
    cost: CostModel,
) -> Stats {
    let mut i = Interp::new(program, Connection::with_cost(db.clone(), cost));
    i.call(fname, args).expect("program runs");
    i.conn.stats
}

/// Extract a function, panicking with diagnostics when no rewrite happened.
pub fn extract_or_die(
    program: &imp::ast::Program,
    fname: &str,
    catalog: algebra::schema::Catalog,
    opts: ExtractorOptions,
) -> ExtractionReport {
    let report = Extractor::with_options(catalog, opts).extract_function(program, fname);
    assert!(
        report.changed(),
        "extraction must rewrite {fname}: {:#?}",
        report.vars
    );
    report
}

/// Original vs EqSQL stats for one program over one database.
pub fn compare(
    src: &str,
    fname: &str,
    db: &Database,
    args: Vec<RtValue>,
) -> (Stats, Stats, ExtractionReport) {
    let program = imp::parse_and_normalize(src).unwrap();
    let report = extract_or_die(&program, fname, db.catalog(), ExtractorOptions::default());
    let cost = CostModel::default();
    let orig = run_stats(&program, fname, db, args.clone(), cost);
    let new = run_stats(&report.program, fname, db, args, cost);
    (orig, new, report)
}

/// Build the Figure 11 star workload from the `workloads` spec.
pub fn star_workload() -> StarWorkload {
    let spec = workloads::jobportal::star_workload();
    StarWorkload {
        outer: parse_sql(&spec.outer_sql).unwrap(),
        inners: spec
            .inners
            .iter()
            .map(|(sql, guard)| InnerLookup {
                query: parse_sql(sql).unwrap(),
                outer_col: "applicant_id".into(),
                condition: guard.map(|(c, v)| (c.to_string(), Value::Str(v.to_string()))),
            })
            .collect(),
    }
}

/// Pretty milliseconds.
pub fn ms(stats: &Stats) -> String {
    format!("{:9.2}", stats.sim_ms())
}

/// A fixed-width table row printer.
pub fn row(cols: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_runs_and_improves() {
        let src = r#"
            fn total() {
                rows = executeQuery("SELECT * FROM emp");
                s = 0;
                for (e in rows) { s = s + e.salary; }
                return s;
            }
        "#;
        let db = dbms::gen::gen_emp(500, 3);
        let (orig, new, _) = compare(src, "total", &db, vec![]);
        assert!(new.bytes < orig.bytes);
        assert!(new.sim_us < orig.sim_us);
    }

    #[test]
    fn star_workload_builds() {
        let w = star_workload();
        assert_eq!(w.inners.len(), 4);
        assert!(w.inners[3].condition.is_some());
    }
}
