//! Criterion benchmarks backing Figures 8–11: engine-level execution of the
//! original access pattern vs the extracted query (wall-clock complement to
//! the simulated-cost series printed by the `figN_*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbms::{Connection, CostModel};
use eqsql_core::Extractor;
use interp::{Interp, RtValue};
use std::time::Duration;
use workloads::{jobportal, matoso};

fn fig10_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_aggregation");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let program = imp::parse_and_normalize(matoso::FIND_MAX_SCORE).unwrap();
    for n in [1_000usize, 10_000] {
        let db = matoso::database(n, 3);
        let report = Extractor::new(db.catalog()).extract_function(&program, "findMaxScore");
        g.bench_with_input(BenchmarkId::new("original", n), &n, |b, _| {
            b.iter(|| {
                let mut i = Interp::new(
                    &program,
                    Connection::with_cost(db.clone(), CostModel::default()),
                );
                i.call("findMaxScore", vec![RtValue::int(1)]).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("eqsql", n), &n, |b, _| {
            b.iter(|| {
                let mut i = Interp::new(
                    &report.program,
                    Connection::with_cost(db.clone(), CostModel::default()),
                );
                i.call("findMaxScore", vec![RtValue::int(1)]).unwrap()
            })
        });
    }
    g.finish();
}

fn fig11_star_schema(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_star_schema");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let program = imp::parse_and_normalize(jobportal::APPLICANT_REPORT).unwrap();
    let workload = bench::star_workload();
    let n = 200usize;
    let db = jobportal::database(n, 5);
    let report = Extractor::new(db.catalog()).extract_function(&program, "applicantReport");
    g.bench_function("original", |b| {
        b.iter(|| {
            let mut conn = Connection::with_cost(db.clone(), CostModel::default());
            workload.run_original(&mut conn).unwrap()
        })
    });
    g.bench_function("batch", |b| {
        b.iter(|| {
            let mut conn = Connection::with_cost(db.clone(), CostModel::default());
            workload.run_batched(&mut conn).unwrap()
        })
    });
    g.bench_function("prefetch", |b| {
        b.iter(|| {
            let mut conn = Connection::with_cost(db.clone(), CostModel::default());
            workload.run_prefetch(&mut conn).unwrap()
        })
    });
    g.bench_function("eqsql", |b| {
        b.iter(|| {
            let mut i = Interp::new(
                &report.program,
                Connection::with_cost(db.clone(), CostModel::default()),
            );
            i.call("applicantReport", vec![]).unwrap()
        })
    });
    g.finish();
}

fn fig8_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_selection");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let src = r#"
        fn unfinished() {
            ps = executeQuery("SELECT * FROM project");
            out = list();
            for (p in ps) {
                if (p.isfinished == false) { out.add(p.id); }
            }
            return out;
        }
    "#;
    let program = imp::parse_and_normalize(src).unwrap();
    let db = dbms::gen::gen_wilos(20_000, 10, 20, 7);
    let report = Extractor::new(db.catalog()).extract_function(&program, "unfinished");
    g.bench_function("original", |b| {
        b.iter(|| {
            let mut i = Interp::new(
                &program,
                Connection::with_cost(db.clone(), CostModel::default()),
            );
            i.call("unfinished", vec![]).unwrap()
        })
    });
    g.bench_function("eqsql", |b| {
        b.iter(|| {
            let mut i = Interp::new(
                &report.program,
                Connection::with_cost(db.clone(), CostModel::default()),
            );
            i.call("unfinished", vec![]).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig8_selection,
    fig10_aggregation,
    fig11_star_schema
);
criterion_main!(benches);
