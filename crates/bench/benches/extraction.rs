//! Criterion benchmarks for SQL extraction time (the EqSQL column of
//! Table 1): how long the static analysis takes per fragment pattern, and
//! one synthesis data point for the cost asymmetry.

use criterion::{criterion_group, criterion_main, Criterion};
use eqsql_core::Extractor;
use std::time::Duration;
use workloads::wilos;

fn bench_extraction(c: &mut Criterion) {
    let catalog = wilos::catalog();
    let mut g = c.benchmark_group("table1_extraction");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    // Representative rows of Table 1: selection (#6), projection (#8),
    // count (#9), exists (#10), pair projection (#21), join (#24),
    // group-by (#27).
    for id in [6usize, 8, 9, 10, 21, 24, 27] {
        let s = wilos::samples().into_iter().find(|s| s.id == id).unwrap();
        let program = imp::parse_and_normalize(s.source).unwrap();
        g.bench_function(format!("sample_{id:02}_{}", short(s.category)), |b| {
            b.iter(|| {
                let report = Extractor::new(catalog.clone()).extract_function(&program, "sample");
                assert!(report.any_sql());
                report
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("qbs_synthesis");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    // One synthesis point: the selection sample. Even with a warm start the
    // enumerative search is orders of magnitude above static extraction.
    let s = wilos::samples().into_iter().find(|s| s.id == 6).unwrap();
    let program = imp::parse_and_normalize(s.source).unwrap();
    g.bench_function("sample_06_selection", |b| {
        b.iter(|| {
            let r = qbs::synthesize(
                &program,
                "sample",
                &catalog,
                &qbs::QbsOptions {
                    max_candidates: 50_000,
                    ..Default::default()
                },
            );
            assert!(r.sql.is_some());
            r
        })
    });
    g.finish();
}

fn short(category: &str) -> String {
    category
        .split_whitespace()
        .next()
        .unwrap_or("x")
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect()
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
