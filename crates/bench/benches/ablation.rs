//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//!
//! * **hash-consing** — ee-DAG sharing vs the worst case of exponential
//!   expression duplication (long `max` chains re-reading the accumulator);
//! * **predicate push-down (T2)** — executing the pushed σ vs fetching the
//!   whole table and discarding client-side;
//! * **slice-restricted DDG** — dependence-precondition checking cost as
//!   the loop body grows, with and without slicing.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Duration;

use analysis::ddg::Ddg;
use analysis::slice::slice_for_var;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eqsql_core::dir::build_function_dir;
use eqsql_core::Extractor;

/// A deep chain of max() updates — each statement reads the previous value,
/// so a tree representation doubles while the DAG shares.
fn chain_program(depth: usize) -> String {
    let mut body = String::from("x = a + b;\n");
    for _ in 0..depth {
        body.push_str("x = max(x + x, x);\n");
    }
    format!("fn f(a, b) {{ {body} return x; }}")
}

fn hash_consing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hash_consing");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let catalog = algebra::schema::Catalog::new();
    for depth in [8usize, 16, 32] {
        let src = chain_program(depth);
        let program = imp::parse_and_normalize(&src).unwrap();
        g.bench_with_input(BenchmarkId::new("dir_build", depth), &depth, |b, _| {
            b.iter(|| {
                let d = build_function_dir(&program, &catalog, "f").unwrap();
                // Hash-consing keeps the DAG linear in the source size; a
                // tree would have 2^depth nodes.
                assert!(d.dag.len() < 16 * depth + 16, "DAG must stay linear");
                d.dag.len()
            })
        });
    }
    g.finish();
}

fn predicate_pushdown(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_predicate_pushdown");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let db = dbms::gen::gen_emp(50_000, 9);
    // With T2: the extracted program — σ evaluated inside the engine,
    // only matching names cross the client boundary.
    let pushed_src = r#"
        fn f() {
            return executeQuery("SELECT name FROM emp WHERE (salary > 150000)");
        }
    "#;
    // Without T2: the original program — full fetch, client-side filter
    // in the application (interpreted, as application code is).
    let unpushed_src = r#"
        fn f() {
            rows = executeQuery("SELECT * FROM emp");
            out = list();
            for (e in rows) {
                if (e.salary > 150000) { out.add(e.name); }
            }
            return out;
        }
    "#;
    let pushed = imp::parse_and_normalize(pushed_src).unwrap();
    let unpushed = imp::parse_and_normalize(unpushed_src).unwrap();
    g.bench_function("with_T2_pushdown", |b| {
        b.iter(|| {
            let mut i = interp::Interp::new(
                &pushed,
                dbms::Connection::with_cost(db.clone(), dbms::CostModel::default()),
            );
            i.call("f", vec![]).unwrap()
        })
    });
    g.bench_function("without_pushdown_client_filter", |b| {
        b.iter(|| {
            let mut i = interp::Interp::new(
                &unpushed,
                dbms::Connection::with_cost(db.clone(), dbms::CostModel::default()),
            );
            i.call("f", vec![]).unwrap()
        })
    });
    g.finish();
}

/// A loop body with `n` independent accumulator statements.
fn wide_loop_body(n: usize) -> String {
    let mut body = String::new();
    for i in 0..n {
        let _ = writeln!(body, "v{i} = v{i} + t.salary;");
    }
    format!(
        r#"fn f() {{ q = executeQuery("SELECT * FROM emp"); for (t in q) {{ {body} }} return v0; }}"#
    )
}

fn ddg_slicing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ddg_slicing");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for n in [10usize, 40] {
        let src = wide_loop_body(n);
        let program = imp::parse_and_normalize(&src).unwrap();
        let f = program.function("f").unwrap();
        let body = match &f.body.stmts[1].kind {
            imp::ast::StmtKind::ForEach { body, .. } => body.clone(),
            _ => unreachable!(),
        };
        g.bench_with_input(BenchmarkId::new("slice_restricted", n), &n, |b, _| {
            b.iter(|| {
                let ddg = Ddg::build(&body, "t", &BTreeSet::new());
                // Per-variable: check lcfd edges only within the slice.
                let s = slice_for_var(&ddg, "v0");
                ddg.lcfd_within(&s).len()
            })
        });
        g.bench_with_input(BenchmarkId::new("whole_body", n), &n, |b, _| {
            b.iter(|| {
                let ddg = Ddg::build(&body, "t", &BTreeSet::new());
                // Without slicing every edge must be inspected per variable.
                eqsql_core::fir::whole_body_lcfd_count(&ddg)
            })
        });
    }
    g.finish();
}

fn end_to_end_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_extraction_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let db = dbms::gen::gen_emp(10, 1);
    for n in [2usize, 8, 24] {
        let src = wide_loop_body(n);
        let program = imp::parse_and_normalize(&src).unwrap();
        g.bench_with_input(BenchmarkId::new("extract_n_vars", n), &n, |b, _| {
            b.iter(|| Extractor::new(db.catalog()).extract_function(&program, "f"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    hash_consing,
    predicate_pushdown,
    ddg_slicing,
    end_to_end_scaling
);
criterion_main!(benches);
