//! DDL parsing: `CREATE TABLE` statements into [`TableSchema`]s.
//!
//! Used by the CLI to load a schema file, so downstream users can point the
//! extractor at their real schema dumps. Supported grammar:
//!
//! ```sql
//! CREATE TABLE name (
//!     col  INT | INTEGER | BIGINT | DOUBLE | FLOAT | REAL
//!        | TEXT | VARCHAR(n) | CHAR(n) | BOOLEAN | BOOL
//!          [PRIMARY KEY] [NULL | NOT NULL],
//!     …,
//!     [PRIMARY KEY (col [, col]*)]
//! );
//! ```
//!
//! Statements are `;`-separated; `--` line comments are skipped.

use crate::parse::SqlError;
use crate::schema::{Catalog, ColumnDef, SqlType, TableSchema};

/// Parse a DDL script into a catalog.
pub fn parse_ddl(input: &str) -> Result<Catalog, SqlError> {
    let mut catalog = Catalog::new();
    for (offset, stmt) in split_statements(input) {
        let trimmed = stmt.trim();
        if trimmed.is_empty() {
            continue;
        }
        let schema = parse_create_table(trimmed).map_err(|mut e| {
            e.offset += offset;
            e
        })?;
        catalog.add(schema);
    }
    Ok(catalog)
}

/// Split on `;`, respecting quoted strings and stripping `--` comments.
fn split_statements(input: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut chars = input.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            '-' if !in_str && matches!(chars.peek(), Some((_, '-'))) => {
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        break;
                    }
                }
                cur.push(' ');
            }
            ';' if !in_str => {
                out.push((start, std::mem::take(&mut cur)));
                start = i + 1;
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push((start, cur));
    }
    out
}

fn err(message: impl Into<String>, offset: usize) -> SqlError {
    SqlError {
        message: message.into(),
        offset,
    }
}

fn parse_create_table(stmt: &str) -> Result<TableSchema, SqlError> {
    let lower = stmt.to_ascii_lowercase();
    let rest = lower
        .trim_start()
        .strip_prefix("create")
        .and_then(|r| r.trim_start().strip_prefix("table"))
        .ok_or_else(|| err("expected CREATE TABLE", 0))?;
    let open = stmt.find('(').ok_or_else(|| err("expected '('", 0))?;
    let close = stmt
        .rfind(')')
        .ok_or_else(|| err("expected ')'", stmt.len()))?;
    let name_region = rest.trim();
    let name: String = name_region
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return Err(err("missing table name", 0));
    }
    let body = &stmt[open + 1..close];

    let mut columns = Vec::new();
    let mut key: Vec<String> = Vec::new();
    for part in split_top_level_commas(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let pl = part.to_ascii_lowercase();
        if let Some(cols) = pl.strip_prefix("primary key") {
            let cols = cols.trim().trim_start_matches('(').trim_end_matches(')');
            key = cols
                .split(',')
                .map(|c| c.trim().to_ascii_lowercase())
                .collect();
            continue;
        }
        let mut tokens = part.split_whitespace();
        let col_name = tokens
            .next()
            .ok_or_else(|| err("missing column name", 0))?
            .to_ascii_lowercase();
        let ty_raw = tokens
            .next()
            .ok_or_else(|| err(format!("missing type for column {col_name}"), 0))?
            .to_ascii_lowercase();
        let ty_word: String = ty_raw
            .chars()
            .take_while(|c| c.is_ascii_alphabetic())
            .collect();
        let ty = match ty_word.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "serial" => SqlType::Int,
            "double" | "float" | "real" | "numeric" | "decimal" => SqlType::Double,
            "text" | "varchar" | "char" | "string" => SqlType::Text,
            "boolean" | "bool" => SqlType::Bool,
            other => return Err(err(format!("unknown type {other} for {col_name}"), 0)),
        };
        let rest: String = tokens.collect::<Vec<_>>().join(" ").to_ascii_lowercase();
        if rest.contains("primary key") {
            key.push(col_name.clone());
        }
        // Nullability must be opted into: only an explicit `NULL` modifier
        // (without `NOT NULL` / `PRIMARY KEY`) marks the column nullable,
        // so legacy schema dumps keep the plain (non-NULL-guarded)
        // extraction translations.
        let nullable = rest.split_whitespace().any(|t| t == "null")
            && !rest.contains("not null")
            && !rest.contains("primary key");
        columns.push(ColumnDef {
            name: col_name,
            ty,
            nullable,
        });
    }
    Ok(TableSchema {
        name: name.to_ascii_lowercase(),
        columns,
        key,
    })
}

fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut last = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[last..i]);
                last = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[last..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_table() {
        let c = parse_ddl(
            "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, salary INT, active BOOLEAN);",
        )
        .unwrap();
        let t = c.get("emp").unwrap();
        assert_eq!(t.columns.len(), 4);
        assert_eq!(t.key, vec!["id"]);
        assert_eq!(t.columns[1].ty, SqlType::Text);
        assert_eq!(t.columns[3].ty, SqlType::Bool);
    }

    #[test]
    fn parses_varchar_and_table_level_key() {
        let c =
            parse_ddl("CREATE TABLE u (a VARCHAR(64), b INTEGER, c DOUBLE, PRIMARY KEY (a, b));")
                .unwrap();
        let t = c.get("u").unwrap();
        assert_eq!(t.key, vec!["a", "b"]);
        assert_eq!(t.columns[0].ty, SqlType::Text);
        assert_eq!(t.columns[2].ty, SqlType::Double);
    }

    #[test]
    fn multiple_statements_and_comments() {
        let c = parse_ddl(
            "-- the emp table\nCREATE TABLE a (x INT);\n\nCREATE TABLE b (y TEXT); -- done",
        )
        .unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn case_insensitive_and_lowercased() {
        let c = parse_ddl("create table MixedCase (Id INT primary key)").unwrap();
        assert!(c.get("mixedcase").is_some());
        assert_eq!(c.get("mixedcase").unwrap().key, vec!["id"]);
    }

    #[test]
    fn nullability_is_opt_in() {
        let c =
            parse_ddl("CREATE TABLE t (id INT PRIMARY KEY, a INT NULL, b INT NOT NULL, c INT);")
                .unwrap();
        let t = c.get("t").unwrap();
        assert!(!t.column_nullable("id"));
        assert!(t.column_nullable("a"));
        assert!(!t.column_nullable("b"));
        assert!(!t.column_nullable("c"), "unannotated columns stay NOT NULL");
    }

    #[test]
    fn unknown_type_is_error() {
        assert!(parse_ddl("CREATE TABLE t (x BLOB)").is_err());
    }

    #[test]
    fn missing_paren_is_error() {
        assert!(parse_ddl("CREATE TABLE t x INT").is_err());
    }
}
