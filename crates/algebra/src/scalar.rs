//! Scalar expressions: the row-level expression language of the algebra.
//!
//! Scalars appear in selection predicates, projection lists, join conditions,
//! sort keys and aggregate arguments. The same representation is rendered to
//! SQL by [`crate::render`] and evaluated over rows by the `dbms` crate.
//!
//! Floats are stored by their bit pattern (see [`Lit::F64`] / [`F64Bits`]) so
//! that scalar expressions are `Eq + Hash` and can be hash-consed into the
//! ee-DAG (paper Sec. 3.3: nodes are looked up by a composite id in a hash
//! table).

use std::fmt;

use crate::ra::RaExpr;

/// A literal constant value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lit {
    /// SQL `NULL`.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// 64-bit integer literal.
    Int(i64),
    /// Double-precision float, stored as raw bits for `Eq`/`Hash`.
    F64(F64Bits),
    /// String literal.
    Str(String),
}

impl Lit {
    /// Construct a float literal from an `f64`.
    pub fn float(v: f64) -> Self {
        Lit::F64(F64Bits::from(v))
    }

    /// True if this literal is SQL `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Lit::Null)
    }
}

/// An `f64` wrapped by bit pattern so it can implement `Eq` and `Hash`.
///
/// NaNs with different payloads compare unequal, which is acceptable for
/// hash-consing (it only costs a duplicate node, never a wrong merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct F64Bits(u64);

impl From<f64> for F64Bits {
    fn from(v: f64) -> Self {
        F64Bits(v.to_bits())
    }
}

impl F64Bits {
    /// Recover the `f64` value.
    pub fn get(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Null => write!(f, "NULL"),
            Lit::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Lit::Int(i) => write!(f, "{i}"),
            Lit::F64(v) => write!(f, "{}", v.get()),
            Lit::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// A reference to a column of some relation in scope.
///
/// `qualifier` is a relation alias (e.g. `b` in `FROM board AS b`); it is
/// optional when the column name is unambiguous. During correlation
/// (`OUTER APPLY`, Rule T7) inner expressions refer to outer columns with
/// ordinary `ColRef`s whose qualifier names the outer relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Optional relation alias qualifying the column.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// An unqualified column reference.
    pub fn new(column: impl Into<String>) -> Self {
        ColRef {
            qualifier: None,
            column: column.into(),
        }
    }

    /// A qualified column reference `qualifier.column`.
    pub fn qualified(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Binary operators available in scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition (`+`), also string concatenation is [`ScalarFunc::Concat`].
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`).
    Div,
    /// Modulo (`%`).
    Mod,
    /// Equality (`=`).
    Eq,
    /// Inequality (`<>`).
    Ne,
    /// Less-than (`<`).
    Lt,
    /// Less-or-equal (`<=`).
    Le,
    /// Greater-than (`>`).
    Gt,
    /// Greater-or-equal (`>=`).
    Ge,
    /// Logical conjunction (`AND`).
    And,
    /// Logical disjunction (`OR`).
    Or,
}

impl BinOp {
    /// True for comparison operators returning a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// The SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// The mirrored comparison: `a OP b` ⇔ `b (OP.flip()) a`.
    ///
    /// Used by the D-IR normalization of `if (v OP expr)` min/max patterns
    /// (paper Sec. 4.2, last paragraph).
    pub fn flip(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Eq,
            BinOp::Ne => BinOp::Ne,
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
    /// `IS NULL` test.
    IsNull,
    /// `IS NOT NULL` test.
    IsNotNull,
}

/// Builtin scalar functions understood by the renderer and evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarFunc {
    /// Maximum of its arguments (`GREATEST` in PostgreSQL/MySQL).
    Greatest,
    /// Minimum of its arguments (`LEAST`).
    Least,
    /// Absolute value.
    Abs,
    /// String concatenation.
    Concat,
    /// Lower-case a string.
    Lower,
    /// Upper-case a string.
    Upper,
    /// String length.
    Length,
    /// Null coalescing (`COALESCE`).
    Coalesce,
}

impl ScalarFunc {
    /// Canonical SQL name (dialect differences handled in `render`).
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Greatest => "GREATEST",
            ScalarFunc::Least => "LEAST",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Concat => "CONCAT",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Length => "LENGTH",
            ScalarFunc::Coalesce => "COALESCE",
        }
    }
}

/// A scalar (row-level) expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// Literal constant.
    Lit(Lit),
    /// Column reference.
    Col(ColRef),
    /// Positional query parameter (the `i`-th `?` of the source query).
    ///
    /// In extracted queries, parameters are bound to *program-input
    /// expressions* resolved by the D-IR (paper Sec. 1, "Enhancing
    /// applicability of existing techniques").
    Param(usize),
    /// Binary operation.
    Bin(BinOp, Box<Scalar>, Box<Scalar>),
    /// Unary operation.
    Un(UnOp, Box<Scalar>),
    /// Builtin scalar function call.
    Func(ScalarFunc, Vec<Scalar>),
    /// `CASE WHEN c1 THEN v1 [WHEN …] ELSE e END`.
    Case {
        /// `(condition, value)` arms, evaluated in order.
        arms: Vec<(Scalar, Scalar)>,
        /// The `ELSE` value.
        otherwise: Box<Scalar>,
    },
    /// `EXISTS (subquery)` — the subquery may be correlated.
    Exists(Box<RaExpr>),
    /// A scalar subquery returning a single value (first column of the
    /// first row, `NULL` when empty).
    Subquery(Box<RaExpr>),
}

impl Scalar {
    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Self {
        Scalar::Lit(Lit::Int(v))
    }

    /// Shorthand for a string literal.
    pub fn str(v: impl Into<String>) -> Self {
        Scalar::Lit(Lit::Str(v.into()))
    }

    /// Shorthand for a boolean literal.
    pub fn bool(v: bool) -> Self {
        Scalar::Lit(Lit::Bool(v))
    }

    /// Shorthand for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Self {
        Scalar::Col(ColRef::new(name))
    }

    /// Shorthand for a qualified column reference.
    pub fn qcol(q: impl Into<String>, name: impl Into<String>) -> Self {
        Scalar::Col(ColRef::qualified(q, name))
    }

    /// Build `self AND other`, simplifying `TRUE` operands.
    pub fn and(self, other: Scalar) -> Scalar {
        match (self, other) {
            (Scalar::Lit(Lit::Bool(true)), o) => o,
            (s, Scalar::Lit(Lit::Bool(true))) => s,
            (s, o) => Scalar::Bin(BinOp::And, Box::new(s), Box::new(o)),
        }
    }

    /// Build `self OR other`, simplifying `FALSE` operands.
    pub fn or(self, other: Scalar) -> Scalar {
        match (self, other) {
            (Scalar::Lit(Lit::Bool(false)), o) => o,
            (s, Scalar::Lit(Lit::Bool(false))) => s,
            (s, o) => Scalar::Bin(BinOp::Or, Box::new(s), Box::new(o)),
        }
    }

    /// Build a binary comparison.
    pub fn cmp(op: BinOp, l: Scalar, r: Scalar) -> Scalar {
        Scalar::Bin(op, Box::new(l), Box::new(r))
    }

    /// Visit every node of the expression tree (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Scalar)) {
        f(self);
        match self {
            Scalar::Lit(_) | Scalar::Col(_) | Scalar::Param(_) => {}
            Scalar::Bin(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Scalar::Un(_, e) => e.walk(f),
            Scalar::Func(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Scalar::Case { arms, otherwise } => {
                for (c, v) in arms {
                    c.walk(f);
                    v.walk(f);
                }
                otherwise.walk(f);
            }
            Scalar::Exists(_) | Scalar::Subquery(_) => {}
        }
    }

    /// Rewrite the expression bottom-up with `f`.
    pub fn map(&self, f: &mut impl FnMut(Scalar) -> Scalar) -> Scalar {
        let rebuilt = match self {
            Scalar::Lit(_) | Scalar::Col(_) | Scalar::Param(_) => self.clone(),
            Scalar::Bin(op, l, r) => Scalar::Bin(*op, Box::new(l.map(f)), Box::new(r.map(f))),
            Scalar::Un(op, e) => Scalar::Un(*op, Box::new(e.map(f))),
            Scalar::Func(func, args) => {
                Scalar::Func(*func, args.iter().map(|a| a.map(f)).collect())
            }
            Scalar::Case { arms, otherwise } => Scalar::Case {
                arms: arms.iter().map(|(c, v)| (c.map(f), v.map(f))).collect(),
                otherwise: Box::new(otherwise.map(f)),
            },
            Scalar::Exists(q) => Scalar::Exists(q.clone()),
            Scalar::Subquery(q) => Scalar::Subquery(q.clone()),
        };
        f(rebuilt)
    }

    /// Collect the columns referenced by this expression (not descending into
    /// subqueries, whose column scope differs).
    pub fn columns(&self) -> Vec<ColRef> {
        let mut out = Vec::new();
        self.walk(&mut |s| {
            if let Scalar::Col(c) = s {
                out.push(c.clone());
            }
        });
        out
    }

    /// Highest parameter index used, if any (not descending into subqueries).
    pub fn max_param(&self) -> Option<usize> {
        let mut max = None;
        self.walk(&mut |s| {
            if let Scalar::Param(i) = s {
                max = Some(max.map_or(*i, |m: usize| m.max(*i)));
            }
        });
        max
    }

    /// Substitute every `Param(i)` with `subs[i]` (clones when out of range).
    pub fn substitute_params(&self, subs: &[Scalar]) -> Scalar {
        self.map(&mut |s| match s {
            Scalar::Param(i) if i < subs.len() => subs[i].clone(),
            other => other,
        })
    }
}

impl From<Lit> for Scalar {
    fn from(l: Lit) -> Self {
        Scalar::Lit(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_display_escapes_quotes() {
        assert_eq!(Lit::Str("o'clock".into()).to_string(), "'o''clock'");
        assert_eq!(Lit::Int(42).to_string(), "42");
        assert_eq!(Lit::Null.to_string(), "NULL");
        assert_eq!(Lit::Bool(true).to_string(), "TRUE");
    }

    #[test]
    fn float_bits_roundtrip() {
        let l = Lit::float(3.25);
        match l {
            Lit::F64(b) => assert_eq!(b.get(), 3.25),
            _ => panic!("expected float"),
        }
    }

    #[test]
    fn and_simplifies_true() {
        let p = Scalar::cmp(BinOp::Gt, Scalar::col("x"), Scalar::int(0));
        assert_eq!(Scalar::bool(true).and(p.clone()), p);
        assert_eq!(p.clone().and(Scalar::bool(true)), p);
    }

    #[test]
    fn or_simplifies_false() {
        let p = Scalar::cmp(BinOp::Eq, Scalar::col("x"), Scalar::int(1));
        assert_eq!(Scalar::bool(false).or(p.clone()), p);
        assert_eq!(p.clone().or(Scalar::bool(false)), p);
    }

    #[test]
    fn columns_collects_qualified_and_unqualified() {
        let e = Scalar::cmp(
            BinOp::Lt,
            Scalar::qcol("t", "a"),
            Scalar::Bin(
                BinOp::Add,
                Box::new(Scalar::col("b")),
                Box::new(Scalar::int(1)),
            ),
        );
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], ColRef::qualified("t", "a"));
        assert_eq!(cols[1], ColRef::new("b"));
    }

    #[test]
    fn substitute_params_replaces_in_place() {
        let e = Scalar::cmp(BinOp::Eq, Scalar::col("id"), Scalar::Param(0));
        let out = e.substitute_params(&[Scalar::int(7)]);
        assert_eq!(
            out,
            Scalar::cmp(BinOp::Eq, Scalar::col("id"), Scalar::int(7))
        );
    }

    #[test]
    fn flip_mirrors_comparisons() {
        assert_eq!(BinOp::Lt.flip(), Some(BinOp::Gt));
        assert_eq!(BinOp::Ge.flip(), Some(BinOp::Le));
        assert_eq!(BinOp::Eq.flip(), Some(BinOp::Eq));
        assert_eq!(BinOp::Add.flip(), None);
    }

    #[test]
    fn max_param_tracks_highest() {
        let e = Scalar::Bin(
            BinOp::Add,
            Box::new(Scalar::Param(2)),
            Box::new(Scalar::Param(0)),
        );
        assert_eq!(e.max_param(), Some(2));
        assert_eq!(Scalar::int(1).max_param(), None);
    }
}
