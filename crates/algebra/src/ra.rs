//! The multiset extended relational algebra (paper Sec. 3.2.1).
//!
//! Operators: base table scan, σ (selection), π (projection **without**
//! duplicate elimination, order preserving), ⨝ (join), γ (grouping and
//! aggregation), τ (sort), δ (duplicate elimination), and `OUTER APPLY`
//! (Appendix B, Rule T7). A `Values` node represents a literal relation and
//! is used by the batching baseline's parameter tables.

use std::fmt;

use crate::scalar::{ColRef, Lit, Scalar};
use crate::schema::Catalog;

/// Aggregate functions supported by γ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `SUM`.
    Sum,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `COUNT` (of non-null argument values, or `COUNT(*)` when the argument
    /// is a literal `1`).
    Count,
    /// `AVG`.
    Avg,
}

impl AggFunc {
    /// SQL name of the aggregate.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
        }
    }

    /// The identity element of the underlying binary operator, when one
    /// exists (paper Rule T5.1: `id` must be the identity for `op`).
    pub fn identity(self) -> Option<Lit> {
        match self {
            AggFunc::Sum | AggFunc::Count => Some(Lit::Int(0)),
            AggFunc::Max => Some(Lit::Int(i64::MIN)),
            AggFunc::Min => Some(Lit::Int(i64::MAX)),
            AggFunc::Avg => None,
        }
    }
}

/// One aggregate call in a γ node: `alias := func(arg)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression, evaluated per input row.
    pub arg: Scalar,
    /// Output column name.
    pub alias: String,
}

impl AggCall {
    /// Build an aggregate call.
    pub fn new(func: AggFunc, arg: Scalar, alias: impl Into<String>) -> Self {
        AggCall {
            func,
            arg,
            alias: alias.into(),
        }
    }
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    LeftOuter,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One sort key of a τ node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SortKey {
    /// Key expression.
    pub expr: Scalar,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending sort on an expression.
    pub fn asc(expr: Scalar) -> Self {
        SortKey {
            expr,
            order: SortOrder::Asc,
        }
    }

    /// Descending sort on an expression.
    pub fn desc(expr: Scalar) -> Self {
        SortKey {
            expr,
            order: SortOrder::Desc,
        }
    }
}

/// A projection item: `alias := expr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProjItem {
    /// Value expression.
    pub expr: Scalar,
    /// Output column name.
    pub alias: String,
}

impl ProjItem {
    /// Build a projection item.
    pub fn new(expr: Scalar, alias: impl Into<String>) -> Self {
        ProjItem {
            expr,
            alias: alias.into(),
        }
    }

    /// Project a plain column under its own name.
    pub fn col(name: &str) -> Self {
        ProjItem {
            expr: Scalar::col(name),
            alias: name.to_string(),
        }
    }
}

/// A relational-algebra expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RaExpr {
    /// Scan of a base table, with an optional alias binding its columns.
    Table {
        /// Base table name.
        name: String,
        /// Alias for qualified column references; defaults to the name.
        alias: Option<String>,
    },
    /// A literal relation (used for batching parameter tables).
    Values {
        /// Output column names.
        columns: Vec<String>,
        /// Row literals.
        rows: Vec<Vec<Lit>>,
    },
    /// σ — keep rows satisfying `pred`.
    Select {
        /// Input relation.
        input: Box<RaExpr>,
        /// Selection predicate.
        pred: Scalar,
    },
    /// π — order-preserving projection without duplicate elimination.
    Project {
        /// Input relation.
        input: Box<RaExpr>,
        /// Output items.
        items: Vec<ProjItem>,
    },
    /// ⨝ — join of two relations on a predicate.
    Join {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
        /// Join predicate.
        pred: Scalar,
        /// Inner or left-outer.
        kind: JoinKind,
    },
    /// `OUTER APPLY` — for each left row, evaluate the (correlated) right
    /// side; when the right side is empty, pad with NULLs (Appendix B).
    OuterApply {
        /// Outer relation.
        left: Box<RaExpr>,
        /// Correlated inner relation; may reference `left` columns.
        right: Box<RaExpr>,
    },
    /// γ — group by `group_by` expressions and compute `aggs`.
    ///
    /// With an empty `group_by`, produces exactly one row (standard SQL
    /// semantics: aggregates over the whole input, NULL-aware).
    Aggregate {
        /// Input relation.
        input: Box<RaExpr>,
        /// Grouping expressions with output names.
        group_by: Vec<ProjItem>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// τ — stable sort on keys.
    Sort {
        /// Input relation.
        input: Box<RaExpr>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// δ — duplicate elimination (keeps first occurrence, preserving order).
    Dedup {
        /// Input relation.
        input: Box<RaExpr>,
    },
    /// `LIMIT n` — keep the first `n` rows. Used by the argmax/argmin
    /// dependent-aggregation extraction (Appendix B: "a combination of
    /// ORDER BY and LIMIT").
    Limit {
        /// Input relation.
        input: Box<RaExpr>,
        /// Maximum number of rows to keep.
        count: u64,
    },
    /// A derived table `(…) AS alias`: requalifies the inner relation's
    /// columns under `alias`. Produced when parsing rendered SQL back.
    Aliased {
        /// Inner relation.
        input: Box<RaExpr>,
        /// The new qualifier for all output columns.
        alias: String,
    },
}

impl RaExpr {
    /// Scan a base table under its own name.
    pub fn table(name: impl Into<String>) -> Self {
        RaExpr::Table {
            name: name.into(),
            alias: None,
        }
    }

    /// Scan a base table under an alias.
    pub fn table_as(name: impl Into<String>, alias: impl Into<String>) -> Self {
        RaExpr::Table {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    /// σ over this relation (merging with `TRUE` handled by `Scalar::and`).
    pub fn select(self, pred: Scalar) -> Self {
        RaExpr::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// π over this relation.
    pub fn project(self, items: Vec<ProjItem>) -> Self {
        RaExpr::Project {
            input: Box::new(self),
            items,
        }
    }

    /// Inner join.
    pub fn join(self, right: RaExpr, pred: Scalar) -> Self {
        RaExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
            kind: JoinKind::Inner,
        }
    }

    /// Left outer join.
    pub fn left_join(self, right: RaExpr, pred: Scalar) -> Self {
        RaExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
            kind: JoinKind::LeftOuter,
        }
    }

    /// `OUTER APPLY` with a correlated right side.
    pub fn outer_apply(self, right: RaExpr) -> Self {
        RaExpr::OuterApply {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// γ with no grouping (single-row aggregate).
    pub fn aggregate(self, aggs: Vec<AggCall>) -> Self {
        RaExpr::Aggregate {
            input: Box::new(self.strip_order()),
            group_by: Vec::new(),
            aggs,
        }
    }

    /// γ with grouping.
    pub fn group_by(self, group_by: Vec<ProjItem>, aggs: Vec<AggCall>) -> Self {
        RaExpr::Aggregate {
            input: Box::new(self.strip_order()),
            group_by,
            aggs,
        }
    }

    /// Remove τ nodes whose ordering cannot affect the value of an
    /// enclosing aggregate.
    ///
    /// Every [`AggFunc`] is order-insensitive, so a `Sort` feeding a γ is
    /// dead weight — worse, rendering it inline produces `SELECT COUNT(…)
    /// FROM t ORDER BY c`, which real dialects (and `dbms::eval`) reject
    /// because `c` no longer exists in the aggregate's output. Strips along
    /// σ/δ spines (δ only discards *identical* rows, so which duplicate
    /// survives is unobservable); `Limit` is a hard barrier — which rows it
    /// keeps depends on order.
    fn strip_order(self) -> Self {
        match self {
            RaExpr::Sort { input, .. } => input.strip_order(),
            RaExpr::Select { input, pred } => RaExpr::Select {
                input: Box::new(input.strip_order()),
                pred,
            },
            RaExpr::Dedup { input } => RaExpr::Dedup {
                input: Box::new(input.strip_order()),
            },
            other => other,
        }
    }

    /// τ over this relation.
    pub fn sort(self, keys: Vec<SortKey>) -> Self {
        RaExpr::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// δ over this relation.
    pub fn dedup(self) -> Self {
        RaExpr::Dedup {
            input: Box::new(self),
        }
    }

    /// `LIMIT count` over this relation.
    pub fn limit(self, count: u64) -> Self {
        RaExpr::Limit {
            input: Box::new(self),
            count,
        }
    }

    /// Requalify this relation's columns under `alias`.
    pub fn aliased(self, alias: impl Into<String>) -> Self {
        RaExpr::Aliased {
            input: Box::new(self),
            alias: alias.into(),
        }
    }

    /// The alias under which a `Table` node's columns are visible.
    pub fn table_binding(&self) -> Option<&str> {
        match self {
            RaExpr::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            _ => None,
        }
    }

    /// Output column names of this expression, resolved against `catalog`.
    ///
    /// Returns `None` when a referenced base table is unknown.
    pub fn output_columns(&self, catalog: &Catalog) -> Option<Vec<String>> {
        match self {
            RaExpr::Table { name, .. } => Some(catalog.get(name)?.column_names()),
            RaExpr::Values { columns, .. } => Some(columns.clone()),
            RaExpr::Select { input, .. }
            | RaExpr::Sort { input, .. }
            | RaExpr::Dedup { input }
            | RaExpr::Limit { input, .. }
            | RaExpr::Aliased { input, .. } => input.output_columns(catalog),
            RaExpr::Project { items, .. } => Some(items.iter().map(|i| i.alias.clone()).collect()),
            RaExpr::Join { left, right, .. } | RaExpr::OuterApply { left, right } => {
                let mut cols = left.output_columns(catalog)?;
                cols.extend(right.output_columns(catalog)?);
                Some(cols)
            }
            RaExpr::Aggregate { group_by, aggs, .. } => {
                let mut cols: Vec<String> = group_by.iter().map(|g| g.alias.clone()).collect();
                cols.extend(aggs.iter().map(|a| a.alias.clone()));
                Some(cols)
            }
        }
    }

    /// Base tables scanned anywhere in this expression (including inside
    /// `Exists`/`Subquery` scalars is *not* attempted here — callers that
    /// care recurse through predicates themselves).
    pub fn base_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let RaExpr::Table { name, .. } = e {
                out.push(name.as_str());
            }
        });
        out
    }

    /// Visit every node of this algebra tree (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a RaExpr)) {
        f(self);
        match self {
            RaExpr::Table { .. } | RaExpr::Values { .. } => {}
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Aggregate { input, .. }
            | RaExpr::Sort { input, .. }
            | RaExpr::Dedup { input }
            | RaExpr::Limit { input, .. }
            | RaExpr::Aliased { input, .. } => input.walk(f),
            RaExpr::Join { left, right, .. } | RaExpr::OuterApply { left, right } => {
                left.walk(f);
                right.walk(f);
            }
        }
    }

    /// Substitute parameters in every scalar expression of the tree.
    pub fn substitute_params(&self, subs: &[Scalar]) -> RaExpr {
        match self {
            RaExpr::Table { .. } | RaExpr::Values { .. } => self.clone(),
            RaExpr::Select { input, pred } => RaExpr::Select {
                input: Box::new(input.substitute_params(subs)),
                pred: pred.substitute_params(subs),
            },
            RaExpr::Project { input, items } => RaExpr::Project {
                input: Box::new(input.substitute_params(subs)),
                items: items
                    .iter()
                    .map(|i| ProjItem::new(i.expr.substitute_params(subs), i.alias.clone()))
                    .collect(),
            },
            RaExpr::Join {
                left,
                right,
                pred,
                kind,
            } => RaExpr::Join {
                left: Box::new(left.substitute_params(subs)),
                right: Box::new(right.substitute_params(subs)),
                pred: pred.substitute_params(subs),
                kind: *kind,
            },
            RaExpr::OuterApply { left, right } => RaExpr::OuterApply {
                left: Box::new(left.substitute_params(subs)),
                right: Box::new(right.substitute_params(subs)),
            },
            RaExpr::Aggregate {
                input,
                group_by,
                aggs,
            } => RaExpr::Aggregate {
                input: Box::new(input.substitute_params(subs)),
                group_by: group_by
                    .iter()
                    .map(|g| ProjItem::new(g.expr.substitute_params(subs), g.alias.clone()))
                    .collect(),
                aggs: aggs
                    .iter()
                    .map(|a| AggCall::new(a.func, a.arg.substitute_params(subs), a.alias.clone()))
                    .collect(),
            },
            RaExpr::Sort { input, keys } => RaExpr::Sort {
                input: Box::new(input.substitute_params(subs)),
                keys: keys
                    .iter()
                    .map(|k| SortKey {
                        expr: k.expr.substitute_params(subs),
                        order: k.order,
                    })
                    .collect(),
            },
            RaExpr::Dedup { input } => RaExpr::Dedup {
                input: Box::new(input.substitute_params(subs)),
            },
            RaExpr::Limit { input, count } => RaExpr::Limit {
                input: Box::new(input.substitute_params(subs)),
                count: *count,
            },
            RaExpr::Aliased { input, alias } => RaExpr::Aliased {
                input: Box::new(input.substitute_params(subs)),
                alias: alias.clone(),
            },
        }
    }

    /// Highest parameter index appearing anywhere in the tree's scalars.
    pub fn max_param(&self) -> Option<usize> {
        fn scan_scalar(s: &Scalar, max: &mut Option<usize>) {
            s.walk(&mut |n| {
                if let Scalar::Param(i) = n {
                    *max = Some(max.map_or(*i, |m| m.max(*i)));
                }
            });
        }
        let mut max = None;
        self.walk(&mut |e| match e {
            RaExpr::Select { pred, .. } => scan_scalar(pred, &mut max),
            RaExpr::Join { pred, .. } => scan_scalar(pred, &mut max),
            RaExpr::Project { items, .. } => {
                for i in items {
                    scan_scalar(&i.expr, &mut max);
                }
            }
            RaExpr::Aggregate { group_by, aggs, .. } => {
                for g in group_by {
                    scan_scalar(&g.expr, &mut max);
                }
                for a in aggs {
                    scan_scalar(&a.arg, &mut max);
                }
            }
            RaExpr::Sort { keys, .. } => {
                for k in keys {
                    scan_scalar(&k.expr, &mut max);
                }
            }
            _ => {}
        });
        max
    }

    /// Whether the named output column of this relation may hold SQL `NULL`.
    ///
    /// `qualifier` is the column's table qualifier, if the reference had one.
    /// Returns `None` when the column cannot be resolved (unknown table,
    /// unknown column, qualifier that doesn't bind here) — callers should
    /// treat that as "maybe NULL".
    pub fn column_maybe_null(
        &self,
        catalog: &Catalog,
        qualifier: Option<&str>,
        name: &str,
    ) -> Option<bool> {
        match self {
            RaExpr::Table { name: t, alias } => {
                let binding = alias.as_deref().unwrap_or(t);
                if qualifier.is_some_and(|q| q != binding) {
                    return None;
                }
                let schema = catalog.get(t)?;
                schema
                    .columns
                    .iter()
                    .find(|c| c.name == name)
                    .map(|c| c.nullable)
            }
            RaExpr::Values { columns, rows } => {
                if qualifier.is_some() {
                    return None;
                }
                let idx = columns.iter().position(|c| c == name)?;
                Some(rows.iter().any(|r| matches!(r.get(idx), Some(Lit::Null))))
            }
            RaExpr::Select { input, .. }
            | RaExpr::Sort { input, .. }
            | RaExpr::Dedup { input }
            | RaExpr::Limit { input, .. } => input.column_maybe_null(catalog, qualifier, name),
            RaExpr::Aliased { input, alias } => {
                if qualifier.is_some_and(|q| q != alias) {
                    return None;
                }
                input.column_maybe_null(catalog, None, name)
            }
            RaExpr::Project { input, items } => {
                if qualifier.is_some() {
                    return None;
                }
                let item = items.iter().find(|i| i.alias == name)?;
                Some(input.scalar_maybe_null(&item.expr, catalog))
            }
            RaExpr::Join {
                left, right, kind, ..
            } => {
                if let Some(n) = left.column_maybe_null(catalog, qualifier, name) {
                    return Some(n);
                }
                let n = right.column_maybe_null(catalog, qualifier, name)?;
                // Right side of a left-outer join is NULL-padded.
                Some(n || *kind == JoinKind::LeftOuter)
            }
            RaExpr::OuterApply { left, right } => {
                if let Some(n) = left.column_maybe_null(catalog, qualifier, name) {
                    return Some(n);
                }
                // OUTER APPLY pads the right side with NULLs when empty.
                right.column_maybe_null(catalog, qualifier, name)?;
                Some(true)
            }
            RaExpr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                if qualifier.is_some() {
                    return None;
                }
                if let Some(g) = group_by.iter().find(|g| g.alias == name) {
                    return Some(input.scalar_maybe_null(&g.expr, catalog));
                }
                let agg = aggs.iter().find(|a| a.alias == name)?;
                // COUNT is never NULL; SUM/MIN/MAX/AVG are NULL on empty
                // input (and on all-NULL / overflowing input).
                Some(agg.func != AggFunc::Count)
            }
        }
    }

    /// Conservative may-be-NULL analysis for a scalar evaluated against this
    /// relation's output rows. `true` means the expression can produce NULL
    /// for some row; `false` is a proof that it cannot.
    ///
    /// Matches the engine semantics documented in `dbms::eval`: `/` and `%`
    /// are NULL-on-error (division by zero), `CONCAT` skips NULL arguments
    /// and always yields a string, `GREATEST`/`LEAST`/`COALESCE` are NULL
    /// only when every argument is. Query parameters are program inputs
    /// supplied by the harness and assumed non-NULL.
    pub fn scalar_maybe_null(&self, s: &Scalar, catalog: &Catalog) -> bool {
        use crate::scalar::{BinOp, ScalarFunc};
        match s {
            Scalar::Lit(l) => matches!(l, Lit::Null),
            Scalar::Col(c) => self
                .column_maybe_null(catalog, c.qualifier.as_deref(), &c.column)
                .unwrap_or(true),
            Scalar::Param(_) => false,
            Scalar::Bin(BinOp::Div | BinOp::Mod, _, _) => true,
            Scalar::Bin(_, l, r) => {
                self.scalar_maybe_null(l, catalog) || self.scalar_maybe_null(r, catalog)
            }
            Scalar::Un(_, e) => self.scalar_maybe_null(e, catalog),
            Scalar::Func(ScalarFunc::Concat, _) => false,
            Scalar::Func(ScalarFunc::Greatest | ScalarFunc::Least | ScalarFunc::Coalesce, args) => {
                args.iter().all(|a| self.scalar_maybe_null(a, catalog))
            }
            Scalar::Func(_, args) => args.iter().any(|a| self.scalar_maybe_null(a, catalog)),
            Scalar::Case { arms, otherwise } => {
                arms.iter().any(|(_, v)| self.scalar_maybe_null(v, catalog))
                    || self.scalar_maybe_null(otherwise, catalog)
            }
            Scalar::Exists(_) => false,
            Scalar::Subquery(_) => true,
        }
    }

    /// True when the expression is (transitively) just scans, σ, π, τ, δ —
    /// i.e. it preserves a deterministic row order from its input.
    pub fn is_order_deterministic(&self) -> bool {
        match self {
            RaExpr::Table { .. } | RaExpr::Values { .. } => true,
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Sort { input, .. }
            | RaExpr::Dedup { input }
            | RaExpr::Limit { input, .. }
            | RaExpr::Aliased { input, .. } => input.is_order_deterministic(),
            RaExpr::Join { .. } | RaExpr::OuterApply { .. } | RaExpr::Aggregate { .. } => false,
        }
    }
}

impl fmt::Display for RaExpr {
    /// Algebra-style rendering, e.g. `π[p1](σ[rnd_id = 1](board))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Table { name, alias } => match alias {
                Some(a) if a != name => write!(f, "{name} AS {a}"),
                _ => write!(f, "{name}"),
            },
            RaExpr::Values { columns, rows } => {
                write!(f, "VALUES[{}]({} rows)", columns.join(","), rows.len())
            }
            RaExpr::Select { input, pred } => write!(f, "σ[{pred:?}]({input})"),
            RaExpr::Project { input, items } => {
                let cols: Vec<String> = items.iter().map(|i| i.alias.clone()).collect();
                write!(f, "π[{}]({input})", cols.join(","))
            }
            RaExpr::Join {
                left, right, kind, ..
            } => {
                let op = match kind {
                    JoinKind::Inner => "⨝",
                    JoinKind::LeftOuter => "⟕",
                };
                write!(f, "({left} {op} {right})")
            }
            RaExpr::OuterApply { left, right } => write!(f, "({left} OApply {right})"),
            RaExpr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let g: Vec<String> = group_by.iter().map(|x| x.alias.clone()).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|x| format!("{}({:?})", x.func.sql(), x.arg))
                    .collect();
                write!(f, "γ[{}; {}]({input})", g.join(","), a.join(","))
            }
            RaExpr::Sort { input, .. } => write!(f, "τ({input})"),
            RaExpr::Dedup { input } => write!(f, "δ({input})"),
            RaExpr::Limit { input, count } => write!(f, "limit[{count}]({input})"),
            RaExpr::Aliased { input, alias } => write!(f, "({input}) AS {alias}"),
        }
    }
}

/// Convenience: an equality join predicate `l.a = r.b`.
pub fn eq_join(l: ColRef, r: ColRef) -> Scalar {
    Scalar::Bin(
        crate::scalar::BinOp::Eq,
        Box::new(Scalar::Col(l)),
        Box::new(Scalar::Col(r)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SqlType, TableSchema};
    use crate::BinOp;

    fn catalog() -> Catalog {
        Catalog::new()
            .with(
                TableSchema::new("t", &[("a", SqlType::Int), ("b", SqlType::Int)]).with_key(&["a"]),
            )
            .with(TableSchema::new("u", &[("c", SqlType::Int)]))
    }

    #[test]
    fn output_columns_project() {
        let e = RaExpr::table("t").project(vec![ProjItem::col("b")]);
        assert_eq!(e.output_columns(&catalog()), Some(vec!["b".to_string()]));
    }

    #[test]
    fn output_columns_join_concatenates() {
        let e = RaExpr::table("t").join(
            RaExpr::table("u"),
            Scalar::cmp(BinOp::Eq, Scalar::qcol("t", "a"), Scalar::qcol("u", "c")),
        );
        assert_eq!(
            e.output_columns(&catalog()),
            Some(vec!["a".into(), "b".into(), "c".into()])
        );
    }

    #[test]
    fn output_columns_aggregate() {
        let e = RaExpr::table("t").group_by(
            vec![ProjItem::col("a")],
            vec![AggCall::new(AggFunc::Sum, Scalar::col("b"), "s")],
        );
        assert_eq!(
            e.output_columns(&catalog()),
            Some(vec!["a".into(), "s".into()])
        );
    }

    #[test]
    fn unknown_table_has_no_columns() {
        assert_eq!(RaExpr::table("nope").output_columns(&catalog()), None);
    }

    #[test]
    fn base_tables_walks_joins() {
        let e = RaExpr::table("t")
            .join(RaExpr::table("u"), Scalar::bool(true))
            .dedup();
        assert_eq!(e.base_tables(), vec!["t", "u"]);
    }

    #[test]
    fn order_determinism() {
        assert!(RaExpr::table("t")
            .select(Scalar::bool(true))
            .is_order_deterministic());
        assert!(!RaExpr::table("t")
            .join(RaExpr::table("u"), Scalar::bool(true))
            .is_order_deterministic());
        assert!(!RaExpr::table("t")
            .aggregate(vec![])
            .is_order_deterministic());
    }

    #[test]
    fn substitute_params_in_select() {
        let e =
            RaExpr::table("t").select(Scalar::cmp(BinOp::Eq, Scalar::col("a"), Scalar::Param(0)));
        let out = e.substitute_params(&[Scalar::int(5)]);
        match out {
            RaExpr::Select { pred, .. } => {
                assert_eq!(
                    pred,
                    Scalar::cmp(BinOp::Eq, Scalar::col("a"), Scalar::int(5))
                );
            }
            _ => panic!("expected select"),
        }
        assert_eq!(e.max_param(), Some(0));
    }

    #[test]
    fn display_is_readable() {
        let e = RaExpr::table("board").select(Scalar::cmp(
            BinOp::Eq,
            Scalar::col("rnd_id"),
            Scalar::int(1),
        ));
        let s = format!("{e}");
        assert!(s.starts_with("σ["), "{s}");
        assert!(s.contains("board"), "{s}");
    }
}
