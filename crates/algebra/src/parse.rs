//! Parser for the SQL/HQL subset that appears in application source code.
//!
//! Database applications embed queries as strings:
//! `executeQuery("SELECT * FROM board WHERE rnd_id = ?")`. The extractor
//! parses these into [`RaExpr`] so they become algebraic leaves of the
//! ee-DAG (paper Sec. 3.2.1: "Parameterized queries in the source program
//! can be treated as parameterized expressions in the multiset relational
//! algebra").
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! query    := SELECT [DISTINCT] items FROM source
//!             [WHERE pred] [GROUP BY exprs] [ORDER BY keys]
//!           | FROM source [WHERE pred] …          -- HQL style, implicit *
//! items    := '*' | item (',' item)*
//! item     := expr [AS ident]
//! source   := table [AS? ident] (JOIN table [AS? ident] ON pred)*
//! expr     := literals, idents, qualified idents, '?', arithmetic,
//!             comparisons, AND/OR/NOT, IS [NOT] NULL, function calls,
//!             aggregate calls (COUNT/SUM/MIN/MAX/AVG)
//! ```
//!
//! `?` placeholders are numbered left to right into [`Scalar::Param`].

#![allow(clippy::if_same_then_else)] // `AS alias` vs bare-alias parse paths are intentionally parallel

use std::fmt;

use crate::ra::{AggCall, AggFunc, ProjItem, RaExpr, SortKey, SortOrder};
use crate::scalar::{BinOp, ColRef, Lit, Scalar, ScalarFunc, UnOp};

/// A SQL parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SqlError {}

/// Parse a SQL/HQL query string into relational algebra.
pub fn parse_sql(input: &str) -> Result<RaExpr, SqlError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(char),
    Le,
    Ge,
    Ne,
    /// `||` — string concatenation.
    PipePipe,
    Question,
}

#[derive(Debug, Clone, PartialEq)]
struct SpTok {
    tok: Tok,
    offset: usize,
}

fn lex(input: &str) -> Result<Vec<SpTok>, SqlError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                toks.push(SpTok {
                    tok: Tok::Ident(input[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &input[i..j];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| SqlError {
                        message: format!("bad float literal {text}"),
                        offset: start,
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| SqlError {
                        message: format!("bad integer literal {text}"),
                        offset: start,
                    })?)
                };
                toks.push(SpTok { tok, offset: start });
                i = j;
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(SqlError {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[j] == b'\'' {
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                    }
                }
                toks.push(SpTok {
                    tok: Tok::Str(s),
                    offset: start,
                });
                i = j;
            }
            '<' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                toks.push(SpTok {
                    tok: Tok::Le,
                    offset: start,
                });
                i += 2;
            }
            '>' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                toks.push(SpTok {
                    tok: Tok::Ge,
                    offset: start,
                });
                i += 2;
            }
            '<' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                toks.push(SpTok {
                    tok: Tok::Ne,
                    offset: start,
                });
                i += 2;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                toks.push(SpTok {
                    tok: Tok::Ne,
                    offset: start,
                });
                i += 2;
            }
            '|' if i + 1 < bytes.len() && bytes[i + 1] == b'|' => {
                toks.push(SpTok {
                    tok: Tok::PipePipe,
                    offset: start,
                });
                i += 2;
            }
            '?' => {
                toks.push(SpTok {
                    tok: Tok::Question,
                    offset: start,
                });
                i += 1;
            }
            '*' | ',' | '(' | ')' | '.' | '=' | '<' | '>' | '+' | '-' | '/' | '%' => {
                toks.push(SpTok {
                    tok: Tok::Punct(c),
                    offset: start,
                });
                i += 1;
            }
            other => {
                return Err(SqlError {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    tokens: Vec<SpTok>,
    pos: usize,
    params: usize,
}

/// A select item before aggregate/projection splitting.
enum Item {
    Star,
    Expr {
        expr: ParsedExpr,
        alias: Option<String>,
    },
}

/// A parsed select expression: either a plain scalar or an aggregate call.
enum ParsedExpr {
    Scalar(Scalar),
    Agg(AggFunc, Scalar),
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn offset(&self) -> usize {
        match self.tokens.get(self.pos) {
            Some(t) => t.offset,
            None => self.tokens.last().map_or(0, |t| t.offset),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), SqlError> {
        match self.peek() {
            Some(Tok::Punct(p)) if *p == c => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {c:?}"))),
        }
    }

    fn expect_end(&self) -> Result<(), SqlError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("trailing tokens after query"))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err("expected identifier")),
        }
    }

    fn query(&mut self) -> Result<RaExpr, SqlError> {
        let (distinct, items) = if self.eat_kw("select") {
            let distinct = self.eat_kw("distinct");
            (distinct, self.items()?)
        } else if self.at_kw("from") {
            // HQL style: "from Board as b where …" — implicit SELECT *.
            (false, vec![Item::Star])
        } else {
            return Err(self.err("expected SELECT or FROM"));
        };
        self.expect_kw("from")?;
        let mut source = self.table_ref()?;
        loop {
            if self.at_kw("outer") {
                // `OUTER APPLY <from-item>` (SQL Server spelling).
                self.pos += 1;
                self.expect_kw("apply")?;
                let right = self.table_ref()?;
                source = RaExpr::OuterApply {
                    left: Box::new(source),
                    right: Box::new(right),
                };
                continue;
            }
            if !(self.at_kw("join") || self.at_kw("inner") || self.at_kw("left")) {
                break;
            }
            let kind = if self.eat_kw("inner") {
                self.expect_kw("join")?;
                crate::ra::JoinKind::Inner
            } else if self.eat_kw("left") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                crate::ra::JoinKind::LeftOuter
            } else {
                self.expect_kw("join")?;
                crate::ra::JoinKind::Inner
            };
            if self.eat_kw("lateral") {
                // `LEFT JOIN LATERAL (…) [AS a] ON TRUE` → OUTER APPLY.
                let right = self.table_ref()?;
                self.expect_kw("on")?;
                let cond = self.expr()?;
                if cond != Scalar::Lit(Lit::Bool(true)) {
                    return Err(self.err("LATERAL joins must use ON TRUE"));
                }
                source = RaExpr::OuterApply {
                    left: Box::new(source),
                    right: Box::new(right),
                };
                continue;
            }
            let right = self.table_ref()?;
            self.expect_kw("on")?;
            let pred = self.expr()?;
            source = RaExpr::Join {
                left: Box::new(source),
                right: Box::new(right),
                pred,
                kind,
            };
        }
        if self.eat_kw("where") {
            let pred = self.expr()?;
            source = source.select(pred);
        }
        let mut group_keys = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_keys.push(self.expr()?);
                if !matches!(self.peek(), Some(Tok::Punct(','))) {
                    break;
                }
                self.pos += 1;
            }
        }

        // Parse ORDER BY up front; where it attaches depends on the shape:
        // for plain SELECTs the sort keys reference pre-projection columns,
        // so τ goes *below* π (π preserves order); for aggregates/DISTINCT
        // it goes on top, referencing output aliases.
        let mut sort_keys = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let order = if self.eat_kw("desc") {
                    SortOrder::Desc
                } else {
                    self.eat_kw("asc");
                    SortOrder::Asc
                };
                sort_keys.push(SortKey { expr: e, order });
                if !matches!(self.peek(), Some(Tok::Punct(','))) {
                    break;
                }
                self.pos += 1;
            }
        }

        // Split items into projections vs aggregates.
        let has_agg = items.iter().any(|i| {
            matches!(
                i,
                Item::Expr {
                    expr: ParsedExpr::Agg(..),
                    ..
                }
            )
        });
        let result = if has_agg || !group_keys.is_empty() {
            let mut gb = Vec::new();
            let mut aggs = Vec::new();
            let mut n = 0usize;
            for item in &items {
                match item {
                    Item::Star => {
                        return Err(self.err("SELECT * cannot be combined with aggregates"))
                    }
                    Item::Expr { expr, alias } => {
                        n += 1;
                        match expr {
                            ParsedExpr::Scalar(s) => {
                                let alias = alias.clone().unwrap_or_else(|| default_alias(s, n));
                                gb.push(ProjItem::new(s.clone(), alias));
                            }
                            ParsedExpr::Agg(f, arg) => {
                                let alias = alias.clone().unwrap_or_else(|| format!("col{n}"));
                                aggs.push(AggCall::new(*f, arg.clone(), alias));
                            }
                        }
                    }
                }
            }
            // Non-aggregate select items must be grouping keys; when GROUP BY
            // was written explicitly we trust it, otherwise grouping is empty.
            let group_by = if group_keys.is_empty() {
                if !gb.is_empty() {
                    return Err(self.err("non-aggregate select item without GROUP BY"));
                }
                Vec::new()
            } else {
                // Keep the select-list order/aliases for the group keys.
                gb
            };
            RaExpr::Aggregate {
                input: Box::new(source),
                group_by,
                aggs,
            }
        } else {
            let is_star = items.len() == 1 && matches!(items[0], Item::Star);
            // ORDER BY may reference either source columns (sort below the
            // projection — π preserves order) or select-list aliases (sort
            // above). Keys naming only output aliases attach above.
            let aliases: Vec<&str> = items
                .iter()
                .filter_map(|i| match i {
                    Item::Expr { alias: Some(a), .. } => Some(a.as_str()),
                    _ => None,
                })
                .collect();
            let keys_use_aliases = !is_star
                && !sort_keys.is_empty()
                && sort_keys.iter().all(|k| {
                    k.expr
                        .columns()
                        .iter()
                        .all(|c| c.qualifier.is_none() && aliases.contains(&c.column.as_str()))
                });
            if !sort_keys.is_empty() && !keys_use_aliases {
                source = source.sort(std::mem::take(&mut sort_keys));
            }
            if is_star {
                source
            } else {
                let mut proj = Vec::new();
                let mut n = 0usize;
                for item in items {
                    match item {
                        Item::Star => {
                            return Err(self.err("* mixed with expressions is unsupported"))
                        }
                        Item::Expr { expr, alias } => {
                            n += 1;
                            let s = match expr {
                                ParsedExpr::Scalar(s) => s,
                                ParsedExpr::Agg(..) => unreachable!("handled above"),
                            };
                            let alias = alias.unwrap_or_else(|| default_alias(&s, n));
                            proj.push(ProjItem::new(s, alias));
                        }
                    }
                }
                source.project(proj)
            }
        };

        let mut result = result;
        if !sort_keys.is_empty() {
            // Aggregate/other shapes: sort on top, over output aliases.
            result = result.sort(sort_keys);
        }
        if distinct {
            result = result.dedup();
        }
        if self.eat_kw("limit") {
            match self.bump() {
                Some(Tok::Int(n)) if n >= 0 => result = result.limit(n as u64),
                _ => return Err(self.err("expected row count after LIMIT")),
            }
        }
        Ok(result)
    }

    fn items(&mut self) -> Result<Vec<Item>, SqlError> {
        let mut out = Vec::new();
        loop {
            if matches!(self.peek(), Some(Tok::Punct('*'))) {
                self.pos += 1;
                out.push(Item::Star);
            } else {
                let expr = self.select_expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else if matches!(self.peek(), Some(Tok::Ident(s))
                    if !is_keyword(s))
                {
                    Some(self.ident()?)
                } else {
                    None
                };
                out.push(Item::Expr { expr, alias });
            }
            if matches!(self.peek(), Some(Tok::Punct(','))) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn select_expr(&mut self) -> Result<ParsedExpr, SqlError> {
        // Aggregate call at top level of a select item?
        if let Some(Tok::Ident(name)) = self.peek() {
            if let Some(f) = agg_func(name) {
                if matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.tok),
                    Some(Tok::Punct('('))
                ) {
                    self.pos += 2;
                    let arg = if matches!(self.peek(), Some(Tok::Punct('*'))) {
                        self.pos += 1;
                        Scalar::int(1)
                    } else {
                        self.expr()?
                    };
                    self.expect_punct(')')?;
                    return Ok(ParsedExpr::Agg(f, arg));
                }
            }
        }
        Ok(ParsedExpr::Scalar(self.expr()?))
    }

    fn table_ref(&mut self) -> Result<RaExpr, SqlError> {
        if matches!(self.peek(), Some(Tok::Punct('('))) {
            // Derived table `(SELECT …) [AS] alias`.
            self.pos += 1;
            let inner = self.query()?;
            self.expect_punct(')')?;
            let alias = if self.eat_kw("as") {
                Some(self.ident()?)
            } else if matches!(self.peek(), Some(Tok::Ident(s)) if !is_keyword(s)) {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(match alias {
                Some(a) => RaExpr::Aliased {
                    input: Box::new(inner),
                    alias: a,
                },
                None => inner,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if matches!(self.peek(), Some(Tok::Ident(s)) if !is_keyword(s)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(RaExpr::Table {
            name: name.to_ascii_lowercase(),
            alias,
        })
    }

    // Precedence climbing: or < and < not < cmp < add < mul < unary.
    fn expr(&mut self) -> Result<Scalar, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Scalar, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Scalar::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Scalar, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Scalar::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Scalar, SqlError> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            Ok(Scalar::Un(UnOp::Not, Box::new(e)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Scalar, SqlError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Punct('=')) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Punct('<')) => Some(BinOp::Lt),
            Some(Tok::Punct('>')) => Some(BinOp::Gt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(Scalar::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            let op = if negated {
                UnOp::IsNotNull
            } else {
                UnOp::IsNull
            };
            return Ok(Scalar::Un(op, Box::new(lhs)));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Scalar, SqlError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if matches!(self.peek(), Some(Tok::PipePipe)) {
                self.pos += 1;
                let rhs = self.mul_expr()?;
                // Flatten chained concatenation into one call.
                lhs = match lhs {
                    Scalar::Func(ScalarFunc::Concat, mut args) => {
                        args.push(rhs);
                        Scalar::Func(ScalarFunc::Concat, args)
                    }
                    other => Scalar::Func(ScalarFunc::Concat, vec![other, rhs]),
                };
                continue;
            }
            let op = match self.peek() {
                Some(Tok::Punct('+')) => BinOp::Add,
                Some(Tok::Punct('-')) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Scalar::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Scalar, SqlError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct('*')) => BinOp::Mul,
                Some(Tok::Punct('/')) => BinOp::Div,
                Some(Tok::Punct('%')) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Scalar::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Scalar, SqlError> {
        if matches!(self.peek(), Some(Tok::Punct('-'))) {
            self.pos += 1;
            let e = self.unary_expr()?;
            return Ok(Scalar::Un(UnOp::Neg, Box::new(e)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Scalar, SqlError> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Scalar::Lit(Lit::Int(i))),
            Some(Tok::Float(v)) => Ok(Scalar::Lit(Lit::float(v))),
            Some(Tok::Str(s)) => Ok(Scalar::Lit(Lit::Str(s))),
            Some(Tok::Question) => {
                let idx = self.params;
                self.params += 1;
                Ok(Scalar::Param(idx))
            }
            Some(Tok::Punct('(')) => {
                if self.at_kw("select") || self.at_kw("from") {
                    let q = self.query()?;
                    self.expect_punct(')')?;
                    return Ok(Scalar::Subquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => return Ok(Scalar::Lit(Lit::Null)),
                    "true" => return Ok(Scalar::Lit(Lit::Bool(true))),
                    "false" => return Ok(Scalar::Lit(Lit::Bool(false))),
                    "exists" => {
                        self.expect_punct('(')?;
                        let q = self.query()?;
                        self.expect_punct(')')?;
                        return Ok(Scalar::Exists(Box::new(q)));
                    }
                    "case" => return self.case_expr(),
                    _ => {}
                }
                if matches!(self.peek(), Some(Tok::Punct('('))) {
                    // Scalar function call.
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Tok::Punct(')'))) {
                        loop {
                            args.push(self.expr()?);
                            if matches!(self.peek(), Some(Tok::Punct(','))) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_punct(')')?;
                    let f = scalar_func(&lower)
                        .ok_or_else(|| self.err(format!("unknown function {name}")))?;
                    return Ok(Scalar::Func(f, args));
                }
                if matches!(self.peek(), Some(Tok::Punct('.'))) {
                    self.pos += 1;
                    let col = self.ident()?;
                    return Ok(Scalar::Col(ColRef::qualified(name, col)));
                }
                Ok(Scalar::Col(ColRef::new(name)))
            }
            other => Err(SqlError {
                message: format!("unexpected token {other:?} in expression"),
                offset: self.offset(),
            }),
        }
    }
}

impl Parser {
    /// `CASE WHEN c THEN v [WHEN …] ELSE e END` (the `case` keyword was
    /// already consumed).
    fn case_expr(&mut self) -> Result<Scalar, SqlError> {
        let mut arms = Vec::new();
        while self.eat_kw("when") {
            let c = self.expr()?;
            self.expect_kw("then")?;
            let v = self.expr()?;
            arms.push((c, v));
        }
        if arms.is_empty() {
            return Err(self.err("CASE requires at least one WHEN arm"));
        }
        self.expect_kw("else")?;
        let otherwise = self.expr()?;
        self.expect_kw("end")?;
        Ok(Scalar::Case {
            arms,
            otherwise: Box::new(otherwise),
        })
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s.to_ascii_lowercase().as_str(),
        "select"
            | "from"
            | "where"
            | "group"
            | "order"
            | "by"
            | "join"
            | "inner"
            | "left"
            | "outer"
            | "on"
            | "and"
            | "or"
            | "not"
            | "as"
            | "distinct"
            | "asc"
            | "desc"
            | "is"
            | "null"
            | "limit"
            | "lateral"
            | "apply"
            | "exists"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "union"
            | "all"
    )
}

fn agg_func(name: &str) -> Option<AggFunc> {
    Some(match name.to_ascii_lowercase().as_str() {
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "count" => AggFunc::Count,
        "avg" => AggFunc::Avg,
        _ => return None,
    })
}

fn scalar_func(name: &str) -> Option<ScalarFunc> {
    Some(match name {
        "greatest" => ScalarFunc::Greatest,
        "least" => ScalarFunc::Least,
        "abs" => ScalarFunc::Abs,
        "concat" => ScalarFunc::Concat,
        "lower" => ScalarFunc::Lower,
        "upper" => ScalarFunc::Upper,
        "length" => ScalarFunc::Length,
        "coalesce" => ScalarFunc::Coalesce,
        _ => return None,
    })
}

fn default_alias(s: &Scalar, n: usize) -> String {
    match s {
        Scalar::Col(c) => c.column.clone(),
        _ => format!("col{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::to_sql;
    use crate::Dialect;

    fn roundtrip(sql: &str) -> String {
        to_sql(&parse_sql(sql).unwrap(), Dialect::Postgres)
    }

    #[test]
    fn select_star_where() {
        let e = parse_sql("SELECT * FROM board WHERE rnd_id = 1").unwrap();
        assert_eq!(
            e,
            RaExpr::table("board").select(Scalar::cmp(
                BinOp::Eq,
                Scalar::col("rnd_id"),
                Scalar::int(1)
            ))
        );
    }

    #[test]
    fn hql_style_from_with_alias() {
        let e = parse_sql("from Board as b where b.rnd_id = 1").unwrap();
        assert_eq!(
            e,
            RaExpr::table_as("board", "b").select(Scalar::cmp(
                BinOp::Eq,
                Scalar::qcol("b", "rnd_id"),
                Scalar::int(1)
            ))
        );
    }

    #[test]
    fn projection_with_aliases() {
        let e = parse_sql("SELECT p1, p2 AS second FROM board").unwrap();
        assert_eq!(
            e,
            RaExpr::table("board").project(vec![
                ProjItem::col("p1"),
                ProjItem::new(Scalar::col("p2"), "second"),
            ])
        );
    }

    #[test]
    fn parameters_number_left_to_right() {
        let e = parse_sql("SELECT * FROM t WHERE a = ? AND b < ?").unwrap();
        assert_eq!(e.max_param(), Some(1));
    }

    #[test]
    fn join_on_predicate() {
        let s = roundtrip(
            "SELECT * FROM wilos_user u JOIN role r ON u.role_id = r.id WHERE r.name = 'admin'",
        );
        assert_eq!(
            s,
            "SELECT * FROM wilos_user AS u JOIN role AS r ON (u.role_id = r.id) \
             WHERE (r.name = 'admin')"
        );
    }

    #[test]
    fn aggregate_without_group() {
        let e = parse_sql("SELECT MAX(score) AS m FROM results").unwrap();
        match &e {
            RaExpr::Aggregate { group_by, aggs, .. } => {
                assert!(group_by.is_empty());
                assert_eq!(aggs.len(), 1);
                assert_eq!(aggs[0].alias, "m");
                assert_eq!(aggs[0].func, AggFunc::Max);
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn group_by_with_keys() {
        let e = parse_sql("SELECT dept, SUM(salary) total FROM emp GROUP BY dept").unwrap();
        match &e {
            RaExpr::Aggregate { group_by, aggs, .. } => {
                assert_eq!(group_by.len(), 1);
                assert_eq!(group_by[0].alias, "dept");
                assert_eq!(aggs[0].alias, "total");
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let e = parse_sql("SELECT COUNT(*) AS n FROM t").unwrap();
        match &e {
            RaExpr::Aggregate { aggs, .. } => assert_eq!(aggs[0].arg, Scalar::int(1)),
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn order_by_desc() {
        let s = roundtrip("SELECT * FROM t ORDER BY x DESC, y");
        assert_eq!(s, "SELECT * FROM t ORDER BY x DESC, y");
    }

    #[test]
    fn distinct_renders_dedup() {
        let e = parse_sql("SELECT DISTINCT name FROM t").unwrap();
        assert!(matches!(e, RaExpr::Dedup { .. }));
    }

    #[test]
    fn string_escape_roundtrip() {
        let e = parse_sql("SELECT * FROM t WHERE name = 'o''clock'").unwrap();
        let s = to_sql(&e, Dialect::Postgres);
        assert!(s.contains("'o''clock'"), "{s}");
    }

    #[test]
    fn is_null_and_not() {
        let e = parse_sql("SELECT * FROM t WHERE a IS NULL AND NOT b IS NOT NULL").unwrap();
        let s = to_sql(&e, Dialect::Postgres);
        assert!(s.contains("IS NULL"), "{s}");
        assert!(s.contains("NOT"), "{s}");
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_sql("SELECT * FROM t WHERE a + b * 2 > 10").unwrap();
        let s = to_sql(&e, Dialect::Postgres);
        assert_eq!(s, "SELECT * FROM t WHERE ((a + (b * 2)) > 10)");
    }

    #[test]
    fn errors_are_reported_with_position() {
        let err = parse_sql("SELECT FROM").unwrap_err();
        assert!(err.offset <= "SELECT FROM".len());
        let err2 = parse_sql("SELECT * FROM t WHERE @").unwrap_err();
        assert!(err2.message.contains("unexpected character"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_sql("SELECT * FROM t garbage garbage").is_err());
    }

    #[test]
    fn left_join_parses() {
        let e = parse_sql("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y").unwrap();
        match e {
            RaExpr::Join { kind, .. } => assert_eq!(kind, crate::ra::JoinKind::LeftOuter),
            other => panic!("expected join, got {other:?}"),
        }
    }
}
