//! Table schemas and catalogs.
//!
//! The extractor needs schema information for two things: knowing the column
//! list of `SELECT *` queries, and Rule T4/T5.2's "provided Q1 has a unique
//! key" precondition (paper Sec. 5.1).

use std::collections::BTreeMap;
use std::fmt;

/// SQL column types supported by the in-memory engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit integer.
    Int,
    /// Double-precision float.
    Double,
    /// Boolean.
    Bool,
    /// Variable-length string.
    Text,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlType::Int => "INT",
            SqlType::Double => "DOUBLE",
            SqlType::Bool => "BOOLEAN",
            SqlType::Text => "TEXT",
        };
        write!(f, "{s}")
    }
}

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-sensitive, stored lower-case by convention).
    pub name: String,
    /// Column type.
    pub ty: SqlType,
    /// Whether the column may hold SQL `NULL`. Defaults to `false`: the
    /// extractor's NULL-aware rule variants (e.g. the guarded `SUM`
    /// translation) only engage for columns declared `NULL` in the DDL, so
    /// schemas that never mention nullability keep the plain translations.
    pub nullable: bool,
}

/// Schema of one base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Primary-key column names, empty when the table has no declared key.
    ///
    /// Rules T4.1 and T5.2 require the outer query to have a unique key.
    pub key: Vec<String>,
}

impl TableSchema {
    /// Create a schema from `(name, type)` pairs with no key.
    pub fn new(name: impl Into<String>, cols: &[(&str, SqlType)]) -> Self {
        TableSchema {
            name: name.into(),
            columns: cols
                .iter()
                .map(|(n, t)| ColumnDef {
                    name: (*n).to_string(),
                    ty: *t,
                    nullable: false,
                })
                .collect(),
            key: Vec::new(),
        }
    }

    /// Builder-style: declare the primary key columns.
    pub fn with_key(mut self, key: &[&str]) -> Self {
        self.key = key.iter().map(|k| (*k).to_string()).collect();
        self
    }

    /// Builder-style: mark the named columns as nullable.
    pub fn with_nullable(mut self, cols: &[&str]) -> Self {
        for c in &mut self.columns {
            if cols.contains(&c.name.as_str()) {
                c.nullable = true;
            }
        }
        self
    }

    /// Whether `name` is a nullable column (`false` for unknown columns).
    pub fn column_nullable(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name == name && c.nullable)
    }

    /// Position of a column by name, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// All column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// True when the table declares a (non-empty) primary key.
    pub fn has_key(&self) -> bool {
        !self.key.is_empty()
    }
}

/// A collection of table schemas, looked up by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Add (or replace) a table schema.
    pub fn add(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.clone(), schema);
    }

    /// Builder-style `add`.
    pub fn with(mut self, schema: TableSchema) -> Self {
        self.add(schema);
        self
    }

    /// Look up a table schema by name.
    pub fn get(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Iterate over all table schemas in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of tables in the catalog.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> TableSchema {
        TableSchema::new(
            "board",
            &[
                ("id", SqlType::Int),
                ("rnd_id", SqlType::Int),
                ("p1", SqlType::Int),
                ("p2", SqlType::Int),
            ],
        )
        .with_key(&["id"])
    }

    #[test]
    fn column_index_finds_columns() {
        let s = board();
        assert_eq!(s.column_index("rnd_id"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn key_declared() {
        assert!(board().has_key());
        assert!(!TableSchema::new("t", &[("x", SqlType::Int)]).has_key());
    }

    #[test]
    fn catalog_lookup() {
        let c = Catalog::new().with(board());
        assert!(c.get("board").is_some());
        assert!(c.get("boards").is_none());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn catalog_replaces_same_name() {
        let mut c = Catalog::new();
        c.add(TableSchema::new("t", &[("a", SqlType::Int)]));
        c.add(TableSchema::new(
            "t",
            &[("a", SqlType::Int), ("b", SqlType::Text)],
        ));
        assert_eq!(c.get("t").unwrap().columns.len(), 2);
        assert_eq!(c.len(), 1);
    }
}
