//! Dialect-aware SQL generation from relational algebra (paper Sec. 5.2).
//!
//! The renderer folds chains of σ/π/τ/δ/γ over a single source into one
//! `SELECT` block and falls back to derived tables (`(…) AS sqN`) whenever
//! the block already carries a conflicting clause. The output is meant to be
//! read by humans (it appears in the rewritten program), so blocks are kept
//! as flat as possible.

use std::fmt::Write as _;

use crate::dialect::Dialect;
use crate::ra::{JoinKind, RaExpr, SortOrder};
use crate::scalar::{Scalar, ScalarFunc, UnOp};

/// Render a relational algebra expression to a SQL `SELECT` statement.
pub fn to_sql(expr: &RaExpr, dialect: Dialect) -> String {
    let mut ctx = Ctx {
        dialect,
        next_alias: 0,
        tag_params: false,
    };
    let block = ctx.block(expr);
    ctx.render_block(&block)
}

/// Render to SQL and report the *textual* order of parameters: the `i`-th
/// `?` of the returned string corresponds to `Param(order[i])` of the input.
///
/// Rewritten programs re-parse their SQL strings at run time, and the parser
/// numbers `?` placeholders left to right — this function lets the rewriter
/// pass `executeQuery` arguments in exactly that order.
pub fn to_sql_with_params(expr: &RaExpr, dialect: Dialect) -> (String, Vec<usize>) {
    let mut ctx = Ctx {
        dialect,
        next_alias: 0,
        tag_params: true,
    };
    let block = ctx.block(expr);
    let tagged = ctx.render_block(&block);
    untag_params(&tagged)
}

/// Strip `?/*i*/` tags, returning the clean SQL and the parameter order.
///
/// The scan is quote-aware: a `?/*` inside a `'…'` string literal (with
/// `''` as the quote escape) is user data, not a tag, and is copied
/// verbatim. Sequences that merely look like tags but carry no `*/`
/// terminator or a non-numeric index are likewise left untouched — this
/// function never panics on any rendered SQL.
fn untag_params(tagged: &str) -> (String, Vec<usize>) {
    let mut out = String::with_capacity(tagged.len());
    let mut order = Vec::new();
    let mut rest = tagged;
    // Next candidate tag and next string literal; literals win when they
    // start first, since tags inside them are inert text.
    while let Some(tag) = rest.find("?/*") {
        if let Some(q) = rest.find('\'').filter(|q| *q < tag) {
            // Copy the whole literal (respecting the '' escape) and rescan.
            let mut end = q + 1;
            let bytes = rest.as_bytes();
            while end < bytes.len() {
                if bytes[end] == b'\'' {
                    if bytes.get(end + 1) == Some(&b'\'') {
                        end += 2;
                        continue;
                    }
                    end += 1;
                    break;
                }
                end += 1;
            }
            out.push_str(&rest[..end]);
            rest = &rest[end..];
            continue;
        }
        let after = &rest[tag + 3..];
        let parsed = after
            .find("*/")
            .and_then(|e| after[..e].parse::<usize>().ok().map(|n| (e, n)));
        match parsed {
            Some((e, n)) => {
                out.push_str(&rest[..tag]);
                out.push('?');
                order.push(n);
                rest = &after[e + 2..];
            }
            None => {
                // Not a tag we emitted; keep the text and move past the `?`.
                out.push_str(&rest[..tag + 1]);
                rest = &rest[tag + 1..];
            }
        }
    }
    out.push_str(rest);
    (out, order)
}

/// Render a scalar expression to SQL.
pub fn scalar_to_sql(expr: &Scalar, dialect: Dialect) -> String {
    let mut ctx = Ctx {
        dialect,
        next_alias: 0,
        tag_params: false,
    };
    ctx.scalar(expr)
}

struct Ctx {
    dialect: Dialect,
    next_alias: usize,
    tag_params: bool,
}

/// One `FROM` item: a base table or a derived table.
enum FromItem {
    Table { name: String, alias: Option<String> },
    Derived { sql: String, alias: String },
}

enum JoinStyle {
    On(JoinKind, String),
    Lateral,
}

/// A single `SELECT` block under construction.
struct Block {
    distinct: bool,
    /// `None` means `SELECT *`.
    select: Option<Vec<(String, String)>>,
    from: FromItem,
    joins: Vec<(JoinStyle, FromItem)>,
    where_: Option<String>,
    group_by: Option<Vec<String>>,
    order_by: Vec<String>,
    limit: Option<u64>,
}

impl Block {
    fn fresh(from: FromItem) -> Block {
        Block {
            distinct: false,
            select: None,
            from,
            joins: Vec::new(),
            where_: None,
            group_by: None,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

impl Ctx {
    fn fresh_alias(&mut self) -> String {
        self.next_alias += 1;
        format!("sq{}", self.next_alias)
    }

    fn block(&mut self, expr: &RaExpr) -> Block {
        match expr {
            RaExpr::Table { name, alias } => Block::fresh(FromItem::Table {
                name: name.clone(),
                alias: alias.clone(),
            }),
            RaExpr::Values { columns, rows } => {
                let mut sql = String::from("SELECT ");
                // Render VALUES as a UNION ALL of selects for maximal dialect
                // portability of this internal construct.
                let mut parts = Vec::new();
                for row in rows {
                    let cols: Vec<String> = row
                        .iter()
                        .zip(columns)
                        .map(|(v, c)| format!("{v} AS {c}"))
                        .collect();
                    parts.push(cols.join(", "));
                }
                if parts.is_empty() {
                    // Empty VALUES: a select with an always-false predicate.
                    let cols: Vec<String> =
                        columns.iter().map(|c| format!("NULL AS {c}")).collect();
                    let _ = write!(sql, "{} WHERE 1 = 0", cols.join(", "));
                } else {
                    sql = parts
                        .into_iter()
                        .map(|p| format!("SELECT {p}"))
                        .collect::<Vec<_>>()
                        .join(" UNION ALL ");
                }
                let alias = self.fresh_alias();
                Block::fresh(FromItem::Derived { sql, alias })
            }
            RaExpr::Select { input, pred } => {
                let mut b = self.block(input);
                // σ over γ/δ/τ would change semantics if merged: wrap.
                if b.group_by.is_some() || b.distinct || !b.order_by.is_empty() || b.limit.is_some()
                {
                    b = self.wrap(b);
                }
                let p = self.scalar(pred);
                b.where_ = Some(match b.where_.take() {
                    Some(w) => format!("{w} AND {p}"),
                    None => p,
                });
                b
            }
            RaExpr::Project { input, items } => {
                let mut b = self.block(input);
                if b.select.is_some() || b.group_by.is_some() || b.distinct {
                    b = self.wrap(b);
                }
                b.select = Some(
                    items
                        .iter()
                        .map(|i| (self.scalar(&i.expr), i.alias.clone()))
                        .collect(),
                );
                b
            }
            RaExpr::Join {
                left,
                right,
                pred,
                kind,
            } => {
                let mut lb = self.block(left);
                if !is_plain(&lb) {
                    lb = self.wrap(lb);
                }
                let rf = self.as_from_item(right);
                let p = self.scalar(pred);
                lb.joins.push((JoinStyle::On(*kind, p), rf));
                lb
            }
            RaExpr::OuterApply { left, right } => {
                let mut lb = self.block(left);
                if !is_plain(&lb) {
                    lb = self.wrap(lb);
                }
                let rf = self.as_from_item(right);
                lb.joins.push((JoinStyle::Lateral, rf));
                lb
            }
            RaExpr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let mut b = self.block(input);
                if b.select.is_some() || b.group_by.is_some() || b.distinct || b.limit.is_some() {
                    b = self.wrap(b);
                }
                let mut select = Vec::new();
                let mut keys = Vec::new();
                for g in group_by {
                    let e = self.scalar(&g.expr);
                    keys.push(e.clone());
                    select.push((e, g.alias.clone()));
                }
                for a in aggs {
                    let arg = self.scalar(&a.arg);
                    select.push((format!("{}({arg})", a.func.sql()), a.alias.clone()));
                }
                b.select = Some(select);
                b.group_by = if keys.is_empty() {
                    Some(Vec::new())
                } else {
                    Some(keys)
                };
                b
            }
            RaExpr::Sort { input, keys } => {
                let mut b = self.block(input);
                if b.limit.is_some() {
                    b = self.wrap(b);
                }
                b.order_by = keys
                    .iter()
                    .map(|k| {
                        let e = self.scalar(&k.expr);
                        match k.order {
                            SortOrder::Asc => e,
                            SortOrder::Desc => format!("{e} DESC"),
                        }
                    })
                    .collect();
                b
            }
            RaExpr::Dedup { input } => {
                let mut b = self.block(input);
                if b.distinct || b.group_by.is_some() || b.limit.is_some() {
                    b = self.wrap(b);
                }
                b.distinct = true;
                b
            }
            RaExpr::Limit { input, count } => {
                let mut b = self.block(input);
                if b.limit.is_some() {
                    b = self.wrap(b);
                }
                b.limit = Some(*count);
                b
            }
            RaExpr::Aliased { input, alias } => {
                let inner = self.block(input);
                let sql = self.render_block(&inner);
                Block::fresh(FromItem::Derived {
                    sql,
                    alias: alias.clone(),
                })
            }
        }
    }

    fn as_from_item(&mut self, expr: &RaExpr) -> FromItem {
        match expr {
            RaExpr::Table { name, alias } => FromItem::Table {
                name: name.clone(),
                alias: alias.clone(),
            },
            RaExpr::Aliased { input, alias } => {
                // The alias is the binding other parts of the query use —
                // keep it rather than inventing a fresh one.
                let b = self.block(input);
                let sql = self.render_block(&b);
                FromItem::Derived {
                    sql,
                    alias: alias.clone(),
                }
            }
            other => {
                let b = self.block(other);
                let sql = self.render_block(&b);
                FromItem::Derived {
                    sql,
                    alias: self.fresh_alias(),
                }
            }
        }
    }

    fn wrap(&mut self, b: Block) -> Block {
        let sql = self.render_block(&b);
        Block::fresh(FromItem::Derived {
            sql,
            alias: self.fresh_alias(),
        })
    }

    fn render_from_item(&self, item: &FromItem) -> String {
        match item {
            FromItem::Table { name, alias } => match alias {
                Some(a) if a != name => format!("{name} AS {a}"),
                _ => name.clone(),
            },
            FromItem::Derived { sql, alias } => format!("({sql}) AS {alias}"),
        }
    }

    fn render_block(&self, b: &Block) -> String {
        let mut out = String::from("SELECT ");
        if b.distinct {
            out.push_str("DISTINCT ");
        }
        match &b.select {
            None => out.push('*'),
            Some(items) => {
                let parts: Vec<String> = items
                    .iter()
                    .map(|(e, a)| {
                        if e == a {
                            e.clone()
                        } else {
                            format!("{e} AS {a}")
                        }
                    })
                    .collect();
                out.push_str(&parts.join(", "));
            }
        }
        let _ = write!(out, " FROM {}", self.render_from_item(&b.from));
        for (style, item) in &b.joins {
            match style {
                JoinStyle::On(kind, pred) => {
                    let kw = match kind {
                        JoinKind::Inner => "JOIN",
                        JoinKind::LeftOuter => "LEFT JOIN",
                    };
                    let _ = write!(out, " {kw} {} ON {pred}", self.render_from_item(item));
                }
                JoinStyle::Lateral => {
                    if self.dialect.has_outer_apply() {
                        let _ = write!(out, " OUTER APPLY {}", self.render_from_item(item));
                    } else {
                        let _ = write!(
                            out,
                            " LEFT JOIN LATERAL {} ON TRUE",
                            self.render_from_item(item)
                        );
                    }
                }
            }
        }
        if let Some(w) = &b.where_ {
            let _ = write!(out, " WHERE {w}");
        }
        if let Some(g) = &b.group_by {
            if !g.is_empty() {
                let _ = write!(out, " GROUP BY {}", g.join(", "));
            }
        }
        if !b.order_by.is_empty() {
            let _ = write!(out, " ORDER BY {}", b.order_by.join(", "));
        }
        if let Some(n) = b.limit {
            let _ = write!(out, " LIMIT {n}");
        }
        out
    }

    fn scalar(&mut self, e: &Scalar) -> String {
        match e {
            Scalar::Lit(l) => l.to_string(),
            Scalar::Col(c) => c.to_string(),
            Scalar::Param(i) => {
                if self.tag_params {
                    format!("?/*{i}*/")
                } else {
                    "?".to_string()
                }
            }
            Scalar::Bin(op, l, r) => {
                format!("({} {} {})", self.scalar(l), op.sql(), self.scalar(r))
            }
            Scalar::Un(op, x) => match op {
                UnOp::Neg => format!("(-{})", self.scalar(x)),
                UnOp::Not => format!("(NOT {})", self.scalar(x)),
                UnOp::IsNull => format!("({} IS NULL)", self.scalar(x)),
                UnOp::IsNotNull => format!("({} IS NOT NULL)", self.scalar(x)),
            },
            Scalar::Func(f, args) => self.func(*f, args),
            Scalar::Case { arms, otherwise } => {
                let mut out = String::from("CASE");
                for (c, v) in arms {
                    let _ = write!(out, " WHEN {} THEN {}", self.scalar(c), self.scalar(v));
                }
                let _ = write!(out, " ELSE {} END", self.scalar(otherwise));
                out
            }
            Scalar::Exists(q) => {
                let mut ctx = Ctx {
                    dialect: self.dialect,
                    next_alias: 0,
                    tag_params: self.tag_params,
                };
                let block = ctx.block(q);
                format!("EXISTS ({})", ctx.render_block(&block))
            }
            Scalar::Subquery(q) => {
                let mut ctx = Ctx {
                    dialect: self.dialect,
                    next_alias: 0,
                    tag_params: self.tag_params,
                };
                let block = ctx.block(q);
                format!("({})", ctx.render_block(&block))
            }
        }
    }

    fn func(&mut self, f: ScalarFunc, args: &[Scalar]) -> String {
        let rendered: Vec<String> = args.iter().map(|a| self.scalar(a)).collect();
        match f {
            ScalarFunc::Greatest | ScalarFunc::Least if !self.dialect.has_greatest() => {
                // CASE WHEN chain, per paper footnote 2.
                let op = if f == ScalarFunc::Greatest {
                    ">="
                } else {
                    "<="
                };
                rendered
                    .iter()
                    .cloned()
                    .reduce(|a, b| format!("(CASE WHEN {a} {op} {b} THEN {a} ELSE {b} END)"))
                    .unwrap_or_else(|| "NULL".to_string())
            }
            ScalarFunc::Concat if self.dialect.concat_is_operator() => rendered
                .iter()
                .cloned()
                .reduce(|a, b| format!("({a} || {b})"))
                .unwrap_or_else(|| "''".to_string()),
            _ => format!("{}({})", f.name(), rendered.join(", ")),
        }
    }
}

fn is_plain(b: &Block) -> bool {
    b.select.is_none()
        && b.group_by.is_none()
        && !b.distinct
        && b.order_by.is_empty()
        && b.where_.is_none()
        && b.limit.is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{AggCall, AggFunc, ProjItem, SortKey};
    use crate::scalar::{BinOp, ColRef};

    fn q() -> RaExpr {
        RaExpr::table("board").select(Scalar::cmp(
            BinOp::Eq,
            Scalar::col("rnd_id"),
            Scalar::int(1),
        ))
    }

    #[test]
    fn select_renders_where() {
        assert_eq!(
            to_sql(&q(), Dialect::Postgres),
            "SELECT * FROM board WHERE (rnd_id = 1)"
        );
    }

    #[test]
    fn project_merges_into_block() {
        let e = q().project(vec![ProjItem::col("p1")]);
        assert_eq!(
            to_sql(&e, Dialect::Postgres),
            "SELECT p1 FROM board WHERE (rnd_id = 1)"
        );
    }

    #[test]
    fn aggregation_with_greatest() {
        // The paper's Figure 3(d):
        // SELECT max(GREATEST(p1,p2,p3,p4)) FROM board WHERE rnd_id = 1.
        let inner = q().project(vec![ProjItem::new(
            Scalar::Func(
                ScalarFunc::Greatest,
                vec![
                    Scalar::col("p1"),
                    Scalar::col("p2"),
                    Scalar::col("p3"),
                    Scalar::col("p4"),
                ],
            ),
            "score",
        )]);
        let e = inner.aggregate(vec![AggCall::new(AggFunc::Max, Scalar::col("score"), "m")]);
        let sql = to_sql(&e, Dialect::Postgres);
        assert_eq!(
            sql,
            "SELECT MAX(score) AS m FROM (SELECT GREATEST(p1, p2, p3, p4) AS score \
             FROM board WHERE (rnd_id = 1)) AS sq1"
        );
    }

    #[test]
    fn greatest_becomes_case_when_on_sqlserver() {
        let e = Scalar::Func(
            ScalarFunc::Greatest,
            vec![Scalar::col("a"), Scalar::col("b")],
        );
        let sql = scalar_to_sql(&e, Dialect::SqlServer);
        assert_eq!(sql, "(CASE WHEN a >= b THEN a ELSE b END)");
    }

    #[test]
    fn join_renders_on_clause() {
        let e = RaExpr::table_as("wilos_user", "u").join(
            RaExpr::table_as("role", "r"),
            crate::ra::eq_join(
                ColRef::qualified("u", "role_id"),
                ColRef::qualified("r", "id"),
            ),
        );
        assert_eq!(
            to_sql(&e, Dialect::Postgres),
            "SELECT * FROM wilos_user AS u JOIN role AS r ON (u.role_id = r.id)"
        );
    }

    #[test]
    fn outer_apply_dialects() {
        let inner = RaExpr::table("person").select(Scalar::cmp(
            BinOp::Eq,
            Scalar::qcol("person", "id"),
            Scalar::qcol("apps", "applicant_id"),
        ));
        let e = RaExpr::table("apps").outer_apply(inner);
        let pg = to_sql(&e, Dialect::Postgres);
        assert!(pg.contains("LEFT JOIN LATERAL"), "{pg}");
        let ms = to_sql(&e, Dialect::SqlServer);
        assert!(ms.contains("OUTER APPLY"), "{ms}");
    }

    #[test]
    fn dedup_renders_distinct() {
        let e = RaExpr::table("t").project(vec![ProjItem::col("a")]).dedup();
        assert_eq!(to_sql(&e, Dialect::Postgres), "SELECT DISTINCT a FROM t");
    }

    #[test]
    fn group_by_renders_keys() {
        let e = RaExpr::table("t").group_by(
            vec![ProjItem::col("g")],
            vec![AggCall::new(AggFunc::Sum, Scalar::col("x"), "s")],
        );
        assert_eq!(
            to_sql(&e, Dialect::Postgres),
            "SELECT g, SUM(x) AS s FROM t GROUP BY g"
        );
    }

    #[test]
    fn sort_renders_order_by() {
        let e = RaExpr::table("t").sort(vec![SortKey::desc(Scalar::col("x"))]);
        assert_eq!(
            to_sql(&e, Dialect::Postgres),
            "SELECT * FROM t ORDER BY x DESC"
        );
    }

    #[test]
    fn selection_after_aggregate_wraps() {
        let e = RaExpr::table("t")
            .aggregate(vec![AggCall::new(AggFunc::Count, Scalar::int(1), "c")])
            .select(Scalar::cmp(BinOp::Gt, Scalar::col("c"), Scalar::int(0)));
        let sql = to_sql(&e, Dialect::Postgres);
        assert_eq!(
            sql,
            "SELECT * FROM (SELECT COUNT(1) AS c FROM t) AS sq1 WHERE (c > 0)"
        );
    }

    #[test]
    fn exists_subquery() {
        let sub =
            RaExpr::table("r").select(Scalar::cmp(BinOp::Eq, Scalar::col("x"), Scalar::Param(0)));
        let e = Scalar::Exists(Box::new(sub));
        assert_eq!(
            scalar_to_sql(&e, Dialect::Postgres),
            "EXISTS (SELECT * FROM r WHERE (x = ?))"
        );
    }

    #[test]
    fn params_render_as_placeholders() {
        let e =
            RaExpr::table("t").select(Scalar::cmp(BinOp::Eq, Scalar::col("a"), Scalar::Param(0)));
        assert_eq!(
            to_sql(&e, Dialect::Postgres),
            "SELECT * FROM t WHERE (a = ?)"
        );
    }

    #[test]
    fn concat_dialects() {
        let e = Scalar::Func(ScalarFunc::Concat, vec![Scalar::str("a"), Scalar::col("b")]);
        assert_eq!(scalar_to_sql(&e, Dialect::Postgres), "('a' || b)");
        assert_eq!(scalar_to_sql(&e, Dialect::Mysql), "CONCAT('a', b)");
    }
}
