//! Multiset extended relational algebra, scalar expressions, schemas, and SQL.
//!
//! This crate is the *declarative* half of the `eqsql` system. It defines:
//!
//! * [`scalar::Scalar`] — a scalar expression language (columns, parameters,
//!   arithmetic, comparisons, `CASE`, `GREATEST`, `EXISTS` subqueries, …)
//!   shared by the algebra, the SQL renderer, and the `dbms` evaluator;
//! * [`ra::RaExpr`] — the multiset extended relational algebra of the paper
//!   (Sec. 3.2.1): σ, π (order preserving, no duplicate elimination), ⨝,
//!   γ (grouping/aggregation), τ (sort), δ (duplicate elimination), and the
//!   `OUTER APPLY` construct of Rule T7 (Appendix B);
//! * [`schema`] — table schemas, keys, and catalogs used for binding;
//! * [`render`] — dialect-aware SQL generation ([`dialect::Dialect`]);
//! * [`parse`] — a parser for the SQL subset that appears in application
//!   source code (`executeQuery("SELECT … WHERE x = ?")`).
//!
//! Everything here is pure data + pure functions; execution lives in `dbms`.

pub mod ddl;
pub mod dialect;
pub mod parse;
pub mod ra;
pub mod render;
pub mod scalar;
pub mod schema;

pub use ddl::parse_ddl;
pub use dialect::Dialect;
pub use ra::{AggCall, AggFunc, JoinKind, RaExpr, SortKey, SortOrder};
pub use scalar::{BinOp, ColRef, Lit, Scalar, ScalarFunc, UnOp};
pub use schema::{Catalog, ColumnDef, SqlType, TableSchema};
