//! SQL dialects.
//!
//! The paper (footnote 2) notes that `GREATEST` is used for PostgreSQL and
//! that other dialects can use similar functions or `CASE..WHEN`; likewise
//! `OUTER APPLY` (SQL Server) vs `LEFT JOIN LATERAL` (PostgreSQL).

/// Target SQL dialect for rendering extracted queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dialect {
    /// PostgreSQL: `GREATEST`/`LEAST`, `LEFT JOIN LATERAL … ON TRUE`.
    #[default]
    Postgres,
    /// MySQL: `GREATEST`/`LEAST`, emulate lateral with `LEFT JOIN LATERAL`
    /// (supported since MySQL 8.0.14).
    Mysql,
    /// SQL Server: no `GREATEST` before 2022 — render `CASE WHEN`; native
    /// `OUTER APPLY`.
    SqlServer,
    /// ANSI-ish generic dialect: `CASE WHEN` for greatest/least, lateral
    /// joins, standard everything else.
    Ansi,
}

impl Dialect {
    /// Whether the dialect has native `GREATEST`/`LEAST` functions.
    pub fn has_greatest(self) -> bool {
        matches!(self, Dialect::Postgres | Dialect::Mysql)
    }

    /// Whether the dialect spells correlated apply as `OUTER APPLY`
    /// (otherwise `LEFT JOIN LATERAL (…) ON TRUE` is emitted).
    pub fn has_outer_apply(self) -> bool {
        matches!(self, Dialect::SqlServer)
    }

    /// String concatenation: `CONCAT(a, b)` everywhere except ANSI `||`.
    pub fn concat_is_operator(self) -> bool {
        matches!(self, Dialect::Ansi | Dialect::Postgres)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix() {
        assert!(Dialect::Postgres.has_greatest());
        assert!(!Dialect::SqlServer.has_greatest());
        assert!(Dialect::SqlServer.has_outer_apply());
        assert!(!Dialect::Postgres.has_outer_apply());
        assert!(Dialect::Ansi.concat_is_operator());
        assert!(!Dialect::Mysql.concat_is_operator());
    }

    #[test]
    fn default_is_postgres() {
        assert_eq!(Dialect::default(), Dialect::Postgres);
    }
}
