#!/bin/sh
# Local CI gate: formatting, lints, tests. Fails fast; run before pushing.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> eqsql certify examples/corpus"
# Translation-validation gate: every rule application on the example
# corpus must discharge its proof obligation (DESIGN.md §5e). Exit is
# nonzero on any counterexample or inconclusive obligation.
cargo build -q --release -p eqsql-cli
for f in examples/corpus/*.imp; do
    target/release/eqsql certify "$f" --schema examples/corpus/schema.sql
done

echo "==> eqsql lint sweep vs golden"
# Lint-inventory gate: the CLI's JSON lint output over the corpus must
# list exactly the diagnostic codes recorded in the golden. The Rust twin
# (tests/corpus_lint.rs) derives the same inventory through the library,
# so the binary and library paths are held to one file.
LINT_SWEEP="$(mktemp)"
for f in examples/corpus/*.imp; do
    codes=$(target/release/eqsql lint "$f" --schema examples/corpus/schema.sql --format json \
        | tr ',' '\n' | sed -n 's/.*"code":"\([EW][0-9]*\)".*/\1/p' | sort -u | xargs)
    printf '%s:%s\n' "$(basename "$f")" "${codes:+ $codes}" >> "$LINT_SWEEP"
done
diff -u tests/golden/corpus_lint_codes.txt "$LINT_SWEEP"
rm -f "$LINT_SWEEP"

echo "==> eqsql fuzz (deterministic smoke)"
# Differential-fuzzing gate (DESIGN.md §5f): 200 generated programs run
# under the interpreter and through the extractor must agree exactly. The
# fixed seed makes the sweep deterministic; failures print the minimized
# program and exit nonzero.
target/release/eqsql fuzz --seed 42 --iters 200

echo "==> eqsql fuzz --store (paged-backend smoke)"
# The same differential oracle over the paged storage engine: tables live
# in B-tree pages behind an 8-frame buffer pool and queries run on the
# volcano executor, amplified with extra generated rows so scans evict.
target/release/eqsql fuzz --seed 42 --iters 50 --store --store-rows 256

echo "==> eqsql fuzz --dml (write-loop differential smoke)"
# Write-loop gate (DESIGN.md §5i): generated DML loops run row-at-a-time
# under the interpreter and batched through the foreach-dml extractor;
# both sides must leave identical final table contents, and every kept
# write loop must carry exactly one E010/W010 blame diagnostic. The
# depend-pass proptests (tests/depend_props.rs) already ran under the
# `cargo test` step above.
target/release/eqsql fuzz --seed 42 --iters 200 --dml

echo "==> eqsql fuzz --dml --store (forked-pager differential smoke)"
# Regression gate for the pager-aliasing fix: with --store each side of
# the write-loop differential mutates a deep-forked page image
# (Database::fork / Pager::fork_image) instead of aliasing one pager.
target/release/eqsql fuzz --seed 42 --iters 100 --dml --store

echo "==> storage_scale --check"
# Larger-than-memory gate: streams the 10⁴-row size through the paged
# engine, asserts imperative ≡ extracted results, and structurally
# validates the tracked BENCH_storage.json. No timing gates.
cargo run -q --release -p bench --bin storage_scale -- --check > /dev/null

echo "==> perf_pipeline --check"
# Small-corpus sweep: asserts the bench harness runs end to end and emits
# valid JSON. No timing gates — CI machines are too noisy for that.
cargo run -q --release -p bench --bin perf_pipeline -- --check

echo "==> service smoke test (persistent connection)"
cargo build -q --release -p eqsql-cli -p service
PORT_FILE="$(mktemp -u)"
target/release/eqsql serve --addr 127.0.0.1:0 --port-file "$PORT_FILE" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$PORT_FILE"' EXIT
# The smoke client waits for the port file, then drives the whole
# endpoint sequence (/healthz, /extract + cached replay, /fuzz, /metrics
# with admission counters) over ONE keep-alive connection before POSTing
# /shutdown for a graceful stop.
target/release/eqsql-smoke "@$PORT_FILE"
wait "$SERVE_PID"
trap - EXIT
rm -f "$PORT_FILE"

echo "==> loadgen --check"
# Event-loop load gate (DESIGN.md §5j): a short fixed-seed keep-alive
# load run against an in-process server must finish error-free, and its
# document must match the tracked BENCH_service.json structurally
# (identity + field inventory; never absolute timings).
cargo run -q --release -p bench --bin loadgen -- --check > /dev/null

echo "==> ok"
