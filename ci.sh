#!/bin/sh
# Local CI gate: formatting, lints, tests. Fails fast; run before pushing.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> ok"
